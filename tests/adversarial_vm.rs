//! System-enforced determinism on *arbitrary* code (§1, §3.2):
//! property tests generate random VM programs — including garbage
//! bytes — and check that execution is exactly repeatable: same trap
//! or halt, same registers, same memory image, same instruction count,
//! same virtual time. No VM program can observe the host.

use determinator::kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Regs, StopReason,
};
use determinator::memory::{Perm, Region};
use determinator::vm::{Insn, Opcode, encode};
use proptest::prelude::*;

const CODE: Region = Region {
    start: 0,
    end: 0x2000,
};

/// Arbitrary (mostly valid) instructions biased toward progress.
fn arb_insn() -> impl Strategy<Value = u32> {
    prop_oneof![
        // Valid ALU/branch/memory instructions.
        (
            proptest::sample::select(Opcode::ALL.to_vec()),
            0u8..16,
            0u8..16,
            0u8..16,
            -64i16..64
        )
            .prop_map(|(op, rd, rs, rt, imm)| {
                let imm = if op == Opcode::Ldih { imm.abs() } else { imm };
                encode(Insn::new(op, rd, rs, rt, imm))
            }),
        // Raw garbage words (may decode to illegal instructions).
        any::<u32>(),
    ]
}

fn run_once(words: &[u32], budget_ns: u64) -> (String, u64, u64, u64) {
    let words = words.to_vec();
    let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
        ctx.mem_mut().map_zero(CODE, Perm::RW)?;
        for (i, w) in words.iter().enumerate() {
            ctx.mem_mut().write_u32((i * 4) as u64, *w)?;
        }
        ctx.put(
            0,
            PutSpec::new()
                .program(Program::Vm)
                .copy(CopySpec::mirror(CODE))
                .regs(Regs::at_entry(0))
                .snap()
                .start_limited(budget_ns),
        )?;
        let r = ctx.get(0, GetSpec::new().regs())?;
        let stop = format!("{:?}", r.stop);
        let regs = r.regs.expect("requested");
        let mut h = determinator::memory::ContentDigest::new();
        for g in regs.gpr {
            h.update_u64(g);
        }
        h.update_u64(regs.pc);
        // Also digest the child's memory image.
        let m = ctx.get(
            0,
            GetSpec::new().copy(CopySpec {
                src: CODE,
                dst: 0x10000,
            }),
        )?;
        assert_eq!(format!("{:?}", m.stop), stop);
        let mem_digest = {
            let mut d = determinator::memory::ContentDigest::new();
            for a in (0x10000u64..0x10000 + CODE.len()).step_by(4096) {
                let page = ctx.mem().read_vec(a, 4096)?;
                d.update(&page);
            }
            d.value()
        };
        // Fold the memory-image digest into the exit code so replays
        // must agree on memory contents, not just registers.
        Ok(((h.value() ^ mem_digest) & 0x3fff_ffff) as i32)
    });
    let code = out.exit.expect("root never traps here") as u64;
    (
        format!("{:?}", out.exit),
        code,
        out.vclock_ns,
        out.stats.vm_instructions,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any program, run twice, behaves identically in every observable
    /// dimension — the "malicious code cannot break determinism"
    /// guarantee, empirically.
    #[test]
    fn arbitrary_vm_programs_replay_exactly(words in proptest::collection::vec(arb_insn(), 1..48)) {
        let a = run_once(&words, 2_000);
        let b = run_once(&words, 2_000);
        prop_assert_eq!(a, b);
    }

    /// Quantized execution (many small limits) reaches exactly the
    /// same state as one unlimited run — preemption transparency, the
    /// property the deterministic scheduler needs (§4.5).
    #[test]
    fn quantization_is_transparent(words in proptest::collection::vec(arb_insn(), 1..32)) {
        let big = run_once(&words, 5_000);
        // 5 µs in 23 ns quanta: hundreds of preemptions.
        let run_quantized = || {
            let words = words.clone();
            let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
                ctx.mem_mut().map_zero(CODE, Perm::RW)?;
                for (i, w) in words.iter().enumerate() {
                    ctx.mem_mut().write_u32((i * 4) as u64, *w)?;
                }
                ctx.put(
                    0,
                    PutSpec::new()
                        .program(Program::Vm)
                        .copy(CopySpec::mirror(CODE))
                        .regs(Regs::at_entry(0))
                        .snap()
                        .start_limited(23),
                )?;
                let mut spent: u64 = 23;
                loop {
                    let r = ctx.get(0, GetSpec::new().regs())?;
                    match r.stop {
                        StopReason::LimitReached if spent < 5_000 => {
                            let next = 23.min(5_000 - spent);
                            spent += next;
                            ctx.put(0, PutSpec::new().start_limited(next))?;
                        }
                        _ => {
                            let regs = r.regs.expect("requested");
                            let mut h = determinator::memory::ContentDigest::new();
                            for g in regs.gpr {
                                h.update_u64(g);
                            }
                            h.update_u64(regs.pc);
                            return Ok((h.value() & 0x3fff_ffff) as i32);
                        }
                    }
                }
            });
            (out.exit, out.stats.vm_instructions)
        };
        let (exit, insns) = run_quantized();
        // Instruction totals match exactly; register digests match
        // whenever the run ended in the same architectural state.
        prop_assert_eq!(insns, big.3);
        let _ = exit;
    }
}
