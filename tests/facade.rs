//! Lock-in for the curated facade: the `determinator::prelude` and
//! the domain modules must keep exposing the promised names. A rename
//! or a dropped re-export fails this suite at compile time — the
//! public surface is intentional, not accidental.

use determinator::prelude::*;

/// Every name the prelude promises, mentioned by path so a dropped
/// re-export is a compile error here (not a surprise downstream).
#[test]
fn prelude_exposes_the_expected_names() {
    // Construction surface.
    let _cfg: KernelConfig = KernelConfig::default();
    let _builder: KernelConfigBuilder = KernelConfig::builder();
    let _costs: CostModel = CostModel::default();
    let _dispatch: VmDispatch = VmDispatch::default();
    let _policy: ConflictPolicy = ConflictPolicy::default();

    // Syscall vocabulary.
    let _put: PutSpec = PutSpec::new();
    let _get: GetSpec = GetSpec::new();
    let _copy: CopySpec = CopySpec::mirror(Region::new(0, 0x1000));
    let _start: StartSpec = StartSpec::default();
    let _stop: StopReason = StopReason::Unstarted;
    let _perm: Perm = Perm::RW;

    // Error surface.
    let err: KernelError = KernelError::NoSnapshot;
    let _trap: TrapKind = err.as_trap();

    // Devices.
    let _dev: DeviceId = DeviceId::ConsoleOut;
    let _io: IoMode = IoMode::default();

    // Trace record/replay surface.
    let _sink: TraceSink = TraceSink::new();
}

/// The prelude runs a kernel end to end: `Kernel`, `SpaceCtx`,
/// `Program`, `RunOutcome`, `PutResult`/`GetResult`, and `KernelStats`
/// are all reachable without naming any inner crate.
#[test]
fn prelude_drives_a_kernel() {
    let out: RunOutcome = Kernel::new(KernelConfig::default()).run(|ctx: &mut SpaceCtx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        let put: PutResult = ctx.put(
            0,
            PutSpec::new().program(Program::native(|_c| Ok(5))).start(),
        )?;
        assert_eq!(put.child_was, StopReason::Unstarted);
        let got: GetResult = ctx.get(0, GetSpec::new())?;
        assert_eq!(got.stop, StopReason::Halted);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    let stats: KernelStats = out.stats.clone();
    assert_eq!(stats.puts, 1);
    assert_eq!(stats.gets, 1);
}

/// Trace types round-trip through the prelude: record a run, collect
/// the `Trace`, replay to a `ReplayOutcome`, serialize via
/// `TraceMeta`-carrying JSON.
#[test]
fn prelude_trace_surface_round_trips() {
    let sink = TraceSink::new();
    let cfg = KernelConfig::builder().trace(sink.clone()).build();
    let live = Kernel::new(cfg).run(|ctx| {
        ctx.mem_mut().map_zero(Region::new(0, 0x1000), Perm::RW)?;
        ctx.mem_mut().write_u64(0, 42)?;
        Ok(3)
    });
    assert_eq!(live.exit, Ok(3));
    let trace: Trace = sink.collect().expect("sink records a trace");
    let json = trace.to_json();
    let trace2 = Trace::from_json(&json).expect("trace json round-trips");
    let rep: ReplayOutcome = trace2.replay().expect("trace replays");
    assert_eq!(rep.exit, live.exit);
    assert_eq!(rep.vclock_ns, live.vclock_ns);
}

/// The domain modules stay reachable with their curated contents.
#[test]
fn domain_modules_expose_their_names() {
    let _r: determinator::memory::Region = determinator::memory::Region::new(0, 0x1000);
    let _d = determinator::memory::ContentDigest::default();
    let _space = determinator::memory::AddressSpace::new();
    let _regs = determinator::vm::Regs::default();
    let _decode = determinator::vm::decode;
    let _reg: determinator::runtime::ProgramRegistry =
        determinator::runtime::ProgramRegistry::new();
    let _mode: determinator::workloads::Mode = determinator::workloads::Mode::Determinator;
    let _net = determinator::cluster::NetworkModel::ethernet_1g();
    // Headline types are also unqualified at the crate root.
    let _k: determinator::KernelConfig = determinator::KernelConfig::default();
    let _s: determinator::TraceSink = determinator::TraceSink::new();
}
