//! Workspace-level determinism smoke test: one racy fork-join
//! workload, run repeatedly while the host scheduler is deliberately
//! perturbed by CPU-burning chaos threads, must always produce the
//! same memory digest and virtual clock. This is the cheap,
//! always-on version of the empirical claim the heavier property
//! tests (`adversarial_vm.rs`, `determinism.rs`) check in depth.

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use determinator::kernel::{CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec};
use determinator::memory::{Perm, Region};
use determinator::workloads::Mode;
use determinator::workloads::md5::{self, Md5Config};

/// Forks eight children that each fill a private replica chunk of a
/// shared region, merges them all back, and digests the final memory
/// image. The children's host threads genuinely race; the digest and
/// the virtual makespan must not depend on how that race resolves.
fn fork_join_digest() -> (u64, u64) {
    const SHARED: Region = Region {
        start: 0x1000,
        end: 0x1000 + 8 * 4096,
    };
    let digest = Arc::new(AtomicU64::new(0));
    let digest_out = Arc::clone(&digest);
    let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        for child in 0..8u64 {
            ctx.put(
                child,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        let base = SHARED.start + child * 4096;
                        for i in 0..512u64 {
                            c.mem_mut().write_u64(
                                base + i * 8,
                                child.wrapping_mul(0x9e37).wrapping_add(i),
                            )?;
                        }
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(SHARED))
                    .snap()
                    .start(),
            )?;
        }
        for child in 0..8u64 {
            ctx.get(child, GetSpec::new().merge(SHARED))?;
        }
        digest_out.store(ctx.mem().content_digest().value(), Ordering::Relaxed);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    (digest.load(Ordering::Relaxed), out.vclock_ns)
}

/// Spawns `n` chaos threads that burn CPU, yield, and sleep at pseudo
/// random points so the OS scheduler interleaves the kernel's
/// execution vehicles differently from an idle host.
fn with_host_load<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let stop = Arc::new(AtomicBool::new(false));
    let chaos: Vec<_> = (0..n)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = i as u64 + 1;
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if x.is_multiple_of(4096) {
                        std::thread::yield_now();
                    }
                    if x.is_multiple_of(1 << 20) {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                std::hint::black_box(x)
            })
        })
        .collect();
    let result = f();
    stop.store(true, Ordering::Relaxed);
    for t in chaos {
        t.join().expect("chaos thread");
    }
    result
}

#[test]
fn memory_digest_stable_under_perturbed_host_schedule() {
    let quiet = fork_join_digest();
    let loaded = with_host_load(
        2 * std::thread::available_parallelism().map_or(4, usize::from),
        || (fork_join_digest(), fork_join_digest()),
    );
    assert_eq!(quiet, loaded.0, "digest changed under host load");
    assert_eq!(quiet, loaded.1, "digest unstable across loaded reruns");
}

#[test]
fn workload_checksum_stable_under_perturbed_host_schedule() {
    let run = || {
        let r = md5::run(Mode::Determinator, Md5Config::quick(4));
        (r.checksum, r.vclock_ns)
    };
    let quiet = run();
    let loaded = with_host_load(8, run);
    assert_eq!(quiet, loaded, "md5 workload diverged under host load");
}
