//! Workspace-level conformance acceptance: N replicas of real
//! scenarios produce byte-identical artifact bundles under chaotic
//! host load, and seeded faults are localized to the correct category
//! at the exact first divergent byte.

use determinator::conform::{
    Artifacts, ConformConfig, DivergenceCategory, Scope, compare, conform_scenario, find,
    first_diff, registry,
};
use determinator::prelude::VmDispatch;

fn artifacts(name: &str, dispatch: VmDispatch) -> Artifacts {
    let sc = find(name).expect("registered scenario");
    let run = (sc.run)(&determinator::conform::ScenarioConfig {
        dispatch,
        trace: sc.traceable,
        faults: determinator::kernel::FaultPlan::default(),
    });
    Artifacts::collect(sc.name, dispatch, &run)
}

/// Every registered scenario is named and runnable; the registry is
/// the single source of truth for CI.
#[test]
fn registry_covers_examples_and_workloads() {
    let names: Vec<_> = registry().iter().map(|s| s.name).collect();
    for expected in [
        "quickstart_swap",
        "actors_grid",
        "vm_sandbox",
        "vm_counter_stream",
        "parallel_make",
        "shell_pipeline",
        "rendezvous_storm",
        "device_io",
        "wl_md5",
        "wl_matmult",
        "wl_qsort",
        "wl_fft",
        "wl_lu",
        "wl_blackscholes",
        "dist_md5_tree",
    ] {
        assert!(names.contains(&expected), "missing scenario {expected}");
    }
}

/// N=3 replica conformance under chaos for a cross-section of
/// scenario kinds (native fork/join, VM guests, process tree,
/// workload) in both dispatch modes.
#[test]
fn replica_conformance_under_chaos() {
    let cfg = ConformConfig {
        replicas: 3,
        chaos: true,
        ..ConformConfig::default()
    };
    for name in ["actors_grid", "vm_sandbox", "parallel_make", "wl_qsort"] {
        let sc = find(name).expect("registered");
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            let r = conform_scenario(&sc, dispatch, &cfg);
            assert!(r.conforms(), "{}", r.report());
        }
    }
}

/// Acceptance: a seeded 1-byte page corruption produces a divergence
/// report naming the page-content category and the exact first
/// divergent byte offset, with hex context from both replicas.
#[test]
fn page_corruption_report_names_category_and_offset() {
    let a = artifacts("actors_grid", VmDispatch::Inline);
    let mut b = a.clone();
    assert!(b.corrupt_page_digest());
    let d = compare(&a, &b, Scope::Full).expect("diverges");
    assert_eq!(d.category, DivergenceCategory::PageContent);

    // Independent offset check straight from the serialized bytes.
    let (ba, bb) = (a.to_bytes(Scope::Full), b.to_bytes(Scope::Full));
    assert_ne!(ba, bb);
    assert_eq!(d.offset, first_diff(&ba, &bb));
    assert_eq!(ba[..d.offset], bb[..d.offset]);
    assert_ne!(ba[d.offset], bb[d.offset]);

    let report = d.report("actors_grid", "replica 0", "replica 1");
    assert!(report.contains("page-content"), "{report}");
    assert!(
        report.contains(&format!("offset: {}", d.offset)),
        "{report}"
    );
    assert!(report.contains('['), "hex context marks the byte: {report}");
}

/// Acceptance: a seeded 1-event trace reorder is classified as a
/// schedule/trace divergence with the exact offset — and is invisible
/// to the cross-dispatch scope, which excludes the trace section.
#[test]
fn trace_reorder_report_names_category_and_offset() {
    let a = artifacts("vm_counter_stream", VmDispatch::Inline);
    let mut b = a.clone();
    assert!(b.reorder_trace());
    let d = compare(&a, &b, Scope::Full).expect("diverges");
    assert_eq!(d.category, DivergenceCategory::ScheduleTrace);

    let (ba, bb) = (a.to_bytes(Scope::Full), b.to_bytes(Scope::Full));
    assert_eq!(d.offset, first_diff(&ba, &bb));

    let report = d.report("vm_counter_stream", "replica 0", "replica 1");
    assert!(report.contains("schedule-trace"), "{report}");
    assert!(compare(&a, &b, Scope::CrossDispatch).is_none());
}

/// The canonical byte encoding is stable across serializations of the
/// same bundle (regression guard for ordered containers everywhere in
/// the outcome surface).
#[test]
fn bundle_serialization_is_deterministic() {
    let a = artifacts("shell_pipeline", VmDispatch::Threaded);
    assert_eq!(a.to_bytes(Scope::Full), a.to_bytes(Scope::Full));
    let b = artifacts("shell_pipeline", VmDispatch::Threaded);
    assert!(
        compare(&a, &b, Scope::Full).is_none(),
        "re-running the scenario must reproduce identical bytes"
    );
}
