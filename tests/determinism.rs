//! Cross-crate determinism tests: the paper's core claim, verified
//! end-to-end — identical results, output bytes, and virtual clocks
//! across repeated runs and perturbed host schedules, for every layer
//! of the stack.

use determinator::kernel::{
    CopySpec, DeviceId, GetSpec, IoMode, Kernel, KernelConfig, Program, PutSpec, Region,
};
use determinator::runtime::proc::{ProgramRegistry, run_process_tree, run_process_tree_on};
use determinator::runtime::shell;
use determinator::workloads::Mode;
use determinator::workloads::blackscholes::{self, BsConfig};
use determinator::workloads::dist::{self, DistConfig};
use determinator::workloads::fft::{self, FftConfig};
use determinator::workloads::lu::{self, Layout, LuConfig};
use determinator::workloads::matmult::{self, MatmultConfig};
use determinator::workloads::md5::{self, Md5Config};
use determinator::workloads::qsort::{self, QsortConfig};

/// Every single-node workload: identical checksum AND identical
/// virtual time across reruns (full-stack repeatability).
#[test]
fn workloads_repeat_exactly() {
    let run_all = || {
        vec![
            {
                let r = md5::run(Mode::Determinator, Md5Config::quick(3));
                (r.checksum, r.vclock_ns)
            },
            {
                let r = matmult::run(Mode::Determinator, MatmultConfig { threads: 3, n: 48 });
                (r.checksum, r.vclock_ns)
            },
            {
                let r = qsort::run(Mode::Determinator, QsortConfig { depth: 2, n: 8192 });
                (r.checksum, r.vclock_ns)
            },
            {
                let r = blackscholes::run(Mode::Determinator, BsConfig::quick(3));
                (r.checksum, r.vclock_ns)
            },
            {
                let r = fft::run(
                    Mode::Determinator,
                    FftConfig {
                        threads: 3,
                        log2n: 10,
                    },
                );
                (r.checksum, r.vclock_ns)
            },
            {
                let r = lu::run(
                    Mode::Determinator,
                    LuConfig {
                        threads: 3,
                        n: 40,
                        layout: Layout::NonContiguous,
                    },
                );
                (r.checksum, r.vclock_ns)
            },
        ]
    };
    assert_eq!(run_all(), run_all());
}

/// Distributed runs repeat exactly too (migration, demand paging and
/// network charges are all deterministic).
#[test]
fn distributed_runs_repeat_exactly() {
    let run = || {
        let r = dist::md5_tree(DistConfig {
            nodes: 4,
            size: 2_000,
            tcp_like: false,
        });
        (r.checksum, r.vclock_ns, r.stats.migrations)
    };
    assert_eq!(run(), run());
}

/// Checksums are also identical across Determinator and the
/// conventional baseline — the model changes timing, never results.
#[test]
fn results_mode_invariant() {
    for threads in [1usize, 2, 5] {
        let d = matmult::run(Mode::Determinator, MatmultConfig { threads, n: 40 });
        let b = matmult::run(Mode::Baseline, MatmultConfig { threads, n: 40 });
        assert_eq!(d.checksum, b.checksum, "threads={threads}");
    }
}

/// The shell's console output is byte-identical run to run, including
/// across interleaved child processes (§4.3).
#[test]
fn shell_script_repeats_byte_identically() {
    let script = "
        echo one > a
        echo two > b
        cat a b | wc
        ls
    ";
    let run = || {
        run_process_tree(KernelConfig::default(), ProgramRegistry::new(), move |p| {
            shell::run_script(p, script)
        })
    };
    let x = run();
    let y = run();
    assert_eq!(x.exit, Ok(0));
    assert_eq!(x.console(), y.console());
    assert_eq!(x.vclock_ns, y.vclock_ns);
}

/// Record/replay end-to-end through the process runtime: a run
/// consuming console, clock, and entropy inputs replays bit-for-bit
/// from its log alone (§2.1).
#[test]
fn record_replay_full_stack() {
    let app = |p: &mut determinator::runtime::Proc<'_>| {
        let mut buf = [0u8; 16];
        let n = p.read(0, &mut buf)?;
        let clock = p.ctx().dev_read(DeviceId::Clock)?.unwrap();
        let rand = p.ctx().dev_read(DeviceId::Random)?.unwrap();
        p.write(1, &buf[..n])?;
        p.write(1, &clock)?;
        p.write(1, &rand)?;
        Ok(0)
    };
    let kernel = Kernel::new(KernelConfig::default());
    kernel.push_input(DeviceId::ConsoleIn, b"input!".to_vec());
    let rec = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.exit, Ok(0));

    let kernel = Kernel::new(
        KernelConfig::builder()
            .io(IoMode::Replay(rec.io_log.clone()))
            .build(),
    );
    let rep = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.console(), rep.console());
    assert_eq!(rec.vclock_ns, rep.vclock_ns);
}

/// N-way fork/join with the join order permuted by seed: the parent's
/// final memory digest must be identical regardless of the order in
/// which children are merged. Guards the merge engine's dirty-set
/// optimization against any join-order sensitivity.
#[test]
fn n_way_join_order_digest_invariant() {
    let region = Region::new(0x1000, 0x9000);
    // Runs an N-way fork/join, merging children in the order produced
    // by repeatedly striding `seed` over the remaining set, and
    // returns the parent's final memory digest.
    let run = |n: u64, seed: u64| {
        let order: Vec<u64> = {
            let mut remaining: Vec<u64> = (0..n).collect();
            let mut out = Vec::new();
            let mut pos = seed as usize;
            while !remaining.is_empty() {
                pos = (pos * 7 + seed as usize + 3) % remaining.len();
                out.push(remaining.remove(pos));
            }
            out
        };
        let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
            ctx.mem_mut()
                .map_zero(region, determinator::memory::Perm::RW)?;
            ctx.mem_mut().write_u64(0x1000, 0xC0FFEE)?;
            for i in 0..n {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            // Disjoint slots plus a disjoint per-child run.
                            c.mem_mut().write_u64(0x2000 + i * 8, i * i + 1)?;
                            c.mem_mut().write_u64(0x4000 + i * 0x800, i + 7)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(region))
                        .snap()
                        .start(),
                )?;
            }
            for &i in &order {
                ctx.get(i, GetSpec::new().merge(region))?;
            }
            Ok(ctx.mem().content_digest().value() as i32)
        });
        out.exit.expect("no trap")
    };
    for n in [2u64, 4, 8] {
        let digests: Vec<i32> = (0..4).map(|seed| run(n, seed)).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "join order changed the merged digest for n={n}: {digests:?}"
        );
    }
}

/// Rendezvous storm under chaotic host load: N children each driven
/// through many park/resume roundtrips (the targeted-wakeup engine's
/// hot path, including the fused `PutGet` exchange) while background
/// host threads thrash the scheduler. The parent's final digest,
/// virtual clock, and rendezvous counters must be bit-identical run
/// to run — a lost or misdirected wakeup would hang (watchdogged by
/// the suite timeout) and a stat race would diverge the counters.
#[test]
fn rendezvous_storm_digest_invariant_under_chaos() {
    use determinator::kernel::{Perm, StopReason};
    let region = Region::new(0x1000, 0x5000);
    let run = |chaos: bool| {
        // Background load perturbing the host scheduler.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let chaos_threads: Vec<_> = if chaos {
            (0..3)
                .map(|_| {
                    let stop = std::sync::Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
            ctx.mem_mut().map_zero(region, Perm::RW)?;
            const N: u64 = 6;
            const ROUNDS: u64 = 20;
            for i in 0..N {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            for round in 0..ROUNDS {
                                c.mem_mut().write_u64(0x2000 + i * 8, round * N + i)?;
                                c.ret(round)?;
                            }
                            Ok(i as i32)
                        }))
                        .copy(CopySpec::mirror(region))
                        .snap()
                        .start(),
                )?;
            }
            // Drive every child through every round with the fused
            // exchange, merging its writes and restaging the region.
            for round in 0..ROUNDS {
                for i in 0..N {
                    let r = if round == 0 {
                        ctx.get(i, GetSpec::new().merge(region))?
                    } else {
                        ctx.put_get(
                            i,
                            PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                            GetSpec::new().merge(region),
                        )?
                    };
                    assert_eq!(r.stop, StopReason::Ret);
                }
            }
            for i in 0..N {
                let r = ctx.put_get(
                    i,
                    PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                    GetSpec::new().merge(region),
                )?;
                assert_eq!((r.stop, r.code), (StopReason::Halted, i));
            }
            Ok(ctx.mem().content_digest().value() as i32)
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for t in chaos_threads {
            let _ = t.join();
        }
        (
            out.exit.expect("storm must not trap"),
            out.vclock_ns,
            out.stats.rets,
            out.stats.put_gets,
            out.stats.merges,
        )
    };
    let quiet = run(false);
    let loud = run(true);
    assert_eq!(quiet, loud, "host load changed an observable outcome");
}

/// Shard-count invariance (DESIGN.md §10): the real-thread cluster
/// runtime must produce **byte-identical** conformance bundles —
/// digest, virtual clock, kernel stats, traffic counters, outputs,
/// per-job artifacts — whether the logical nodes are packed onto 1
/// OS-thread shard or spread over 8, and regardless of host load.
/// Shards may only change wall-clock time.
#[test]
fn sharded_workloads_invariant_across_shard_counts_under_chaos() {
    use determinator::conform::ChaosLoad;
    use determinator::workloads::sharded::{
        ShardedConfig, ShardedResult, dsched_counter, md5_scan,
    };
    type Workload = fn(ShardedConfig) -> ShardedResult;

    let _chaos = ChaosLoad::start(3);
    let runs: Vec<(&str, Workload)> =
        vec![("md5_scan", md5_scan), ("dsched_counter", dsched_counter)];
    for (name, run) in runs {
        let cfg = |shards| ShardedConfig {
            size: 600,
            ..ShardedConfig::quick(8, shards)
        };
        let base = run(cfg(1));
        let base_bundle = base.outcome.bundle_bytes();
        for shards in [2usize, 4, 8] {
            let other = run(cfg(shards));
            assert_eq!(other.checksum, base.checksum, "{name} shards={shards}");
            assert_eq!(
                other.outcome.vclock_ns, base.outcome.vclock_ns,
                "{name} vclock diverged at shards={shards}"
            );
            assert_eq!(
                other.outcome.stats, base.outcome.stats,
                "{name} kernel stats diverged at shards={shards}"
            );
            assert_eq!(
                other.outcome.bundle_bytes(),
                base_bundle,
                "{name} bundle diverged at shards={shards}"
            );
        }
    }
}

/// The migration storm (nested det-vm children inside every migrated
/// job kernel) repeats bit-identically across shard counts and
/// reruns — dispatch vehicles and shard placement must leave no
/// deterministic trace.
#[test]
fn sharded_migration_storm_repeats_and_shard_invariant() {
    use determinator::workloads::sharded::{ShardedConfig, migration_storm};
    let cfg = |shards| ShardedConfig {
        size: 4,
        ..ShardedConfig::quick(4, shards)
    };
    let a = migration_storm(cfg(1));
    let b = migration_storm(cfg(1));
    assert_eq!(a.outcome.bundle_bytes(), b.outcome.bundle_bytes());
    for shards in [2usize, 4, 8] {
        let c = migration_storm(cfg(shards));
        assert_eq!(
            a.outcome.bundle_bytes(),
            c.outcome.bundle_bytes(),
            "storm bundle diverged at shards={shards}"
        );
    }
}

/// Host-schedule independence at the workload level: sleeping threads
/// at random points must not change anything observable.
#[test]
fn host_schedule_perturbation_is_invisible() {
    // The qsort forks a tree of spaces whose host threads race; the
    // kernel rendezvous discipline must hide all of it.
    let runs: Vec<(u64, u64)> = (0..3)
        .map(|_| {
            let r = qsort::run(
                Mode::Determinator,
                QsortConfig {
                    depth: 3,
                    n: 20_000,
                },
            );
            (r.checksum, r.vclock_ns)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
