//! Cross-crate determinism tests: the paper's core claim, verified
//! end-to-end — identical results, output bytes, and virtual clocks
//! across repeated runs and perturbed host schedules, for every layer
//! of the stack.

use determinator::kernel::{
    CopySpec, DeviceId, GetSpec, IoMode, Kernel, KernelConfig, Program, PutSpec, Region,
};
use determinator::runtime::proc::{ProgramRegistry, run_process_tree, run_process_tree_on};
use determinator::runtime::shell;
use determinator::workloads::Mode;
use determinator::workloads::blackscholes::{self, BsConfig};
use determinator::workloads::dist::{self, DistConfig};
use determinator::workloads::fft::{self, FftConfig};
use determinator::workloads::lu::{self, Layout, LuConfig};
use determinator::workloads::matmult::{self, MatmultConfig};
use determinator::workloads::md5::{self, Md5Config};
use determinator::workloads::qsort::{self, QsortConfig};

/// Every single-node workload: identical checksum AND identical
/// virtual time across reruns (full-stack repeatability).
#[test]
fn workloads_repeat_exactly() {
    let run_all = || {
        vec![
            {
                let r = md5::run(Mode::Determinator, Md5Config::quick(3));
                (r.checksum, r.vclock_ns)
            },
            {
                let r = matmult::run(Mode::Determinator, MatmultConfig { threads: 3, n: 48 });
                (r.checksum, r.vclock_ns)
            },
            {
                let r = qsort::run(Mode::Determinator, QsortConfig { depth: 2, n: 8192 });
                (r.checksum, r.vclock_ns)
            },
            {
                let r = blackscholes::run(Mode::Determinator, BsConfig::quick(3));
                (r.checksum, r.vclock_ns)
            },
            {
                let r = fft::run(
                    Mode::Determinator,
                    FftConfig {
                        threads: 3,
                        log2n: 10,
                    },
                );
                (r.checksum, r.vclock_ns)
            },
            {
                let r = lu::run(
                    Mode::Determinator,
                    LuConfig {
                        threads: 3,
                        n: 40,
                        layout: Layout::NonContiguous,
                    },
                );
                (r.checksum, r.vclock_ns)
            },
        ]
    };
    assert_eq!(run_all(), run_all());
}

/// Distributed runs repeat exactly too (migration, demand paging and
/// network charges are all deterministic).
#[test]
fn distributed_runs_repeat_exactly() {
    let run = || {
        let r = dist::md5_tree(DistConfig {
            nodes: 4,
            size: 2_000,
            tcp_like: false,
        });
        (r.checksum, r.vclock_ns, r.stats.migrations)
    };
    assert_eq!(run(), run());
}

/// Checksums are also identical across Determinator and the
/// conventional baseline — the model changes timing, never results.
#[test]
fn results_mode_invariant() {
    for threads in [1usize, 2, 5] {
        let d = matmult::run(Mode::Determinator, MatmultConfig { threads, n: 40 });
        let b = matmult::run(Mode::Baseline, MatmultConfig { threads, n: 40 });
        assert_eq!(d.checksum, b.checksum, "threads={threads}");
    }
}

/// The shell's console output is byte-identical run to run, including
/// across interleaved child processes (§4.3).
#[test]
fn shell_script_repeats_byte_identically() {
    let script = "
        echo one > a
        echo two > b
        cat a b | wc
        ls
    ";
    let run = || {
        run_process_tree(KernelConfig::default(), ProgramRegistry::new(), move |p| {
            shell::run_script(p, script)
        })
    };
    let x = run();
    let y = run();
    assert_eq!(x.exit, Ok(0));
    assert_eq!(x.console(), y.console());
    assert_eq!(x.vclock_ns, y.vclock_ns);
}

/// Record/replay end-to-end through the process runtime: a run
/// consuming console, clock, and entropy inputs replays bit-for-bit
/// from its log alone (§2.1).
#[test]
fn record_replay_full_stack() {
    let app = |p: &mut determinator::runtime::Proc<'_>| {
        let mut buf = [0u8; 16];
        let n = p.read(0, &mut buf)?;
        let clock = p.ctx().dev_read(DeviceId::Clock)?.unwrap();
        let rand = p.ctx().dev_read(DeviceId::Random)?.unwrap();
        p.write(1, &buf[..n])?;
        p.write(1, &clock)?;
        p.write(1, &rand)?;
        Ok(0)
    };
    let kernel = Kernel::new(KernelConfig::default());
    kernel.push_input(DeviceId::ConsoleIn, b"input!".to_vec());
    let rec = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.exit, Ok(0));

    let kernel = Kernel::new(KernelConfig {
        io: IoMode::Replay(rec.io_log.clone()),
        ..Default::default()
    });
    let rep = run_process_tree_on(kernel, ProgramRegistry::new(), app);
    assert_eq!(rec.console(), rep.console());
    assert_eq!(rec.vclock_ns, rep.vclock_ns);
}

/// N-way fork/join with the join order permuted by seed: the parent's
/// final memory digest must be identical regardless of the order in
/// which children are merged. Guards the merge engine's dirty-set
/// optimization against any join-order sensitivity.
#[test]
fn n_way_join_order_digest_invariant() {
    let region = Region::new(0x1000, 0x9000);
    // Runs an N-way fork/join, merging children in the order produced
    // by repeatedly striding `seed` over the remaining set, and
    // returns the parent's final memory digest.
    let run = |n: u64, seed: u64| {
        let order: Vec<u64> = {
            let mut remaining: Vec<u64> = (0..n).collect();
            let mut out = Vec::new();
            let mut pos = seed as usize;
            while !remaining.is_empty() {
                pos = (pos * 7 + seed as usize + 3) % remaining.len();
                out.push(remaining.remove(pos));
            }
            out
        };
        let out = Kernel::new(KernelConfig::default()).run(move |ctx| {
            ctx.mem_mut()
                .map_zero(region, determinator::memory::Perm::RW)?;
            ctx.mem_mut().write_u64(0x1000, 0xC0FFEE)?;
            for i in 0..n {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            // Disjoint slots plus a disjoint per-child run.
                            c.mem_mut().write_u64(0x2000 + i * 8, i * i + 1)?;
                            c.mem_mut().write_u64(0x4000 + i * 0x800, i + 7)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(region))
                        .snap()
                        .start(),
                )?;
            }
            for &i in &order {
                ctx.get(i, GetSpec::new().merge(region))?;
            }
            Ok(ctx.mem().content_digest().value() as i32)
        });
        out.exit.expect("no trap")
    };
    for n in [2u64, 4, 8] {
        let digests: Vec<i32> = (0..4).map(|seed| run(n, seed)).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "join order changed the merged digest for n={n}: {digests:?}"
        );
    }
}

/// Host-schedule independence at the workload level: sleeping threads
/// at random points must not change anything observable.
#[test]
fn host_schedule_perturbation_is_invisible() {
    // The qsort forks a tree of spaces whose host threads race; the
    // kernel rendezvous discipline must hide all of it.
    let runs: Vec<(u64, u64)> = (0..3)
        .map(|_| {
            let r = qsort::run(
                Mode::Determinator,
                QsortConfig {
                    depth: 3,
                    n: 20_000,
                },
            );
            (r.checksum, r.vclock_ns)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
