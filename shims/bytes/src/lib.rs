//! Vendored shim for the parts of `bytes` this workspace uses: an
//! immutable, cheaply clonable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation shared across clones).
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }
}
