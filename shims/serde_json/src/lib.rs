//! Vendored shim for the parts of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and `Error`.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, false);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, true);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.i)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, depth: usize, pretty: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, depth + 1, pretty);
                write_value(item, out, depth + 1, pretty);
            }
            newline_indent(out, depth, pretty);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, depth + 1, pretty);
                write_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, depth + 1, pretty);
            }
            newline_indent(out, depth, pretty);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, depth: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                c as char, self.i
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{lit}` at offset {}", self.i)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at offset {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at offset {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at offset {}",
                self.i
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .b
            .get(at..at + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            // `self.i` is at the `u`; leaves it on the
                            // last hex digit for the shared `+= 1` below.
                            let code = self.parse_hex4(self.i + 1)?;
                            self.i += 4;
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                // UTF-16 surrogate pair: a conforming
                                // producer escapes non-BMP chars as
                                // \uHHHH\uLLLL.
                                if self.b.get(self.i + 1..self.i + 3) != Some(&b"\\u"[..]) {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.parse_hex4(self.i + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                self.i += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Vec<u8>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1u64, u64::MAX];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Conforming producers (including real serde_json with
        // ASCII-escaping) emit non-BMP chars as UTF-16 pairs.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err()); // unpaired high
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err()); // bad low
        assert!(from_str::<String>("\"\\udc00\"").is_err()); // lone low
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{263a}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
