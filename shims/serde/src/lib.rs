//! Vendored shim for the parts of `serde` this workspace uses.
//!
//! Models serialization as conversion to/from a JSON-ish [`Value`]
//! tree. The derive macros (re-exported from the `serde_derive` shim)
//! support named-field structs and unit-variant enums, plus
//! `#[serde(skip)]`. `serde_json` (also vendored) renders [`Value`]
//! as real JSON text.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-ish data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

// A `Value` serializes as itself, so pre-built trees (e.g. rewritten
// event encodings) can be rendered by `serde_json` directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ... and deserializes as itself, so callers can parse JSON text into
// a raw tree and walk it by hand (e.g. checkpoint payloads).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Conversion from the data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a struct field (used by derived impls).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::from_value(f),
        None => Err(DeError::msg(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))?,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            _ => Err(DeError::msg("expected number")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
