//! Vendored shim for the parts of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, and `Bencher::{iter, iter_custom}`.
//!
//! It is a smoke harness, not a statistics engine: each benchmark is
//! calibrated to a small fixed measurement budget and the mean ns/iter
//! is printed, so `cargo bench` finishes quickly and `cargo bench
//! --no-run` keeps the harnesses compiling.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (now in std).
pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        // Cap so vendored benches stay quick even with real-criterion
        // style budgets of seconds per benchmark.
        self.measurement_time = t.min(Duration::from_millis(500));
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t.min(Duration::from_millis(100));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.c, &id, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; records one timed batch.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iterations);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    // Warm-up + calibration: grow the batch until it costs ~1/sample_size
    // of the measurement budget.
    let per_sample = (c.measurement_time / c.sample_size as u32).max(Duration::from_micros(100));
    let warm_up_deadline = Instant::now() + c.warm_up_time;
    let mut iterations: u64 = 1;
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iterations >= 1 << 20 {
            break;
        }
        if b.elapsed < per_sample / 4 && Instant::now() < warm_up_deadline {
            iterations = iterations.saturating_mul(2);
        } else {
            iterations = iterations.saturating_mul(2).max(1);
        }
        if Instant::now() >= warm_up_deadline && b.elapsed >= per_sample / 8 {
            break;
        }
    }

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    let deadline = Instant::now() + c.measurement_time;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iterations;
        if Instant::now() >= deadline {
            break;
        }
    }
    let ns_per_iter = if total_iters == 0 {
        0.0
    } else {
        total.as_nanos() as f64 / total_iters as f64
    };
    println!("bench {id:<48} {ns_per_iter:>14.1} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn iter_custom_records_duration() {
        let mut b = Bencher {
            iterations: 10,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(Duration::from_nanos);
        assert_eq!(b.elapsed, Duration::from_nanos(10));
    }
}
