//! Vendored shim for the parts of `proptest` this workspace uses.
//!
//! Same `Strategy`/`proptest!` surface, but generation is driven by a
//! fixed deterministic RNG seeded from the test name (so every run and
//! every host explores the same cases) and failing cases are reported
//! without shrinking. Supported strategies: integer ranges (half-open
//! and inclusive), `any` for primitive ints, tuples up to arity 5,
//! `prop_map`, `collection::vec`, `sample::select`, and `prop_oneof!`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, any, prop_assert,
        prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not counted.
    Reject,
    /// `prop_assert*` failed.
    Fail(String),
}

/// Deterministic RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

/// FNV-1a, used to derive per-test seeds from test names.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy (`prop_oneof!` arms).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — uniform over the whole domain.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types `any` can generate.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies (max exclusive).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options` (must be nonempty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// `prop_oneof!` support: uniformly picks one of the boxed arms.
pub struct Union<V> {
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                ::std::file!(),
                ::std::line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                ::std::format!($($fmt)+),
                ::std::file!(),
                ::std::line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {
        match (&$l, &$r) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n at {}:{}",
                            __l, __r, ::std::file!(), ::std::line!()
                        ),
                    ));
                }
            }
        }
    };
    ($l:expr, $r:expr, $($fmt:tt)+) => {
        match (&$l, &$r) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                            ::std::format!($($fmt)+), __l, __r, ::std::file!(), ::std::line!()
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {
        match (&$l, &$r) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `left != right`\n  both: {:?}\n at {}:{}",
                            __l,
                            ::std::file!(),
                            ::std::line!()
                        ),
                    ));
                }
            }
        }
    };
}

/// The `proptest!` block macro. Each contained `#[test] fn name(arg in
/// strategy, ...) { body }` becomes a zero-argument test that runs
/// `config.cases` generated cases with a name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed: u64 = $crate::fnv1a(stringify!($name).as_bytes());
            let mut __done: u32 = 0;
            let mut __attempt: u64 = 0;
            while __done < __cfg.cases {
                assert!(
                    __attempt < (__cfg.cases as u64).saturating_mul(1000),
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name)
                );
                let __case_seed = __seed ^ __attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                __attempt += 1;
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = {
                    let mut __rng = $crate::TestRng::new(__case_seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed (test {}, case seed {:#x}):\n{}",
                            stringify!($name),
                            __case_seed,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::new(7);
        let mut b = super::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i16..=5, z in any::<u8>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u64..4, any::<u8>()).prop_map(|(a, b)| a + b as u64), 0..8)) {
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_select(w in prop_oneof![crate::sample::select(vec![1u32, 2, 3]), 10u32..12]) {
            prop_assert!(w <= 3 || w == 10 || w == 11, "got {}", w);
        }

        #[test]
        fn assume_rejects(v in any::<u8>()) {
            prop_assume!(v != 0);
            prop_assert_ne!(v, 0);
        }
    }
}
