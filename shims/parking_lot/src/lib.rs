//! Vendored shim for the parts of `parking_lot` this workspace uses:
//! `Mutex` (infallible `lock()`), `MutexGuard`, and `Condvar` whose
//! `wait` takes `&mut MutexGuard` (parking_lot's signature, adapted to
//! `std::sync` by briefly moving the inner guard out of an `Option`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutex that panics on poison instead of returning `Result`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard wrapper; the `Option` lets [`Condvar::wait`] move the inner
/// std guard out and back while holding only `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Condition variable matching parking_lot's `wait(&mut guard)` shape.
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
