//! Derive backend for the vendored `serde` shim.
//!
//! Parses the derive input with raw `proc_macro` tokens (no `syn` —
//! the build has no registry access) and supports exactly the shapes
//! the workspace uses: named-field structs and unit-variant enums,
//! plus the `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next().expect("derive input ended before struct/enum") {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                it.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    continue; // visibility etc.
                }
                let name = match it.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected type name, got {other:?}"),
                };
                let body = match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!(
                        "serde shim derives support only braced structs/enums \
                         (no generics, tuple or unit structs); got {other:?}"
                    ),
                };
                return if kw == "struct" {
                    Item::Struct {
                        name,
                        fields: parse_fields(body),
                    }
                } else {
                    Item::Enum {
                        name,
                        variants: parse_variants(body),
                    }
                };
            }
            _ => {}
        }
    }
}

/// True for `serde(skip)` / `serde(skip_serializing)` style attributes.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string().starts_with("skip"))),
        _ => false,
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let mut skip = false;
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            if let Some(TokenTree::Group(g)) = it.next() {
                if attr_is_serde_skip(g.stream()) {
                    skip = true;
                }
            }
        }
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if matches!(
                it.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                it.next(); // pub(crate) etc.
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        // Consume the type up to the next top-level comma. A `>`
        // joined to a preceding `-` is a return arrow, not a generic
        // close (e.g. `Box<dyn Fn(u64) -> u64>`).
        let mut depth = 0i32;
        let mut prev_dash = false;
        loop {
            let arrow_head = prev_dash;
            prev_dash = false;
            match it.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' if !arrow_head => {
                        depth -= 1;
                        assert!(
                            depth >= 0,
                            "serde shim: unbalanced `>` in type of field `{name}`"
                        );
                    }
                    ',' if depth == 0 => break,
                    '-' => prev_dash = true,
                    _ => {}
                },
                Some(_) => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            it.next();
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        match it.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            other => {
                panic!("serde shim supports only unit enum variants; got {other:?} after `{name}`")
            }
        }
    }
    variants
}

fn render_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ \
                 let mut __f: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();"
            ));
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                out.push_str(&format!(
                    "__f.push((::std::string::String::from(\"{fname}\"), \
                     ::serde::Serialize::to_value(&self.{fname})));"
                ));
            }
            out.push_str("::serde::Value::Object(__f) } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ \
                 ::serde::Value::Str(::std::string::String::from(match self {{"
            ));
            for v in variants {
                out.push_str(&format!("{name}::{v} => \"{v}\","));
            }
            out.push_str("})) } }");
        }
    }
    out
}

fn render_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ \
                 ::std::result::Result::Ok({name} {{"
            ));
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    out.push_str(&format!("{fname}: ::std::default::Default::default(),"));
                } else {
                    out.push_str(&format!("{fname}: ::serde::field(__v, \"{fname}\")?,"));
                }
            }
            out.push_str("}) } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ \
                 match __v {{ ::serde::Value::Str(__s) => match __s.as_str() {{"
            ));
            for v in variants {
                out.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                ));
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(\
                 ::std::format!(\"unknown {name} variant `{{}}`\", __other))), }}, \
                 _ => ::std::result::Result::Err(::serde::DeError::msg(\
                 \"expected string for enum {name}\")), }} }} }}"
            ));
        }
    }
    out
}
