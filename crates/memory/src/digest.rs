//! Deterministic content digests for cross-run equality assertions.

/// A 64-bit FNV-1a digest of memory contents.
///
/// Not cryptographic — used only by determinism tests to assert that
/// two executions produced byte-identical state without holding both
/// images in memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ContentDigest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ContentDigest {
    /// Returns a fresh digest in its initial state.
    pub fn new() -> ContentDigest {
        ContentDigest(FNV_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Returns the digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for ContentDigest {
    fn default() -> Self {
        ContentDigest::new()
    }
}

impl std::fmt::Display for ContentDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = ContentDigest::new();
        a.update(b"hello");
        let mut b = ContentDigest::new();
        b.update(b"hello");
        assert_eq!(a, b);
        let mut c = ContentDigest::new();
        c.update(b"olleh");
        assert_ne!(a, c);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut d = ContentDigest::new();
        d.update(b"a");
        assert_eq!(d.value(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(
            ContentDigest::new().to_string(),
            format!("{FNV_OFFSET:016x}")
        );
    }
}
