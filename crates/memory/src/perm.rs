//! Per-page access permissions.

use std::fmt;

/// Page access permissions (read / write bits).
///
/// The Determinator kernel's `Perm` option on `Put`/`Get` sets these on
/// a virtual memory range (§3.2). A page with [`Perm::NONE`] is mapped
/// but inaccessible, which the user-level runtime uses, for example, to
/// write-protect file system images between operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perm(u8);

impl Perm {
    /// No access.
    pub const NONE: Perm = Perm(0);
    /// Read-only.
    pub const R: Perm = Perm(1);
    /// Write-only (rarely useful alone, provided for completeness).
    pub const W: Perm = Perm(2);
    /// Read-write.
    pub const RW: Perm = Perm(3);

    /// Returns true if `self` grants every bit in `need`.
    #[inline]
    pub fn allows(self, need: Perm) -> bool {
        self.0 & need.0 == need.0
    }

    /// Returns the union of two permission sets.
    #[inline]
    pub fn union(self, other: Perm) -> Perm {
        Perm(self.0 | other.0)
    }

    /// Returns true if no access is granted.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.allows(Perm::R) { "r" } else { "-" };
        let w = if self.allows(Perm::W) { "w" } else { "-" };
        write!(f, "{r}{w}")
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_is_bitwise() {
        assert!(Perm::RW.allows(Perm::R));
        assert!(Perm::RW.allows(Perm::W));
        assert!(Perm::RW.allows(Perm::RW));
        assert!(!Perm::R.allows(Perm::W));
        assert!(!Perm::NONE.allows(Perm::R));
        // Everything allows NONE.
        assert!(Perm::NONE.allows(Perm::NONE));
    }

    #[test]
    fn union_combines() {
        assert_eq!(Perm::R.union(Perm::W), Perm::RW);
        assert_eq!(Perm::NONE.union(Perm::R), Perm::R);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Perm::RW), "rw");
        assert_eq!(format!("{:?}", Perm::R), "r-");
        assert_eq!(format!("{:?}", Perm::NONE), "--");
    }
}
