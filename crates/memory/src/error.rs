//! Memory access and merge errors.

use crate::Perm;

/// Errors raised by address-space operations.
///
/// In the kernel these become processor-style traps delivered to the
/// space's parent (an implicit `Ret`, §3.2), so each variant carries
/// the faulting address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Access to an address with no page mapped.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// Access denied by the page's permissions.
    PermDenied {
        /// The faulting address.
        addr: u64,
        /// The access that was attempted.
        need: Perm,
    },
    /// A kernel-level operation was given a non-page-aligned boundary.
    Misaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// Two spaces changed the same byte since the reference snapshot.
    ///
    /// The paper treats this "like an illegal memory access or
    /// divide-by-zero" (§3.2): a reliably detected, schedule-independent
    /// conflict rather than a silently racing write.
    Conflict {
        /// The first conflicting address found (lowest).
        addr: u64,
    },
    /// An address computation overflowed the 64-bit space.
    AddressOverflow,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::PermDenied { addr, need } => {
                write!(f, "permission denied at {addr:#x} (need {need})")
            }
            MemError::Misaligned { addr } => write!(f, "address {addr:#x} not page-aligned"),
            MemError::Conflict { addr } => {
                write!(f, "write/write merge conflict at {addr:#x}")
            }
            MemError::AddressOverflow => write!(f, "address computation overflowed"),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MemError::Unmapped { addr: 0x1000 }.to_string(),
            "unmapped address 0x1000"
        );
        assert_eq!(
            MemError::Conflict { addr: 0x2004 }.to_string(),
            "write/write merge conflict at 0x2004"
        );
        assert!(
            MemError::PermDenied {
                addr: 1,
                need: Perm::W
            }
            .to_string()
            .contains("-w")
        );
    }
}
