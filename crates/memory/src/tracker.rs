//! Page access tracking for demand-paging simulation.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::Mutex;

use crate::page::vpn_of;

/// Records the set of virtual pages touched by reads and writes.
///
/// The cluster layer (`det-cluster`) installs a tracker on a migrated
/// space's memory to learn which pages the space demands on its new
/// node; each first touch of a non-resident page is charged as a
/// cross-node page pull, reproducing the paper's demand-paging
/// migration protocol (§3.3).
///
/// The tracker is shared (`Arc`) so the kernel can read it while user
/// code runs; a mutex keeps it thread-safe. Determinism is unaffected:
/// the *sets* recorded depend only on the program's own accesses.
#[derive(Clone, Default, Debug)]
pub struct AccessTracker {
    inner: Arc<Mutex<TrackerState>>,
}

#[derive(Default, Debug)]
struct TrackerState {
    read: BTreeSet<u64>,
    written: BTreeSet<u64>,
}

impl AccessTracker {
    /// Returns a fresh, empty tracker.
    pub fn new() -> AccessTracker {
        AccessTracker::default()
    }

    /// Records a read of `len` bytes at `addr`.
    pub fn record_read_range(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut st = self.inner.lock().expect("tracker poisoned");
        for vpn in vpn_of(addr)..=vpn_of(addr + len - 1) {
            st.read.insert(vpn);
        }
    }

    /// Records a write of `len` bytes at `addr`.
    pub fn record_write_range(&self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut st = self.inner.lock().expect("tracker poisoned");
        for vpn in vpn_of(addr)..=vpn_of(addr + len - 1) {
            st.written.insert(vpn);
        }
    }

    /// Returns the sorted set of pages read (including read-modify-write).
    pub fn pages_read(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("tracker poisoned")
            .read
            .iter()
            .copied()
            .collect()
    }

    /// Returns the sorted set of pages written.
    pub fn pages_written(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("tracker poisoned")
            .written
            .iter()
            .copied()
            .collect()
    }

    /// Returns the sorted union of all pages touched.
    pub fn pages_touched(&self) -> Vec<u64> {
        let st = self.inner.lock().expect("tracker poisoned");
        st.read.union(&st.written).copied().collect()
    }

    /// Clears the recorded sets (between migration legs).
    pub fn reset(&self) {
        let mut st = self.inner.lock().expect("tracker poisoned");
        st.read.clear();
        st.written.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressSpace, Perm, Region};

    #[test]
    fn records_page_spans() {
        let t = AccessTracker::new();
        t.record_read_range(0x1ff0, 0x20); // Spans pages 1 and 2.
        t.record_write_range(0x3000, 1);
        assert_eq!(t.pages_read(), vec![1, 2]);
        assert_eq!(t.pages_written(), vec![3]);
        assert_eq!(t.pages_touched(), vec![1, 2, 3]);
        t.reset();
        assert!(t.pages_touched().is_empty());
    }

    #[test]
    fn integrates_with_address_space() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x4000), Perm::RW).unwrap();
        let t = AccessTracker::new();
        s.set_tracker(Some(t.clone()));
        s.read_u64(0x1000).unwrap();
        s.write_u64(0x2000, 5).unwrap();
        assert_eq!(t.pages_read(), vec![1]);
        assert_eq!(t.pages_written(), vec![2]);
        // Detaching stops recording.
        s.set_tracker(None);
        s.write_u64(0x3000, 5).unwrap();
        assert_eq!(t.pages_written(), vec![2]);
    }

    #[test]
    fn zero_len_ignored() {
        let t = AccessTracker::new();
        t.record_read_range(0x1000, 0);
        assert!(t.pages_touched().is_empty());
    }
}
