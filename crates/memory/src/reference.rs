//! The *reference merge oracle*: a deliberately naive implementation
//! of the §3.2 merge semantics, kept for differential testing and
//! benchmarking of the optimized engine
//! ([`AddressSpace::try_merge_from`]).
//!
//! [`merge_from_reference`] walks **every mapped child page** in the
//! region and compares **every byte individually** — no dirty
//! write-set, no frame-identity skips, no word chunking. Its observable
//! behaviour (final parent bytes and permissions, conflict
//! presence/address/detail, `bytes_copied`, `pages_mapped`, and which
//! error a doomed merge fails with) is required to be identical to
//! [`AddressSpace::try_merge_from`]; its *work* counters
//! (`pages_scanned`, `bytes_compared`, …) intentionally reproduce the
//! pre-optimization engine's costs, so a test or bench can quantify
//! the optimization by comparing the two stats records on the same
//! inputs.
//!
//! One page-level rule is *semantics*, not a shortcut, and the oracle
//! must therefore encode it: a page whose parent frame is
//! pointer-identical to the child frame (adopted at an earlier join)
//! is already merged — under non-strict policies it receives no
//! writes, charges no copies, and needs no write permission. Frame
//! identity is observable input state, like page contents.
//!
//! Beyond that, keep this module boring. Every shortcut added here
//! weakens the oracle.

use std::sync::Arc;

use crate::page::PAGE_SIZE;
use crate::{
    AddressSpace, ConflictPolicy, MemError, MergeConflict, MergeStats, Perm, Region, Result,
};

/// Naive three-way merge of `child`'s changes since `snap` into
/// `parent` over the page-aligned `region`.
///
/// Semantics match [`AddressSpace::try_merge_from`] exactly (see its
/// docs); only the algorithm differs. Like the optimized engine it
/// validates before writing: a conflict or a read-only parent page is
/// detected in pass 1 and leaves the parent byte-identical.
pub fn merge_from_reference(
    parent: &mut AddressSpace,
    child: &AddressSpace,
    snap: &AddressSpace,
    region: Region,
    policy: ConflictPolicy,
) -> Result<(MergeStats, Option<MergeConflict>)> {
    region.check_page_aligned()?;
    let mut stats = MergeStats::default();

    // Pass 1: full byte scan of every mapped child page, in ascending
    // address order. Per page: a conflict (lowest byte first) wins over
    // a permission violation; either aborts before anything is applied.
    let mut apply: Vec<u64> = Vec::new();
    for vpn in child.vpns_in(region) {
        stats.pages_scanned += 1;
        let (child_frame, _) = child.entry_frame(vpn).expect("vpn from child map");
        let child_bytes = child_frame.bytes();
        let base = snap.entry_frame(vpn).map(|(f, _)| f.bytes());
        // The semantic alias rule (see module docs): a parent page
        // holding the child's exact frame is already merged under
        // non-strict policies.
        if policy != ConflictPolicy::Strict
            && parent
                .entry_frame(vpn)
                .is_some_and(|(pf, _)| Arc::ptr_eq(pf, child_frame))
        {
            stats.pages_aliased += 1;
            continue;
        }
        let parent_entry = child_to_parent(parent, vpn);
        stats.pages_diffed += 1;
        stats.bytes_compared += PAGE_SIZE as u64;
        let mut page_dirty = false;
        let mut conflict: Option<MergeConflict> = None;
        for i in 0..PAGE_SIZE {
            let b = base.map_or(0, |bb| bb[i]);
            let c = child_bytes[i];
            if c == b {
                continue;
            }
            page_dirty = true;
            if policy == ConflictPolicy::ChildWins {
                continue;
            }
            let p = parent_entry.map_or(b, |(pb, _)| pb[i]);
            if p != b {
                let benign = policy == ConflictPolicy::BenignSameValue && p == c;
                if !benign && conflict.is_none() {
                    conflict = Some(MergeConflict {
                        addr: (vpn << crate::PAGE_SHIFT) + i as u64,
                        base: b,
                        child: c,
                        parent: p,
                    });
                }
            }
        }
        if let Some(c) = conflict {
            return Ok((stats, Some(c)));
        }
        if page_dirty {
            if let Some((_, pperm)) = parent_entry {
                if !pperm.allows(Perm::W) {
                    return Err(MemError::PermDenied {
                        addr: vpn << crate::PAGE_SHIFT,
                        need: Perm::W,
                    });
                }
            }
            apply.push(vpn);
        }
    }

    // Pass 2: apply byte-at-a-time. A page the parent lacks is mapped
    // zero and copied wholesale (all PAGE_SIZE bytes) — the naive
    // equivalent of the optimized engine's O(1) frame adoption,
    // producing identical parent contents and the same
    // `bytes_copied`/`pages_mapped` charge.
    for vpn in apply {
        let (child_frame, child_perm) = child.entry_frame(vpn).expect("still mapped");
        let child_frame = Arc::clone(child_frame);
        let child_bytes = child_frame.bytes();
        let snap_frame = snap.entry_frame(vpn).map(|(f, _)| Arc::clone(f));
        let base = snap_frame.as_ref().map(|f| f.bytes());
        let addr = vpn << crate::PAGE_SHIFT;
        if parent.entry_frame(vpn).is_none() {
            stats.pages_mapped += 1;
            parent.map_zero(
                Region::new(addr, addr + PAGE_SIZE as u64),
                child_perm.union(Perm::RW),
            )?;
            let dst = parent.frame_mut(vpn).expect("just mapped");
            for (i, &c) in child_bytes.iter().enumerate() {
                dst.bytes_mut()[i] = c;
                stats.bytes_copied += 1;
            }
            continue;
        }
        let dst = parent.frame_mut(vpn).expect("checked above");
        for i in 0..PAGE_SIZE {
            let b = base.map_or(0, |bb| bb[i]);
            let c = child_bytes[i];
            if c != b {
                dst.bytes_mut()[i] = c;
                stats.bytes_copied += 1;
            }
        }
    }
    Ok((stats, None))
}

/// Reads the parent's page bytes and permissions at `vpn`, if mapped.
#[allow(clippy::type_complexity)]
fn child_to_parent(parent: &AddressSpace, vpn: u64) -> Option<(&[u8; PAGE_SIZE], Perm)> {
    parent.entry_frame(vpn).map(|(f, p)| (f.bytes(), p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_documented_semantics() {
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        let snap = child.snapshot();
        child.write(0x1100, b"abc").unwrap();
        parent.write(0x2100, b"xyz").unwrap();
        let (stats, conflict) = merge_from_reference(
            &mut parent,
            &child,
            &snap,
            Region::new(0x1000, 0x3000),
            ConflictPolicy::Strict,
        )
        .unwrap();
        assert!(conflict.is_none());
        assert_eq!(parent.read_vec(0x1100, 3).unwrap(), b"abc");
        assert_eq!(parent.read_vec(0x2100, 3).unwrap(), b"xyz");
        assert_eq!(stats.bytes_copied, 3);
        // Naive costs: every mapped page fully scanned.
        assert_eq!(stats.pages_scanned, 2);
        assert_eq!(stats.bytes_compared, 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn oracle_reports_lowest_conflict() {
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x2000), 0x1000)
            .unwrap();
        let snap = child.snapshot();
        child.write_u8(0x1010, 1).unwrap();
        child.write_u8(0x1020, 2).unwrap();
        parent.write_u8(0x1010, 3).unwrap();
        parent.write_u8(0x1020, 4).unwrap();
        let (_, conflict) = merge_from_reference(
            &mut parent,
            &child,
            &snap,
            Region::new(0x1000, 0x2000),
            ConflictPolicy::Strict,
        )
        .unwrap();
        assert_eq!(conflict.expect("conflict").addr, 0x1010);
    }
}
