//! Address-space deltas: the serializable difference between a space
//! and an earlier clone of itself.
//!
//! [`AddressSpace::delta_since`](crate::AddressSpace::delta_since)
//! computes the exact set of pages that changed relative to a base
//! clone, and
//! [`AddressSpace::apply_delta`](crate::AddressSpace::apply_delta)
//! replays it onto a replica of that base. Because a clone pins every
//! frame it shares, any write in the original necessarily COWs the
//! frame away from the base — so frame-pointer inequality finds
//! exactly the written pages, in O(changed leaves) thanks to the
//! structurally shared table (untouched leaves compare equal by one
//! `Arc` pointer).
//!
//! The delta preserves everything the merge engine's fast paths
//! observe, so a replica rebuilt from deltas merges with *identical*
//! [`MergeStats`](crate::MergeStats) as the original:
//!
//! * global-zero-frame identity ([`PageDeltaOp::WriteZero`]) — a
//!   freshly zero-mapped page stays pointer-equal to the shared zero
//!   frame on the replica, as it was live;
//! * the dirty write-set — pages dirtied without a frame change (for
//!   example re-zeroing an already-zero mapping) are carried as
//!   [`PageDeltaOp::MarkDirty`];
//! * leaf sharing — every delta op unshares the touched page-table
//!   leaf on apply, exactly as the corresponding live mutation did.
//!
//! The only assumption is that no `snapshot()` was taken between the
//! base clone and the delta (a snapshot clears the dirty set, which a
//! delta cannot un-mark). The kernel's tracer takes its base clones
//! only at rendezvous boundaries, where that holds by construction.

use crate::Perm;

/// How one page differs from the base.
#[derive(Clone, Debug, PartialEq)]
pub enum PageDeltaOp {
    /// The page holds these bytes in a private frame; mapped (or
    /// remapped) and marked dirty on apply.
    Write(Vec<u8>),
    /// The page aliases the global zero frame; mapped (or remapped)
    /// sharing that frame and marked dirty on apply.
    WriteZero,
    /// Only the permissions changed; the frame and dirty state are
    /// untouched.
    SetPerm,
    /// Only the dirty write-set membership changed (a write landed
    /// without changing the frame, e.g. re-zeroing a zero page).
    MarkDirty,
}

/// One changed page.
#[derive(Clone, Debug, PartialEq)]
pub struct PageDelta {
    /// Virtual page number.
    pub vpn: u64,
    /// The page's permissions after the change.
    pub perm: Perm,
    /// What changed.
    pub op: PageDeltaOp,
}

/// The difference between an address space and an earlier clone.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpaceDelta {
    /// Changed pages, in ascending VPN order.
    pub pages: Vec<PageDelta>,
    /// VPNs mapped in the base but no longer mapped, ascending.
    pub unmapped: Vec<u64>,
}

impl SpaceDelta {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.unmapped.is_empty()
    }
}
