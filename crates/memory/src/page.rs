//! Page frames: fixed-size, reference-counted, clone-on-write byte blocks.

use std::sync::Arc;
use std::sync::OnceLock;

/// Log2 of the page size, matching the x86 pages the paper's kernel uses.
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A physical page frame's contents.
///
/// Frames are immutable while shared; [`crate::AddressSpace`] clones a
/// frame before the first write when its reference count exceeds one
/// (copy-on-write). `Frame` is deliberately opaque so all mutation goes
/// through the address space, where permissions are checked.
#[derive(Clone)]
pub struct Frame {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Frame {
    /// Returns a new zero-filled frame.
    pub fn zeroed() -> Self {
        Frame {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Returns the frame's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Returns the frame's bytes mutably.
    ///
    /// Only the address space calls this, after ensuring exclusivity.
    #[inline]
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// Returns true if every byte of the frame is zero.
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Frame {{ nonzero_bytes: {nonzero} }}")
    }
}

/// Returns the globally shared all-zero frame.
///
/// Zero-fill mappings install this frame so that large zeroed regions
/// cost one pointer per page; the first write to such a page triggers
/// copy-on-write like any other shared frame.
pub(crate) fn zero_frame() -> Arc<Frame> {
    static ZERO: OnceLock<Arc<Frame>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new(Frame::zeroed())).clone()
}

/// Returns the virtual page number containing `addr`.
#[inline]
pub(crate) fn vpn_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Returns the byte offset of `addr` within its page.
#[inline]
pub(crate) fn offset_of(addr: u64) -> usize {
    (addr & (PAGE_SIZE as u64 - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_frame_is_zero() {
        assert!(Frame::zeroed().is_zero());
    }

    #[test]
    fn zero_frame_is_shared() {
        let a = zero_frame();
        let b = zero_frame();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Frame::zeroed();
        a.bytes_mut()[0] = 7;
        let mut b = a.clone();
        b.bytes_mut()[0] = 9;
        assert_eq!(a.bytes()[0], 7);
        assert_eq!(b.bytes()[0], 9);
    }

    #[test]
    fn vpn_and_offset() {
        assert_eq!(vpn_of(0), 0);
        assert_eq!(vpn_of(PAGE_SIZE as u64), 1);
        assert_eq!(vpn_of(PAGE_SIZE as u64 - 1), 0);
        assert_eq!(offset_of(PAGE_SIZE as u64 + 5), 5);
    }
}
