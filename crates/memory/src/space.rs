//! Sparse paged address spaces with copy-on-write sharing.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::digest::ContentDigest;
use crate::page::{Frame, PAGE_SIZE, offset_of, vpn_of, zero_frame};
use crate::tracker::AccessTracker;
use crate::{MemError, Perm, Region, Result};

/// One page-table entry: a shared frame plus its permissions.
#[derive(Clone, Debug)]
struct PageEntry {
    frame: Arc<Frame>,
    perm: Perm,
}

/// Public, read-only view of one mapped page (for inspection tools and
/// the cluster's residency accounting).
#[derive(Clone, Debug)]
pub struct PageInfo {
    /// Virtual page number.
    pub vpn: u64,
    /// Page permissions.
    pub perm: Perm,
    /// Number of address spaces (and snapshots) sharing the frame.
    pub frame_refs: usize,
    /// True if the page still aliases the global zero frame.
    pub is_zero_frame: bool,
}

/// A private virtual address space: the memory half of a Determinator
/// *space* (§3.1).
///
/// The map is sparse: untouched addresses are unmapped and fault.
/// Cloning an `AddressSpace` (or taking a [`snapshot`]) copies only the
/// page table; frames are shared and cloned lazily on first write
/// (copy-on-write), which is what makes the paper's fork/snapshot/merge
/// cycle affordable.
///
/// [`snapshot`]: AddressSpace::snapshot
#[derive(Clone, Default)]
pub struct AddressSpace {
    pages: BTreeMap<u64, PageEntry>,
    /// The *dirty write-set*: VPNs whose contents may have changed
    /// since the last [`snapshot`](AddressSpace::snapshot) (which
    /// clears it). Every mutation path — `write`, `map_zero`,
    /// `copy_from`, and the merge engine's own applies — records the
    /// pages it touches here, so `try_merge_from` can visit only the
    /// pages a child actually dirtied instead of every mapped page in
    /// the merge region. An over-approximation is sound (extra entries
    /// are rediscovered clean by frame identity or byte diffing); a
    /// missed entry would lose writes, so every content-mutating path
    /// below must mark it.
    dirty: BTreeSet<u64>,
    tracker: Option<AccessTracker>,
}

impl AddressSpace {
    /// Returns an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Installs an access tracker that records every page touched by
    /// reads and writes (used by the cluster layer to account demand
    /// paging). Returns any previous tracker.
    pub fn set_tracker(&mut self, tracker: Option<AccessTracker>) -> Option<AccessTracker> {
        std::mem::replace(&mut self.tracker, tracker)
    }

    /// Returns a reference to the installed access tracker, if any.
    pub fn tracker(&self) -> Option<&AccessTracker> {
        self.tracker.as_ref()
    }

    /// Returns the number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Returns the total mapped size in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        (self.pages.len() as u64) << crate::PAGE_SHIFT
    }

    /// Iterates information about every mapped page, in address order.
    pub fn iter_pages(&self) -> impl Iterator<Item = PageInfo> + '_ {
        let zero = zero_frame();
        self.pages.iter().map(move |(&vpn, e)| PageInfo {
            vpn,
            perm: e.perm,
            frame_refs: Arc::strong_count(&e.frame),
            is_zero_frame: Arc::ptr_eq(&e.frame, &zero),
        })
    }

    /// Maps `region` as zero-filled pages with permissions `perm`.
    ///
    /// Already-mapped pages in the range are replaced by zero pages.
    /// The zero frame is shared, so this is O(pages) regardless of size.
    /// The region must be page-aligned.
    pub fn map_zero(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        let zero = zero_frame();
        for vpn in region.vpns() {
            self.pages.insert(
                vpn,
                PageEntry {
                    frame: zero.clone(),
                    perm,
                },
            );
            self.dirty.insert(vpn);
        }
        Ok(())
    }

    /// Like [`map_zero`](AddressSpace::map_zero) but leaves
    /// already-mapped pages in the range untouched (contents, frames,
    /// and permissions). Returns the number of pages newly mapped.
    ///
    /// Re-staging paths (the process runtime rewrites its file-system
    /// image region at every rendezvous) use this to avoid discarding
    /// frames — and dirtying pages — that the subsequent write will
    /// overwrite anyway.
    pub fn map_zero_if_unmapped(&mut self, region: Region, perm: Perm) -> Result<usize> {
        region.check_page_aligned()?;
        let zero = zero_frame();
        let mut added = 0;
        for vpn in region.vpns() {
            if self.pages.contains_key(&vpn) {
                continue;
            }
            self.pages.insert(
                vpn,
                PageEntry {
                    frame: zero.clone(),
                    perm,
                },
            );
            self.dirty.insert(vpn);
            added += 1;
        }
        Ok(added)
    }

    /// Removes all mappings in the page-aligned `region`.
    pub fn unmap(&mut self, region: Region) -> Result<()> {
        region.check_page_aligned()?;
        for vpn in region.vpns() {
            self.pages.remove(&vpn);
            self.dirty.remove(&vpn);
        }
        Ok(())
    }

    /// Sets permissions on every mapped page in the page-aligned
    /// `region`; unmapped pages in the range are skipped.
    pub fn set_perm(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        for vpn in region.vpns() {
            if let Some(e) = self.pages.get_mut(&vpn) {
                e.perm = perm;
            }
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u64) -> Option<Perm> {
        self.pages.get(&vpn_of(addr)).map(|e| e.perm)
    }

    /// Virtually copies `src_region` (page-aligned) of `src` to
    /// `dst_start` (page-aligned) in `self`.
    ///
    /// Frames are shared copy-on-write: no bytes move until one side
    /// writes. Pages unmapped in the source become unmapped in the
    /// destination, making the copy an exact replica of the range.
    /// Returns the number of pages installed.
    pub fn copy_from(
        &mut self,
        src: &AddressSpace,
        src_region: Region,
        dst_start: u64,
    ) -> Result<usize> {
        src_region.check_page_aligned()?;
        if dst_start & (PAGE_SIZE as u64 - 1) != 0 {
            return Err(MemError::Misaligned { addr: dst_start });
        }
        let delta = (dst_start >> crate::PAGE_SHIFT) as i128 - vpn_of(src_region.start) as i128;
        let mut installed = 0;
        for vpn in src_region.vpns() {
            let dst_vpn = (vpn as i128 + delta) as u64;
            match src.pages.get(&vpn) {
                Some(e) => {
                    self.pages.insert(dst_vpn, e.clone());
                    self.dirty.insert(dst_vpn);
                    installed += 1;
                }
                None => {
                    self.pages.remove(&dst_vpn);
                    self.dirty.remove(&dst_vpn);
                }
            }
        }
        Ok(installed)
    }

    /// Takes a snapshot: a cheap page-table copy whose frames are
    /// shared with `self` until either side writes.
    ///
    /// The snapshot is the *reference state* against which
    /// [`merge_from`](AddressSpace::merge_from) computes changes, as
    /// the kernel's `Snap` option does (§3.2). Trackers are not
    /// inherited by snapshots.
    ///
    /// Taking a snapshot **clears this space's dirty write-set**: the
    /// returned snapshot is byte-identical to `self` at this instant,
    /// so "changed since the snapshot" and "dirtied since the write-set
    /// was cleared" start out as the same (empty) set, and every later
    /// mutation maintains both. This is the invariant that lets
    /// [`try_merge_from`](AddressSpace::try_merge_from) visit only
    /// dirty pages; it holds for any snapshot taken at or after the
    /// most recent `snapshot()` call (see DESIGN.md §3).
    pub fn snapshot(&mut self) -> AddressSpace {
        self.dirty.clear();
        AddressSpace {
            pages: self.pages.clone(),
            dirty: BTreeSet::new(),
            tracker: None,
        }
    }

    /// Returns true if the page frames backing `vpn` are the identical
    /// physical frame in `self` and `other` (O(1) unchanged-page test).
    pub fn same_frame(&self, other: &AddressSpace, vpn: u64) -> bool {
        match (self.pages.get(&vpn), other.pages.get(&vpn)) {
            (Some(a), Some(b)) => Arc::ptr_eq(&a.frame, &b.frame),
            (None, None) => true,
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Byte access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Fails with [`MemError::Unmapped`] or [`MemError::PermDenied`] at
    /// the first inaccessible byte; earlier bytes may already have been
    /// copied into `buf` (the kernel aborts the faulting space anyway).
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.access(addr, buf.len(), Perm::R, |off, frame_bytes, chunk| {
            buf[off..off + chunk.len()].copy_from_slice(chunk);
            let _ = frame_bytes;
        })
    }

    /// Writes `data` starting at `addr`, cloning shared frames first
    /// (copy-on-write).
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let end = addr
            .checked_add(data.len() as u64)
            .ok_or(MemError::AddressOverflow)?;
        // Validate permissions over the whole range first so that a
        // failed write is all-or-nothing.
        for vpn in Region::new(addr, end).vpns() {
            match self.pages.get(&vpn) {
                None => {
                    return Err(MemError::Unmapped {
                        addr: vpn << crate::PAGE_SHIFT,
                    });
                }
                Some(e) if !e.perm.allows(Perm::W) => {
                    return Err(MemError::PermDenied {
                        addr: vpn << crate::PAGE_SHIFT,
                        need: Perm::W,
                    });
                }
                Some(_) => {}
            }
        }
        if let Some(t) = &self.tracker {
            t.record_write_range(addr, data.len() as u64);
        }
        for vpn in Region::new(addr, end).vpns() {
            self.dirty.insert(vpn);
        }
        let mut cursor = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let off = offset_of(cursor);
            let chunk = remaining.len().min(PAGE_SIZE - off);
            let entry = self
                .pages
                .get_mut(&vpn_of(cursor))
                .expect("validated above");
            // Copy-on-write: clone the frame if it is shared.
            let frame = Arc::make_mut(&mut entry.frame);
            frame.bytes_mut()[off..off + chunk].copy_from_slice(&remaining[..chunk]);
            cursor += chunk as u64;
            remaining = &remaining[chunk..];
        }
        Ok(())
    }

    /// Shared read walk used by `read`; calls `sink(buf_offset, frame, chunk)`
    /// per page-sized chunk.
    fn access(
        &self,
        addr: u64,
        len: usize,
        need: Perm,
        mut sink: impl FnMut(usize, &Frame, &[u8]),
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let _end = addr
            .checked_add(len as u64)
            .ok_or(MemError::AddressOverflow)?;
        if let Some(t) = &self.tracker {
            t.record_read_range(addr, len as u64);
        }
        let mut cursor = addr;
        let mut done = 0usize;
        while done < len {
            let off = offset_of(cursor);
            let chunk = (len - done).min(PAGE_SIZE - off);
            let entry = self.pages.get(&vpn_of(cursor)).ok_or(MemError::Unmapped {
                addr: vpn_of(cursor) << crate::PAGE_SHIFT,
            })?;
            if !entry.perm.allows(need) {
                return Err(MemError::PermDenied {
                    addr: vpn_of(cursor) << crate::PAGE_SHIFT,
                    need,
                });
            }
            sink(done, &entry.frame, &entry.frame.bytes()[off..off + chunk]);
            cursor += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&self, addr: u64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<()> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<()> {
        self.write_u64(addr, v.to_bits())
    }

    /// Reads `n` little-endian `u64`s starting at `addr`.
    pub fn read_u64s(&self, addr: u64, n: usize) -> Result<Vec<u64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `u64`s little-endian starting at `addr`.
    pub fn write_u64s(&mut self, addr: u64, vals: &[u64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Reads `n` little-endian `f64`s starting at `addr`.
    pub fn read_f64s(&self, addr: u64, n: usize) -> Result<Vec<f64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `f64`s little-endian starting at `addr`.
    pub fn write_f64s(&mut self, addr: u64, vals: &[f64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Returns a deterministic digest of the mapped contents
    /// (vpn, perm, bytes), used by determinism tests to compare whole
    /// memory images across runs.
    pub fn content_digest(&self) -> ContentDigest {
        let mut d = ContentDigest::new();
        for (&vpn, e) in &self.pages {
            d.update_u64(vpn);
            d.update_u64(if e.perm.allows(Perm::R) { 1 } else { 0 });
            d.update_u64(if e.perm.allows(Perm::W) { 1 } else { 0 });
            d.update(e.frame.bytes());
        }
        d
    }

    /// Grants `merge_from` access to entries (crate-internal).
    pub(crate) fn entry_frame(&self, vpn: u64) -> Option<(&Arc<Frame>, Perm)> {
        self.pages.get(&vpn).map(|e| (&e.frame, e.perm))
    }

    /// Installs `frame` at `vpn` with `perm` (crate-internal, used by merge).
    pub(crate) fn install_frame(&mut self, vpn: u64, frame: Arc<Frame>, perm: Perm) {
        self.pages.insert(vpn, PageEntry { frame, perm });
        self.dirty.insert(vpn);
    }

    /// Returns a mutable reference to the frame at `vpn`, cloning it
    /// first if shared (crate-internal, used by merge).
    pub(crate) fn frame_mut(&mut self, vpn: u64) -> Option<&mut Frame> {
        self.dirty.insert(vpn);
        self.pages
            .get_mut(&vpn)
            .map(|e| Arc::make_mut(&mut e.frame))
    }

    /// Returns the sorted list of mapped vpns intersecting `region`.
    pub(crate) fn vpns_in(&self, region: Region) -> Vec<u64> {
        let first = vpn_of(region.start);
        let last = if region.is_empty() {
            return Vec::new();
        } else {
            vpn_of(region.end - 1)
        };
        self.pages.range(first..=last).map(|(&v, _)| v).collect()
    }

    /// Returns the sorted dirty VPNs intersecting `region` — the
    /// candidate set the merge engine examines.
    pub(crate) fn dirty_vpns_in(&self, region: Region) -> Vec<u64> {
        if region.is_empty() {
            return Vec::new();
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        self.dirty.range(first..=last).copied().collect()
    }

    /// Counts mapped pages intersecting `region` (a B-tree cursor walk
    /// over mapped entries only; no frame bytes are touched).
    pub(crate) fn mapped_pages_in(&self, region: Region) -> u64 {
        if region.is_empty() {
            return 0;
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        self.pages.range(first..=last).count() as u64
    }

    /// Number of pages currently in the dirty write-set (pages whose
    /// contents may have changed since the last
    /// [`snapshot`](AddressSpace::snapshot)).
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddressSpace {{ pages: {}, bytes: {} }}",
            self.pages.len(),
            self.mapped_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_space(start: u64, len: u64) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map_zero(Region::sized(start, len), Perm::RW).unwrap();
        s
    }

    #[test]
    fn zero_mapped_reads_zero() {
        let s = rw_space(0x1000, 0x3000);
        assert_eq!(s.read_vec(0x1000, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(s.read_u64(0x2ff8).unwrap(), 0);
    }

    #[test]
    fn unmapped_faults() {
        let s = rw_space(0x1000, 0x1000);
        assert_eq!(s.read_u8(0x3000), Err(MemError::Unmapped { addr: 0x3000 }));
        let mut s = s;
        assert!(matches!(s.write_u8(0x0, 1), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn perm_enforced() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert_eq!(
            s.write_u8(0x1000, 1),
            Err(MemError::PermDenied {
                addr: 0x1000,
                need: Perm::W
            })
        );
        s.set_perm(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        assert!(s.write_u8(0x1000, 1).is_ok());
        s.set_perm(Region::new(0x1000, 0x2000), Perm::NONE).unwrap();
        assert!(matches!(
            s.read_u8(0x1000),
            Err(MemError::PermDenied { .. })
        ));
    }

    #[test]
    fn write_spanning_pages() {
        let mut s = rw_space(0x1000, 0x2000);
        let data: Vec<u8> = (0..100).collect();
        s.write(0x1fd0, &data).unwrap();
        assert_eq!(s.read_vec(0x1fd0, 100).unwrap(), data);
    }

    #[test]
    fn failed_write_is_all_or_nothing() {
        let mut s = rw_space(0x1000, 0x1000);
        // Spans into unmapped page 0x2000.
        let before = s.read_vec(0x1ff0, 16).unwrap();
        assert!(s.write(0x1ff0, &[1u8; 32]).is_err());
        assert_eq!(s.read_vec(0x1ff0, 16).unwrap(), before);
    }

    #[test]
    fn cow_copy_isolates_writes() {
        let mut parent = rw_space(0x1000, 0x2000);
        parent.write_u64(0x1000, 42).unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        // Shared frame until a write.
        assert!(child.same_frame(&parent, 1));
        child.write_u64(0x1000, 7).unwrap();
        assert!(!child.same_frame(&parent, 1));
        assert_eq!(parent.read_u64(0x1000).unwrap(), 42);
        assert_eq!(child.read_u64(0x1000).unwrap(), 7);
        // Untouched page still shared.
        assert!(child.same_frame(&parent, 2));
    }

    #[test]
    fn copy_to_different_destination() {
        let mut src = rw_space(0x1000, 0x1000);
        src.write(0x1100, b"hello").unwrap();
        let mut dst = AddressSpace::new();
        dst.copy_from(&src, Region::new(0x1000, 0x2000), 0x8000)
            .unwrap();
        assert_eq!(dst.read_vec(0x8100, 5).unwrap(), b"hello");
    }

    #[test]
    fn copy_propagates_holes() {
        let mut src = AddressSpace::new();
        src.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        // dst has a page at 0x5000 that the source range lacks.
        let mut dst = rw_space(0x4000, 0x3000);
        dst.copy_from(&src, Region::new(0x0000, 0x3000), 0x4000)
            .unwrap();
        // 0x4000 (from unmapped 0x0000) must now be unmapped.
        assert!(matches!(
            dst.read_u8(0x4000),
            Err(MemError::Unmapped { .. })
        ));
        assert!(dst.read_u8(0x5000).is_ok());
        assert!(matches!(
            dst.read_u8(0x6000),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn snapshot_is_immutable_reference() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u64(0x1000, 1).unwrap();
        let snap = s.snapshot();
        s.write_u64(0x1000, 2).unwrap();
        assert_eq!(snap.read_u64(0x1000).unwrap(), 1);
        assert_eq!(s.read_u64(0x1000).unwrap(), 2);
    }

    #[test]
    fn digest_detects_content_and_perm_changes() {
        let mut a = rw_space(0x1000, 0x2000);
        let d0 = a.content_digest();
        a.write_u8(0x1800, 1).unwrap();
        let d1 = a.content_digest();
        assert_ne!(d0, d1);
        a.write_u8(0x1800, 0).unwrap();
        // Content equality matters, not sharing structure.
        assert_eq!(a.content_digest(), d0);
        a.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert_ne!(a.content_digest(), d0);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut s = rw_space(0, 0x2000);
        s.write_u32(0x10, 0xdead_beef).unwrap();
        assert_eq!(s.read_u32(0x10).unwrap(), 0xdead_beef);
        s.write_f64(0x20, -1.5e300).unwrap();
        assert_eq!(s.read_f64(0x20).unwrap(), -1.5e300);
        s.write_u64s(0x100, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_u64s(0x100, 3).unwrap(), vec![1, 2, 3]);
        s.write_f64s(0x200, &[0.5, -0.25]).unwrap();
        assert_eq!(s.read_f64s(0x200, 2).unwrap(), vec![0.5, -0.25]);
    }

    #[test]
    fn unmap_removes_pages() {
        let mut s = rw_space(0x1000, 0x3000);
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert!(matches!(s.read_u8(0x2000), Err(MemError::Unmapped { .. })));
        assert!(s.read_u8(0x3000).is_ok());
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn misaligned_kernel_ops_rejected() {
        let mut s = AddressSpace::new();
        assert!(matches!(
            s.map_zero(Region::new(0x100, 0x2000), Perm::RW),
            Err(MemError::Misaligned { .. })
        ));
        let src = AddressSpace::new();
        assert!(matches!(
            s.copy_from(&src, Region::new(0x1000, 0x2000), 0x80),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn zero_fill_shares_global_frame() {
        let s = rw_space(0x1000, 0x100000);
        assert!(s.iter_pages().all(|p| p.is_zero_frame));
    }

    #[test]
    fn dirty_set_tracks_mutations_and_snapshot_clears() {
        let mut s = rw_space(0x1000, 0x3000);
        // map_zero dirtied all three pages.
        assert_eq!(s.dirty_page_count(), 3);
        let _snap = s.snapshot();
        assert_eq!(s.dirty_page_count(), 0);
        // A write spanning two pages dirties both.
        s.write(0x1ff0, &[1u8; 32]).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1, 2]);
        // Unmapping removes the page from the set.
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1]);
        // Region filtering works.
        assert!(s.dirty_vpns_in(Region::new(0x3000, 0x4000)).is_empty());
        assert_eq!(s.mapped_pages_in(Region::new(0x1000, 0x4000)), 2);
    }

    #[test]
    fn copy_from_marks_destination_dirty() {
        let mut src = rw_space(0x1000, 0x2000);
        src.write_u8(0x1000, 9).unwrap();
        let mut dst = AddressSpace::new();
        let _snap = dst.snapshot();
        dst.copy_from(&src, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        assert_eq!(dst.dirty_vpns_in(Region::new(0x1000, 0x3000)), vec![1, 2]);
    }

    #[test]
    fn map_zero_if_unmapped_preserves_existing_pages() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u8(0x1000, 7).unwrap();
        let added = s
            .map_zero_if_unmapped(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        assert_eq!(added, 1);
        // The existing page's contents survived; the new page is zero.
        assert_eq!(s.read_u8(0x1000).unwrap(), 7);
        assert_eq!(s.read_u8(0x2000).unwrap(), 0);
    }
}
