//! Sparse paged address spaces with copy-on-write sharing.

use std::collections::btree_map::Entry as BEntry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::digest::ContentDigest;
use crate::page::{Frame, PAGE_SIZE, offset_of, vpn_of, zero_frame};
use crate::tracker::AccessTracker;
use crate::{MemError, Perm, Region, Result};

/// One page-table entry: a shared frame plus its permissions.
#[derive(Clone, Debug)]
struct PageEntry {
    frame: Arc<Frame>,
    perm: Perm,
}

/// Public, read-only view of one mapped page (for inspection tools and
/// the cluster's residency accounting).
#[derive(Clone, Debug)]
pub struct PageInfo {
    /// Virtual page number.
    pub vpn: u64,
    /// Page permissions.
    pub perm: Perm,
    /// Number of address spaces (and snapshots) sharing the frame.
    pub frame_refs: usize,
    /// True if the page still aliases the global zero frame.
    pub is_zero_frame: bool,
}

/// A generation-validated translation of one virtual page, minted by
/// [`AddressSpace::translate_read`] / [`AddressSpace::translate_write`]
/// and redeemed through [`AddressSpace::translated_bytes`] /
/// [`AddressSpace::translated_bytes_mut`].
///
/// This is the entry type of the VM's software TLB (see DESIGN.md §4).
/// A translation is a *capability to skip the page-table walk*, not a
/// pointer: redeeming it re-checks that it was minted by this exact
/// space (`space_id`) at its current `generation`, so a translation
/// that survived any page-table mutation — map, unmap, permission
/// change, snapshot, merge, external write — is refused and the caller
/// falls back to the slow path. A stale hit is therefore impossible by
/// construction; the worst a forged or outdated translation can do is
/// miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    space_id: u64,
    generation: u64,
    slot: u32,
    writable: bool,
}

impl Translation {
    /// A translation that never validates (TLB reset value).
    pub const INVALID: Translation = Translation {
        space_id: 0, // Real space ids start at 1.
        generation: 0,
        slot: 0,
        writable: false,
    };
}

impl Default for Translation {
    fn default() -> Translation {
        Translation::INVALID
    }
}

/// Source of unique [`AddressSpace::space_id`] values. Ids only ever
/// feed *equality checks* against translations minted from the same
/// space, so allocation order (which can vary with host scheduling)
/// never influences observable behavior — a translation matches its
/// own space or nothing.
static NEXT_SPACE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_space_id() -> u64 {
    NEXT_SPACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A private virtual address space: the memory half of a Determinator
/// *space* (§3.1).
///
/// The map is sparse: untouched addresses are unmapped and fault.
/// Cloning an `AddressSpace` (or taking a [`snapshot`]) copies only the
/// page table; frames are shared and cloned lazily on first write
/// (copy-on-write), which is what makes the paper's fork/snapshot/merge
/// cycle affordable.
///
/// Internally the page table is split in two: a `vpn → slot` B-tree
/// (`table`) for ordered walks, and a dense slot arena (`slots`)
/// holding the entries themselves. The arena gives the VM's software
/// TLB an O(1), bounds-checked redemption path for cached
/// [`Translation`]s without any raw pointers; the `generation` counter
/// (bumped by every mutation that could make a cached translation or a
/// decoded instruction stale) is what keeps those translations honest.
///
/// [`snapshot`]: AddressSpace::snapshot
pub struct AddressSpace {
    /// Ordered index: virtual page number → slot in `slots`.
    table: BTreeMap<u64, u32>,
    /// Slot arena; `None` slots are free and listed in `free`.
    slots: Vec<Option<PageEntry>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// The *dirty write-set*: VPNs whose contents may have changed
    /// since the last [`snapshot`](AddressSpace::snapshot) (which
    /// clears it). Every mutation path — `write`, `map_zero`,
    /// `copy_from`, `translate_write`, and the merge engine's own
    /// applies — records the pages it touches here, so `try_merge_from`
    /// can visit only the pages a child actually dirtied instead of
    /// every mapped page in the merge region. An over-approximation is
    /// sound (extra entries are rediscovered clean by frame identity or
    /// byte diffing); a missed entry would lose writes, so every
    /// content-mutating path below must mark it.
    dirty: BTreeSet<u64>,
    /// Bumped by every page-table or content mutation that could
    /// invalidate an outstanding [`Translation`] or a decoded
    /// instruction (see DESIGN.md §4 for the exact rule). Monotonic.
    generation: u64,
    /// Unique identity of this space, distinguishing its translations
    /// from those of clones/snapshots that share `generation` values.
    space_id: u64,
    tracker: Option<AccessTracker>,
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace {
            table: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            dirty: BTreeSet::new(),
            generation: 0,
            space_id: fresh_space_id(),
            tracker: None,
        }
    }
}

impl Clone for AddressSpace {
    fn clone(&self) -> AddressSpace {
        AddressSpace {
            table: self.table.clone(),
            slots: self.slots.clone(),
            free: self.free.clone(),
            dirty: self.dirty.clone(),
            generation: self.generation,
            // A clone is a different space: translations minted from
            // the original must not validate against it (they could
            // diverge from here on).
            space_id: fresh_space_id(),
            tracker: self.tracker.clone(),
        }
    }
}

impl AddressSpace {
    /// Returns an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Installs an access tracker that records every page touched by
    /// reads and writes (used by the cluster layer to account demand
    /// paging). Returns any previous tracker.
    ///
    /// Installing or removing a tracker bumps the generation and
    /// disables the translation fast path (`translate_*` return `None`
    /// while a tracker is present), so the tracker's log stays exact.
    pub fn set_tracker(&mut self, tracker: Option<AccessTracker>) -> Option<AccessTracker> {
        self.generation += 1;
        std::mem::replace(&mut self.tracker, tracker)
    }

    /// Returns a reference to the installed access tracker, if any.
    pub fn tracker(&self) -> Option<&AccessTracker> {
        self.tracker.as_ref()
    }

    /// Returns the number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.table.len()
    }

    /// Returns the total mapped size in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        (self.table.len() as u64) << crate::PAGE_SHIFT
    }

    // ------------------------------------------------------------------
    // Slot arena plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn entry(&self, vpn: u64) -> Option<&PageEntry> {
        let &slot = self.table.get(&vpn)?;
        self.slots[slot as usize].as_ref()
    }

    #[inline]
    fn entry_mut(&mut self, vpn: u64) -> Option<&mut PageEntry> {
        let &slot = self.table.get(&vpn)?;
        self.slots[slot as usize].as_mut()
    }

    fn insert_entry(&mut self, vpn: u64, e: PageEntry) {
        match self.table.entry(vpn) {
            BEntry::Occupied(o) => {
                self.slots[*o.get() as usize] = Some(e);
            }
            BEntry::Vacant(v) => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(e);
                        s
                    }
                    None => {
                        self.slots.push(Some(e));
                        (self.slots.len() - 1) as u32
                    }
                };
                v.insert(slot);
            }
        }
    }

    fn remove_entry(&mut self, vpn: u64) -> bool {
        match self.table.remove(&vpn) {
            Some(slot) => {
                self.slots[slot as usize] = None;
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Iterates information about every mapped page, in address order.
    pub fn iter_pages(&self) -> impl Iterator<Item = PageInfo> + '_ {
        let zero = zero_frame();
        self.table.iter().map(move |(&vpn, &slot)| {
            let e = self.slots[slot as usize].as_ref().expect("mapped slot");
            PageInfo {
                vpn,
                perm: e.perm,
                frame_refs: Arc::strong_count(&e.frame),
                is_zero_frame: Arc::ptr_eq(&e.frame, &zero),
            }
        })
    }

    /// Maps `region` as zero-filled pages with permissions `perm`.
    ///
    /// Already-mapped pages in the range are replaced by zero pages.
    /// The zero frame is shared, so this is O(pages) regardless of size.
    /// The region must be page-aligned.
    pub fn map_zero(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        let zero = zero_frame();
        let mut changed = false;
        for vpn in region.vpns() {
            self.insert_entry(
                vpn,
                PageEntry {
                    frame: zero.clone(),
                    perm,
                },
            );
            self.dirty.insert(vpn);
            changed = true;
        }
        if changed {
            self.generation += 1;
        }
        Ok(())
    }

    /// Like [`map_zero`](AddressSpace::map_zero) but leaves
    /// already-mapped pages in the range untouched (contents, frames,
    /// and permissions). Returns the number of pages newly mapped.
    ///
    /// Re-staging paths (the process runtime rewrites its file-system
    /// image region at every rendezvous) use this to avoid discarding
    /// frames — and dirtying pages — that the subsequent write will
    /// overwrite anyway. When every page is already mapped this is a
    /// pure no-op: no dirty marks and **no generation bump**, so a
    /// rendezvous that re-stages an image does not spuriously
    /// invalidate the VM's cached translations.
    pub fn map_zero_if_unmapped(&mut self, region: Region, perm: Perm) -> Result<usize> {
        region.check_page_aligned()?;
        let zero = zero_frame();
        let mut added = 0;
        for vpn in region.vpns() {
            if self.table.contains_key(&vpn) {
                continue;
            }
            self.insert_entry(
                vpn,
                PageEntry {
                    frame: zero.clone(),
                    perm,
                },
            );
            self.dirty.insert(vpn);
            added += 1;
        }
        if added > 0 {
            self.generation += 1;
        }
        Ok(added)
    }

    /// Removes all mappings in the page-aligned `region`.
    pub fn unmap(&mut self, region: Region) -> Result<()> {
        region.check_page_aligned()?;
        let mut changed = false;
        for vpn in region.vpns() {
            if self.remove_entry(vpn) {
                changed = true;
            }
            self.dirty.remove(&vpn);
        }
        if changed {
            self.generation += 1;
        }
        Ok(())
    }

    /// Sets permissions on every mapped page in the page-aligned
    /// `region`; unmapped pages in the range are skipped.
    pub fn set_perm(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        let mut changed = false;
        for vpn in region.vpns() {
            if let Some(e) = self.entry_mut(vpn) {
                e.perm = perm;
                changed = true;
            }
        }
        if changed {
            self.generation += 1;
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u64) -> Option<Perm> {
        self.entry(vpn_of(addr)).map(|e| e.perm)
    }

    /// Virtually copies `src_region` (page-aligned) of `src` to
    /// `dst_start` (page-aligned) in `self`.
    ///
    /// Frames are shared copy-on-write: no bytes move until one side
    /// writes. Pages unmapped in the source become unmapped in the
    /// destination, making the copy an exact replica of the range.
    /// Returns the number of pages installed.
    pub fn copy_from(
        &mut self,
        src: &AddressSpace,
        src_region: Region,
        dst_start: u64,
    ) -> Result<usize> {
        src_region.check_page_aligned()?;
        if dst_start & (PAGE_SIZE as u64 - 1) != 0 {
            return Err(MemError::Misaligned { addr: dst_start });
        }
        let delta = (dst_start >> crate::PAGE_SHIFT) as i128 - vpn_of(src_region.start) as i128;
        let mut installed = 0;
        let mut changed = false;
        for vpn in src_region.vpns() {
            let dst_vpn = (vpn as i128 + delta) as u64;
            match src.entry(vpn) {
                Some(e) => {
                    self.insert_entry(dst_vpn, e.clone());
                    self.dirty.insert(dst_vpn);
                    installed += 1;
                    changed = true;
                }
                None => {
                    if self.remove_entry(dst_vpn) {
                        changed = true;
                    }
                    self.dirty.remove(&dst_vpn);
                }
            }
        }
        if changed {
            self.generation += 1;
        }
        Ok(installed)
    }

    /// Takes a snapshot: a cheap page-table copy whose frames are
    /// shared with `self` until either side writes.
    ///
    /// The snapshot is the *reference state* against which
    /// [`merge_from`](AddressSpace::merge_from) computes changes, as
    /// the kernel's `Snap` option does (§3.2). Trackers are not
    /// inherited by snapshots.
    ///
    /// Taking a snapshot **clears this space's dirty write-set**: the
    /// returned snapshot is byte-identical to `self` at this instant,
    /// so "changed since the snapshot" and "dirtied since the write-set
    /// was cleared" start out as the same (empty) set, and every later
    /// mutation maintains both. This is the invariant that lets
    /// [`try_merge_from`](AddressSpace::try_merge_from) visit only
    /// dirty pages; it holds for any snapshot taken at or after the
    /// most recent `snapshot()` call (see DESIGN.md §3).
    ///
    /// Snapshots also bump the generation: a cached write translation
    /// pre-dates the dirty-set clear, so redeeming it would skip a
    /// dirty mark the merge engine depends on. (The refcount bump the
    /// snapshot puts on every frame would already force such writes
    /// back to the slow path while the snapshot lives, but the
    /// generation bump keeps them out even after it is dropped.)
    pub fn snapshot(&mut self) -> AddressSpace {
        self.dirty.clear();
        self.generation += 1;
        AddressSpace {
            table: self.table.clone(),
            slots: self.slots.clone(),
            free: self.free.clone(),
            dirty: BTreeSet::new(),
            generation: 0,
            space_id: fresh_space_id(),
            tracker: None,
        }
    }

    /// Returns true if the page frames backing `vpn` are the identical
    /// physical frame in `self` and `other` (O(1) unchanged-page test).
    pub fn same_frame(&self, other: &AddressSpace, vpn: u64) -> bool {
        match (self.entry(vpn), other.entry(vpn)) {
            (Some(a), Some(b)) => Arc::ptr_eq(&a.frame, &b.frame),
            (None, None) => true,
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Translation fast path (the VM's software TLB)
    // ------------------------------------------------------------------

    /// The current page-table generation (see [`Translation`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// This space's unique identity (see [`Translation`]).
    #[inline]
    pub fn space_id(&self) -> u64 {
        self.space_id
    }

    /// Mints a read translation for the page containing `addr`, or
    /// `None` if the page is unmapped, not readable, or an access
    /// tracker is installed (the fast path would bypass its log).
    ///
    /// The translation stays redeemable until the next generation bump;
    /// a whole page of reads through it is semantically identical to
    /// the [`read`](AddressSpace::read) slow path.
    #[inline]
    pub fn translate_read(&self, addr: u64) -> Option<Translation> {
        if self.tracker.is_some() {
            return None;
        }
        let &slot = self.table.get(&vpn_of(addr))?;
        let e = self.slots[slot as usize].as_ref()?;
        if !e.perm.allows(Perm::R) {
            return None;
        }
        Some(Translation {
            space_id: self.space_id,
            generation: self.generation,
            slot,
            writable: false,
        })
    }

    /// Mints a write translation for the page containing `addr`, or
    /// `None` if the page is unmapped, not writable, or a tracker is
    /// installed.
    ///
    /// The page is made exclusively owned now (copy-on-write clone if
    /// shared) and marked dirty, so redeeming the translation via
    /// [`translated_bytes_mut`](AddressSpace::translated_bytes_mut) can
    /// write in place with no per-store permission check, dirty-set
    /// insert, or `Arc::make_mut`. This mints without bumping the
    /// generation: the slot mapping, permissions, and dirty set only
    /// gained information, so no outstanding translation went stale.
    pub fn translate_write(&mut self, addr: u64) -> Option<Translation> {
        if self.tracker.is_some() {
            return None;
        }
        let vpn = vpn_of(addr);
        let &slot = self.table.get(&vpn)?;
        let e = self.slots[slot as usize].as_mut()?;
        if !e.perm.allows(Perm::W) {
            return None;
        }
        Arc::make_mut(&mut e.frame);
        self.dirty.insert(vpn);
        Some(Translation {
            space_id: self.space_id,
            generation: self.generation,
            slot,
            writable: true,
        })
    }

    /// Redeems a read translation: the translated page's bytes, or
    /// `None` if the translation is stale (minted by another space or
    /// before the last generation bump). Redemption is O(1).
    #[inline]
    pub fn translated_bytes(&self, t: Translation) -> Option<&[u8; PAGE_SIZE]> {
        if t.space_id != self.space_id || t.generation != self.generation {
            return None;
        }
        self.slots
            .get(t.slot as usize)?
            .as_ref()
            .map(|e| e.frame.bytes())
    }

    /// Redeems a write translation: the translated page's bytes,
    /// mutably, or `None` if the translation is stale, was minted for
    /// reading, or the frame has been shared again since minting (a
    /// snapshot or virtual copy took a reference — writing in place
    /// would leak through the copy-on-write boundary, so the caller
    /// must fall back to the slow path).
    ///
    /// **Single-executor contract**: in-place writes through a
    /// redeemed translation deliberately do *not* bump the generation
    /// (that is the entire fast path), so they are invisible to any
    /// *other* holder of content-derived caches over this space. The
    /// one legitimate caller is the single `det_vm::Cpu` executing the
    /// space — it invalidates its own decoded-instruction cache on
    /// stores into code pages. Driving two CPUs against one space (the
    /// kernel never does) would let one CPU's stores stale the other's
    /// cached decodes; use [`write`](AddressSpace::write) (which bumps
    /// the generation) for any externally-observable mutation.
    #[inline]
    pub fn translated_bytes_mut(&mut self, t: Translation) -> Option<&mut [u8; PAGE_SIZE]> {
        if !t.writable || t.space_id != self.space_id || t.generation != self.generation {
            return None;
        }
        let e = self.slots.get_mut(t.slot as usize)?.as_mut()?;
        Arc::get_mut(&mut e.frame).map(Frame::bytes_mut)
    }

    // ------------------------------------------------------------------
    // Byte access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Fails with [`MemError::Unmapped`] or [`MemError::PermDenied`] at
    /// the first inaccessible byte; earlier bytes may already have been
    /// copied into `buf` (the kernel aborts the faulting space anyway).
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.access(addr, buf.len(), Perm::R, |off, frame_bytes, chunk| {
            buf[off..off + chunk.len()].copy_from_slice(chunk);
            let _ = frame_bytes;
        })
    }

    /// Writes `data` starting at `addr`, cloning shared frames first
    /// (copy-on-write).
    ///
    /// The page table is walked **once**: a single range cursor
    /// validates every page (so a failed write is still all-or-nothing
    /// — nothing is dirtied or copied unless the whole range is
    /// writable) while collecting the slot of each page, and the copy
    /// loop then runs over the collected slots without re-walking the
    /// map. External content writes bump the generation: the bytes
    /// under any outstanding translation (and any decoded instruction)
    /// may have changed.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let end = addr
            .checked_add(data.len() as u64)
            .ok_or(MemError::AddressOverflow)?;
        let first_vpn = vpn_of(addr);
        let last_vpn = vpn_of(end - 1);
        let npages = (last_vpn - first_vpn + 1) as usize;

        // Single validation pass over the mapped range: a B-tree range
        // cursor yields mapped vpns in order, so any gap is the first
        // unmapped page. Slots are stashed inline for the common small
        // write; large image writes spill to a Vec.
        let mut inline = [0u32; 8];
        let mut spill: Vec<u32>;
        let page_slots: &mut [u32] = if npages <= inline.len() {
            &mut inline[..npages]
        } else {
            spill = vec![0; npages];
            &mut spill
        };
        let mut expect = first_vpn;
        for (&vpn, &slot) in self.table.range(first_vpn..=last_vpn) {
            if vpn != expect {
                return Err(MemError::Unmapped {
                    addr: expect << crate::PAGE_SHIFT,
                });
            }
            let e = self.slots[slot as usize].as_ref().expect("mapped slot");
            if !e.perm.allows(Perm::W) {
                return Err(MemError::PermDenied {
                    addr: vpn << crate::PAGE_SHIFT,
                    need: Perm::W,
                });
            }
            page_slots[(vpn - first_vpn) as usize] = slot;
            expect = vpn + 1;
        }
        if expect != last_vpn + 1 {
            return Err(MemError::Unmapped {
                addr: expect << crate::PAGE_SHIFT,
            });
        }

        if let Some(t) = &self.tracker {
            t.record_write_range(addr, data.len() as u64);
        }
        self.generation += 1;
        let mut cursor = addr;
        let mut remaining = data;
        for (i, &slot) in page_slots.iter().enumerate() {
            self.dirty.insert(first_vpn + i as u64);
            let off = offset_of(cursor);
            let chunk = remaining.len().min(PAGE_SIZE - off);
            let entry = self.slots[slot as usize].as_mut().expect("validated above");
            // Copy-on-write: clone the frame if it is shared.
            let frame = Arc::make_mut(&mut entry.frame);
            frame.bytes_mut()[off..off + chunk].copy_from_slice(&remaining[..chunk]);
            cursor += chunk as u64;
            remaining = &remaining[chunk..];
        }
        Ok(())
    }

    /// Shared read walk used by `read`; calls `sink(buf_offset, frame, chunk)`
    /// per page-sized chunk.
    fn access(
        &self,
        addr: u64,
        len: usize,
        need: Perm,
        mut sink: impl FnMut(usize, &Frame, &[u8]),
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let _end = addr
            .checked_add(len as u64)
            .ok_or(MemError::AddressOverflow)?;
        if let Some(t) = &self.tracker {
            t.record_read_range(addr, len as u64);
        }
        let mut cursor = addr;
        let mut done = 0usize;
        while done < len {
            let off = offset_of(cursor);
            let chunk = (len - done).min(PAGE_SIZE - off);
            let entry = self.entry(vpn_of(cursor)).ok_or(MemError::Unmapped {
                addr: vpn_of(cursor) << crate::PAGE_SHIFT,
            })?;
            if !entry.perm.allows(need) {
                return Err(MemError::PermDenied {
                    addr: vpn_of(cursor) << crate::PAGE_SHIFT,
                    need,
                });
            }
            sink(done, &entry.frame, &entry.frame.bytes()[off..off + chunk]);
            cursor += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&self, addr: u64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<()> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<()> {
        self.write_u64(addr, v.to_bits())
    }

    /// Reads `n` little-endian `u64`s starting at `addr`.
    pub fn read_u64s(&self, addr: u64, n: usize) -> Result<Vec<u64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `u64`s little-endian starting at `addr`.
    pub fn write_u64s(&mut self, addr: u64, vals: &[u64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Reads `n` little-endian `f64`s starting at `addr`.
    pub fn read_f64s(&self, addr: u64, n: usize) -> Result<Vec<f64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `f64`s little-endian starting at `addr`.
    pub fn write_f64s(&mut self, addr: u64, vals: &[f64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Returns a deterministic digest of the mapped contents
    /// (vpn, perm, bytes), used by determinism tests to compare whole
    /// memory images across runs. The generation and space id are
    /// deliberately excluded: they are cache-validation state, not
    /// memory contents.
    pub fn content_digest(&self) -> ContentDigest {
        let mut d = ContentDigest::new();
        for (&vpn, &slot) in &self.table {
            let e = self.slots[slot as usize].as_ref().expect("mapped slot");
            d.update_u64(vpn);
            d.update_u64(if e.perm.allows(Perm::R) { 1 } else { 0 });
            d.update_u64(if e.perm.allows(Perm::W) { 1 } else { 0 });
            d.update(e.frame.bytes());
        }
        d
    }

    /// Grants `merge_from` access to entries (crate-internal).
    pub(crate) fn entry_frame(&self, vpn: u64) -> Option<(&Arc<Frame>, Perm)> {
        self.entry(vpn).map(|e| (&e.frame, e.perm))
    }

    /// Installs `frame` at `vpn` with `perm` (crate-internal, used by merge).
    pub(crate) fn install_frame(&mut self, vpn: u64, frame: Arc<Frame>, perm: Perm) {
        self.insert_entry(vpn, PageEntry { frame, perm });
        self.dirty.insert(vpn);
        self.generation += 1;
    }

    /// Returns a mutable reference to the frame at `vpn`, cloning it
    /// first if shared (crate-internal, used by merge).
    pub(crate) fn frame_mut(&mut self, vpn: u64) -> Option<&mut Frame> {
        self.dirty.insert(vpn);
        self.generation += 1;
        let &slot = self.table.get(&vpn)?;
        self.slots[slot as usize]
            .as_mut()
            .map(|e| Arc::make_mut(&mut e.frame))
    }

    /// Returns the sorted list of mapped vpns intersecting `region`.
    pub(crate) fn vpns_in(&self, region: Region) -> Vec<u64> {
        let first = vpn_of(region.start);
        let last = if region.is_empty() {
            return Vec::new();
        } else {
            vpn_of(region.end - 1)
        };
        self.table.range(first..=last).map(|(&v, _)| v).collect()
    }

    /// Returns the sorted dirty VPNs intersecting `region` — the
    /// candidate set the merge engine examines (public for inspection
    /// tools and the VM's differential tests).
    pub fn dirty_vpns_in(&self, region: Region) -> Vec<u64> {
        if region.is_empty() {
            return Vec::new();
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        self.dirty.range(first..=last).copied().collect()
    }

    /// Counts mapped pages intersecting `region` (a B-tree cursor walk
    /// over mapped entries only; no frame bytes are touched).
    pub(crate) fn mapped_pages_in(&self, region: Region) -> u64 {
        if region.is_empty() {
            return 0;
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        self.table.range(first..=last).count() as u64
    }

    /// Number of pages currently in the dirty write-set (pages whose
    /// contents may have changed since the last
    /// [`snapshot`](AddressSpace::snapshot)).
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddressSpace {{ pages: {}, bytes: {} }}",
            self.table.len(),
            self.mapped_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_space(start: u64, len: u64) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map_zero(Region::sized(start, len), Perm::RW).unwrap();
        s
    }

    #[test]
    fn zero_mapped_reads_zero() {
        let s = rw_space(0x1000, 0x3000);
        assert_eq!(s.read_vec(0x1000, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(s.read_u64(0x2ff8).unwrap(), 0);
    }

    #[test]
    fn unmapped_faults() {
        let s = rw_space(0x1000, 0x1000);
        assert_eq!(s.read_u8(0x3000), Err(MemError::Unmapped { addr: 0x3000 }));
        let mut s = s;
        assert!(matches!(s.write_u8(0x0, 1), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn perm_enforced() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert_eq!(
            s.write_u8(0x1000, 1),
            Err(MemError::PermDenied {
                addr: 0x1000,
                need: Perm::W
            })
        );
        s.set_perm(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        assert!(s.write_u8(0x1000, 1).is_ok());
        s.set_perm(Region::new(0x1000, 0x2000), Perm::NONE).unwrap();
        assert!(matches!(
            s.read_u8(0x1000),
            Err(MemError::PermDenied { .. })
        ));
    }

    #[test]
    fn write_spanning_pages() {
        let mut s = rw_space(0x1000, 0x2000);
        let data: Vec<u8> = (0..100).collect();
        s.write(0x1fd0, &data).unwrap();
        assert_eq!(s.read_vec(0x1fd0, 100).unwrap(), data);
    }

    #[test]
    fn write_spanning_many_pages_spills() {
        // More pages than the inline slot buffer holds.
        let mut s = rw_space(0x1000, 0x10000);
        let data: Vec<u8> = (0..0xa000u32).map(|i| i as u8).collect();
        s.write(0x1800, &data).unwrap();
        assert_eq!(s.read_vec(0x1800, data.len()).unwrap(), data);
    }

    #[test]
    fn failed_write_is_all_or_nothing() {
        let mut s = rw_space(0x1000, 0x1000);
        // Spans into unmapped page 0x2000.
        let before = s.read_vec(0x1ff0, 16).unwrap();
        let dirty_before = s.dirty_page_count();
        assert!(s.write(0x1ff0, &[1u8; 32]).is_err());
        assert_eq!(s.read_vec(0x1ff0, 16).unwrap(), before);
        // The failed write also left no dirty marks behind.
        assert_eq!(s.dirty_page_count(), dirty_before);
    }

    #[test]
    fn failed_write_reports_first_bad_page() {
        let mut s = rw_space(0x1000, 0x1000);
        s.map_zero(Region::new(0x3000, 0x4000), Perm::RW).unwrap();
        // Hole at 0x2000 in the middle of the range.
        assert_eq!(
            s.write(0x1ff0, &[0u8; 0x2020]),
            Err(MemError::Unmapped { addr: 0x2000 })
        );
        // Read-only page in the middle is found too.
        s.map_zero(Region::new(0x2000, 0x3000), Perm::R).unwrap();
        assert_eq!(
            s.write(0x1ff0, &[0u8; 0x2020]),
            Err(MemError::PermDenied {
                addr: 0x2000,
                need: Perm::W
            })
        );
    }

    #[test]
    fn cow_copy_isolates_writes() {
        let mut parent = rw_space(0x1000, 0x2000);
        parent.write_u64(0x1000, 42).unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        // Shared frame until a write.
        assert!(child.same_frame(&parent, 1));
        child.write_u64(0x1000, 7).unwrap();
        assert!(!child.same_frame(&parent, 1));
        assert_eq!(parent.read_u64(0x1000).unwrap(), 42);
        assert_eq!(child.read_u64(0x1000).unwrap(), 7);
        // Untouched page still shared.
        assert!(child.same_frame(&parent, 2));
    }

    #[test]
    fn copy_to_different_destination() {
        let mut src = rw_space(0x1000, 0x1000);
        src.write(0x1100, b"hello").unwrap();
        let mut dst = AddressSpace::new();
        dst.copy_from(&src, Region::new(0x1000, 0x2000), 0x8000)
            .unwrap();
        assert_eq!(dst.read_vec(0x8100, 5).unwrap(), b"hello");
    }

    #[test]
    fn copy_propagates_holes() {
        let mut src = AddressSpace::new();
        src.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        // dst has a page at 0x5000 that the source range lacks.
        let mut dst = rw_space(0x4000, 0x3000);
        dst.copy_from(&src, Region::new(0x0000, 0x3000), 0x4000)
            .unwrap();
        // 0x4000 (from unmapped 0x0000) must now be unmapped.
        assert!(matches!(
            dst.read_u8(0x4000),
            Err(MemError::Unmapped { .. })
        ));
        assert!(dst.read_u8(0x5000).is_ok());
        assert!(matches!(
            dst.read_u8(0x6000),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn snapshot_is_immutable_reference() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u64(0x1000, 1).unwrap();
        let snap = s.snapshot();
        s.write_u64(0x1000, 2).unwrap();
        assert_eq!(snap.read_u64(0x1000).unwrap(), 1);
        assert_eq!(s.read_u64(0x1000).unwrap(), 2);
    }

    #[test]
    fn digest_detects_content_and_perm_changes() {
        let mut a = rw_space(0x1000, 0x2000);
        let d0 = a.content_digest();
        a.write_u8(0x1800, 1).unwrap();
        let d1 = a.content_digest();
        assert_ne!(d0, d1);
        a.write_u8(0x1800, 0).unwrap();
        // Content equality matters, not sharing structure.
        assert_eq!(a.content_digest(), d0);
        a.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert_ne!(a.content_digest(), d0);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut s = rw_space(0, 0x2000);
        s.write_u32(0x10, 0xdead_beef).unwrap();
        assert_eq!(s.read_u32(0x10).unwrap(), 0xdead_beef);
        s.write_f64(0x20, -1.5e300).unwrap();
        assert_eq!(s.read_f64(0x20).unwrap(), -1.5e300);
        s.write_u64s(0x100, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_u64s(0x100, 3).unwrap(), vec![1, 2, 3]);
        s.write_f64s(0x200, &[0.5, -0.25]).unwrap();
        assert_eq!(s.read_f64s(0x200, 2).unwrap(), vec![0.5, -0.25]);
    }

    #[test]
    fn unmap_removes_pages() {
        let mut s = rw_space(0x1000, 0x3000);
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert!(matches!(s.read_u8(0x2000), Err(MemError::Unmapped { .. })));
        assert!(s.read_u8(0x3000).is_ok());
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn slot_reuse_after_unmap() {
        let mut s = rw_space(0x1000, 0x3000);
        s.unmap(Region::new(0x1000, 0x4000)).unwrap();
        // Remapping reuses freed slots instead of growing the arena.
        let arena = s.slots.len();
        s.map_zero(Region::new(0x8000, 0xa000), Perm::RW).unwrap();
        assert_eq!(s.slots.len(), arena);
        s.write_u8(0x8000, 7).unwrap();
        assert_eq!(s.read_u8(0x8000).unwrap(), 7);
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn misaligned_kernel_ops_rejected() {
        let mut s = AddressSpace::new();
        assert!(matches!(
            s.map_zero(Region::new(0x100, 0x2000), Perm::RW),
            Err(MemError::Misaligned { .. })
        ));
        let src = AddressSpace::new();
        assert!(matches!(
            s.copy_from(&src, Region::new(0x1000, 0x2000), 0x80),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn zero_fill_shares_global_frame() {
        let s = rw_space(0x1000, 0x100000);
        assert!(s.iter_pages().all(|p| p.is_zero_frame));
    }

    #[test]
    fn dirty_set_tracks_mutations_and_snapshot_clears() {
        let mut s = rw_space(0x1000, 0x3000);
        // map_zero dirtied all three pages.
        assert_eq!(s.dirty_page_count(), 3);
        let _snap = s.snapshot();
        assert_eq!(s.dirty_page_count(), 0);
        // A write spanning two pages dirties both.
        s.write(0x1ff0, &[1u8; 32]).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1, 2]);
        // Unmapping removes the page from the set.
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1]);
        // Region filtering works.
        assert!(s.dirty_vpns_in(Region::new(0x3000, 0x4000)).is_empty());
        assert_eq!(s.mapped_pages_in(Region::new(0x1000, 0x4000)), 2);
    }

    #[test]
    fn copy_from_marks_destination_dirty() {
        let mut src = rw_space(0x1000, 0x2000);
        src.write_u8(0x1000, 9).unwrap();
        let mut dst = AddressSpace::new();
        let _snap = dst.snapshot();
        dst.copy_from(&src, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        assert_eq!(dst.dirty_vpns_in(Region::new(0x1000, 0x3000)), vec![1, 2]);
    }

    #[test]
    fn map_zero_if_unmapped_preserves_existing_pages() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u8(0x1000, 7).unwrap();
        let added = s
            .map_zero_if_unmapped(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        assert_eq!(added, 1);
        // The existing page's contents survived; the new page is zero.
        assert_eq!(s.read_u8(0x1000).unwrap(), 7);
        assert_eq!(s.read_u8(0x2000).unwrap(), 0);
    }

    // ------------------------------------------------------------------
    // Generation + translation fast path
    // ------------------------------------------------------------------

    #[test]
    fn generation_bumps_on_table_and_content_mutations() {
        let mut s = AddressSpace::new();
        let g0 = s.generation();
        s.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
        let g1 = s.generation();
        assert!(g1 > g0);
        s.write_u8(0x1000, 1).unwrap();
        let g2 = s.generation();
        assert!(g2 > g1);
        s.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        let g3 = s.generation();
        assert!(g3 > g2);
        let _snap = s.snapshot();
        let g4 = s.generation();
        assert!(g4 > g3);
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert!(s.generation() > g4);
    }

    #[test]
    fn generation_stable_under_noop_restage_and_reads() {
        // The proc-runtime rendezvous re-stages its fs image with
        // map_zero_if_unmapped; when every page is already mapped the
        // call must not invalidate cached translations.
        let mut s = rw_space(0x1000, 0x3000);
        let g = s.generation();
        s.map_zero_if_unmapped(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        assert_eq!(s.generation(), g);
        // Reads and no-op mutations on empty ranges don't bump either.
        s.read_u64(0x1000).unwrap();
        s.unmap(Region::new(0x8000, 0x9000)).unwrap();
        s.set_perm(Region::new(0x8000, 0x9000), Perm::R).unwrap();
        s.write(0x1000, &[]).unwrap();
        assert_eq!(s.generation(), g);
    }

    #[test]
    fn translations_roundtrip_and_go_stale() {
        let mut s = rw_space(0x1000, 0x2000);
        s.write(0x1000, b"abcd").unwrap();
        let t = s.translate_read(0x1004).unwrap();
        assert_eq!(&s.translated_bytes(t).unwrap()[0..4], b"abcd");
        // Any mutation invalidates it.
        s.write_u8(0x2000, 1).unwrap();
        assert!(s.translated_bytes(t).is_none());
        // A fresh one works again.
        let t = s.translate_read(0x1000).unwrap();
        assert!(s.translated_bytes(t).is_some());
        // Read translations cannot be redeemed for writing.
        assert!(s.translated_bytes_mut(t).is_none());
    }

    #[test]
    fn translate_respects_perms_and_mapping() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert!(s.translate_read(0x1000).is_some());
        assert!(s.translate_write(0x1000).is_none());
        assert!(s.translate_read(0x5000).is_none());
        s.set_perm(Region::new(0x1000, 0x2000), Perm::NONE).unwrap();
        assert!(s.translate_read(0x1000).is_none());
    }

    #[test]
    fn write_translation_marks_dirty_and_writes_in_place() {
        let mut s = rw_space(0x1000, 0x2000);
        let _snap = s.snapshot();
        assert_eq!(s.dirty_page_count(), 0);
        let t = s.translate_write(0x1008).unwrap();
        // Minting the translation already dirtied the page.
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x3000)), vec![1]);
        let g = s.generation();
        s.translated_bytes_mut(t).unwrap()[8] = 0xAB;
        // In-place writes do not bump the generation...
        assert_eq!(s.generation(), g);
        // ...and are visible to ordinary reads.
        assert_eq!(s.read_u8(0x1008).unwrap(), 0xAB);
    }

    #[test]
    fn write_translation_refused_once_frame_shared() {
        let mut s = rw_space(0x1000, 0x2000);
        s.write_u8(0x1000, 1).unwrap(); // Own the frame exclusively.
        let t = s.translate_write(0x1000).unwrap();
        assert!(s.translated_bytes_mut(t).is_some());
        // A snapshot shares every frame again (and bumps generation).
        let snap = s.snapshot();
        assert!(s.translated_bytes_mut(t).is_none());
        // Even a fresh write translation COWs first, so writing through
        // it cannot leak into the snapshot.
        let t2 = s.translate_write(0x1000).unwrap();
        s.translated_bytes_mut(t2).unwrap()[0] = 9;
        assert_eq!(snap.read_u8(0x1000).unwrap(), 1);
        assert_eq!(s.read_u8(0x1000).unwrap(), 9);
    }

    #[test]
    fn translations_do_not_cross_spaces() {
        let a = rw_space(0x1000, 0x1000);
        let t = a.translate_read(0x1000).unwrap();
        let b = a.clone();
        // The clone shares frames but is a different space; the
        // original's translation must not validate against it.
        assert!(b.translated_bytes(t).is_none());
        assert!(a.translated_bytes(t).is_some());
    }

    #[test]
    fn tracker_disables_fast_path() {
        let mut s = rw_space(0x1000, 0x1000);
        let t = s.translate_read(0x1000).unwrap();
        s.set_tracker(Some(AccessTracker::new()));
        // Installing the tracker bumped the generation...
        assert!(s.translated_bytes(t).is_none());
        // ...and minting is refused while it is present.
        assert!(s.translate_read(0x1000).is_none());
        assert!(s.translate_write(0x1000).is_none());
        s.set_tracker(None);
        assert!(s.translate_read(0x1000).is_some());
    }
}
