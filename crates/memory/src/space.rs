//! Sparse paged address spaces with two-level, structurally-shared
//! copy-on-write page tables.

use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::digest::ContentDigest;
use crate::dirty::DirtySet;
use crate::page::{Frame, PAGE_SHIFT, PAGE_SIZE, offset_of, vpn_of, zero_frame};
use crate::tracker::AccessTracker;
use crate::{MemError, Perm, Region, Result};

/// Log2 of [`PAGES_PER_LEAF`].
pub(crate) const LEAF_BITS: u32 = 9;

/// Pages covered by one page-table leaf (512 pages = 2 MiB).
///
/// The page table is a two-level tree: a root *spine* of
/// `Arc`-reference-counted 512-entry leaves. Cloning a space
/// ([`AddressSpace::snapshot`], [`AddressSpace::copy_from`] over
/// leaf-congruent ranges, `clone`) copies only the spine and shares the
/// leaves, so forking is O(leaves), not O(mapped pages); the first
/// write into a shared leaf clones that one leaf (see DESIGN.md §5).
pub const PAGES_PER_LEAF: usize = 1 << LEAF_BITS;

/// Mask extracting the within-leaf index from a vpn.
pub(crate) const LEAF_MASK: u64 = PAGES_PER_LEAF as u64 - 1;

/// `u64` words in a per-leaf bitmap (one bit per page).
pub(crate) const LEAF_WORDS: usize = PAGES_PER_LEAF / 64;

/// One page-table entry: a shared frame plus its permissions.
#[derive(Clone, Debug)]
pub(crate) struct PageEntry {
    pub(crate) frame: Arc<Frame>,
    pub(crate) perm: Perm,
}

/// One 512-entry page-table leaf. Leaves are immutable while shared
/// (`Arc::make_mut` clones on first write), which is what makes whole
/// address spaces cheap to duplicate: a snapshot or leaf-congruent
/// virtual copy shares leaves the way individual writes share frames —
/// the same copy-on-write trick, one level up.
#[derive(Clone)]
pub(crate) struct Leaf {
    /// Dense entry array indexed by `vpn & LEAF_MASK`.
    entries: [Option<PageEntry>; PAGES_PER_LEAF],
    /// Bitmap of `Some` entries (one bit per page, 8×64 = 512).
    present: [u64; LEAF_WORDS],
    /// Number of `Some` entries (== ones in `present`).
    mapped: u32,
}

impl Leaf {
    fn empty() -> Leaf {
        Leaf {
            entries: [const { None }; PAGES_PER_LEAF],
            present: [0; PAGES_PER_LEAF / 64],
            mapped: 0,
        }
    }

    #[inline]
    fn is_present(&self, idx: usize) -> bool {
        self.present[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Installs `e` at `idx`; returns true if the slot was empty.
    fn set(&mut self, idx: usize, e: PageEntry) -> bool {
        let fresh = self.entries[idx].replace(e).is_none();
        if fresh {
            self.present[idx / 64] |= 1u64 << (idx % 64);
            self.mapped += 1;
        }
        fresh
    }

    /// Clears the entry at `idx`; returns true if it was mapped.
    fn clear(&mut self, idx: usize) -> bool {
        if self.entries[idx].take().is_some() {
            self.present[idx / 64] &= !(1u64 << (idx % 64));
            self.mapped -= 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn present_bits(&self) -> &[u64; LEAF_WORDS] {
        &self.present
    }

    /// Iterates the indices of mapped entries in ascending order.
    fn present_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.present.iter().enumerate().flat_map(|(w, &bits)| {
            let mut b = bits;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let i = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }

    /// Number of mapped entries with index in `lo..=hi`.
    fn mapped_in(&self, lo: usize, hi: usize) -> u32 {
        let mut n = 0;
        for (w, &bits) in self.present.iter().enumerate() {
            let first = w * 64;
            if first > hi || first + 63 < lo {
                continue;
            }
            let mut mask = u64::MAX;
            if lo > first {
                mask &= u64::MAX << (lo - first);
            }
            if hi < first + 63 {
                mask &= u64::MAX >> (63 - (hi - first));
            }
            n += (bits & mask).count_ones();
        }
        n
    }
}

/// One root-spine slot: a leaf plus the leaf index it covers
/// (`vpn >> LEAF_BITS`). The spine is a `Vec` sorted by `base`; slot
/// positions are stable between generation bumps (every structural
/// mutation bumps the generation), which is what lets a [`Translation`]
/// carry a spine position and still be redeemed in O(1).
#[derive(Clone)]
struct RootSlot {
    base: u64,
    leaf: Arc<Leaf>,
}

/// Public, read-only view of one mapped page (for inspection tools and
/// the cluster's residency accounting).
#[derive(Clone, Debug)]
pub struct PageInfo {
    /// Virtual page number.
    pub vpn: u64,
    /// Page permissions.
    pub perm: Perm,
    /// Number of address spaces (and snapshots) sharing the frame.
    ///
    /// This counts *direct* frame references only: a space holding the
    /// frame through a structurally-shared leaf contributes one
    /// reference via the leaf, not one per space.
    pub frame_refs: usize,
    /// True if the page still aliases the global zero frame.
    pub is_zero_frame: bool,
}

/// Operation counts from a structural clone
/// ([`AddressSpace::copy_from_counted`]), consumed by the kernel's
/// virtual-time cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CloneStats {
    /// Pages now mapped in the destination range (the semantic count —
    /// what [`AddressSpace::copy_from`] returns).
    pub pages: u64,
    /// Whole 512-page leaves shared wholesale by cloning one `Arc` on
    /// the root spine — O(1) each, regardless of how many pages the
    /// leaf maps.
    pub leaves_shared: u64,
    /// Pages handled individually: range-boundary partial leaves, plus
    /// every page of a copy whose source/destination offsets are not
    /// congruent modulo [`PAGES_PER_LEAF`].
    pub boundary_pages: u64,
}

/// One row of a leaf-granularity address-space summary
/// ([`AddressSpace::leaf_summary`]): a materialized page-table leaf,
/// identified by the virtual page number of its first slot, and how
/// many pages it maps. The summary is the control-plane half of
/// cluster space migration — a remote node that received it can pull
/// exactly these leaves ([`AddressSpace::leaf_image`]) and nothing
/// else.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeafInfo {
    /// Virtual page number of the leaf's first slot (a multiple of
    /// [`PAGES_PER_LEAF`]).
    pub first_vpn: u64,
    /// Mapped pages in the leaf (1..=[`PAGES_PER_LEAF`]).
    pub pages: u32,
}

/// A generation-validated translation of one virtual page, minted by
/// [`AddressSpace::translate_read`] / [`AddressSpace::translate_write`]
/// and redeemed through [`AddressSpace::translated_bytes`] /
/// [`AddressSpace::translated_bytes_mut`].
///
/// This is the entry type of the VM's software TLB (see DESIGN.md §4).
/// A translation is a *capability to skip the page-table walk*, not a
/// pointer: redeeming it re-checks that it was minted by this exact
/// space (`space_id`) at its current `generation`, so a translation
/// that survived any page-table mutation — map, unmap, permission
/// change, snapshot, merge, external write — is refused and the caller
/// falls back to the slow path. A stale hit is therefore impossible by
/// construction; the worst a forged or outdated translation can do is
/// miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    space_id: u64,
    generation: u64,
    /// Root-spine position of the page's leaf.
    slot: u32,
    /// Entry index within the leaf.
    entry: u16,
    writable: bool,
}

impl Translation {
    /// A translation that never validates (TLB reset value).
    pub const INVALID: Translation = Translation {
        space_id: 0, // Real space ids start at 1.
        generation: 0,
        slot: 0,
        entry: 0,
        writable: false,
    };
}

impl Default for Translation {
    fn default() -> Translation {
        Translation::INVALID
    }
}

/// Source of unique [`AddressSpace::space_id`] values. Ids only ever
/// feed *equality checks* against translations minted from the same
/// space, so allocation order (which can vary with host scheduling)
/// never influences observable behavior — a translation matches its
/// own space or nothing.
static NEXT_SPACE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_space_id() -> u64 {
    NEXT_SPACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A private virtual address space: the memory half of a Determinator
/// *space* (PAPER.md §3.1).
///
/// The map is sparse: untouched addresses are unmapped and fault.
/// Cloning an `AddressSpace` (or taking a [`snapshot`]) copies only the
/// root spine of the two-level page table; leaves and frames are shared
/// and cloned lazily on first write (copy-on-write at both levels),
/// which is what makes the paper's fork/snapshot/merge cycle
/// O(pages-touched) rather than O(pages-mapped).
///
/// Internally the page table is a root spine (`Vec` of
/// `(leaf index, Arc<Leaf>)`, sorted) over 512-entry leaves
/// ([`PAGES_PER_LEAF`]). The spine gives the VM's software TLB an O(1),
/// bounds-checked redemption path for cached [`Translation`]s without
/// any raw pointers; the `generation` counter (bumped by every mutation
/// that could make a cached translation or a decoded instruction stale)
/// is what keeps those translations honest, and `Arc::get_mut` on the
/// leaf — checked *before* the frame — is what keeps a cached write
/// from leaking through a structurally-shared leaf (DESIGN.md §5).
///
/// [`snapshot`]: AddressSpace::snapshot
pub struct AddressSpace {
    /// Root spine, sorted by leaf index.
    root: Vec<RootSlot>,
    /// Total mapped pages (sum of leaf `mapped` counts).
    pages: usize,
    /// The *dirty write-set*: VPNs whose contents may have changed
    /// since the last [`snapshot`](AddressSpace::snapshot) (which
    /// clears it). Every mutation path — `write`, `map_zero`,
    /// `copy_from`, `translate_write`, and the merge engine's own
    /// applies — records the pages it touches here, so `try_merge_from`
    /// can visit only the pages a child actually dirtied instead of
    /// every mapped page in the merge region. An over-approximation is
    /// sound (extra entries are rediscovered clean by frame identity or
    /// byte diffing); a missed entry would lose writes, so every
    /// content-mutating path below must mark it.
    dirty: DirtySet,
    /// Bumped by every page-table or content mutation that could
    /// invalidate an outstanding [`Translation`] or a decoded
    /// instruction (see DESIGN.md §4 for the exact rule). Monotonic.
    generation: u64,
    /// Unique identity of this space, distinguishing its translations
    /// from those of clones/snapshots that share `generation` values.
    space_id: u64,
    tracker: Option<AccessTracker>,
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace {
            root: Vec::new(),
            pages: 0,
            dirty: DirtySet::default(),
            generation: 0,
            space_id: fresh_space_id(),
            tracker: None,
        }
    }
}

impl Clone for AddressSpace {
    fn clone(&self) -> AddressSpace {
        AddressSpace {
            // O(leaves): the spine is copied, every leaf is shared.
            root: self.root.clone(),
            pages: self.pages,
            dirty: self.dirty.clone(),
            generation: self.generation,
            // A clone is a different space: translations minted from
            // the original must not validate against it (they could
            // diverge from here on).
            space_id: fresh_space_id(),
            tracker: self.tracker.clone(),
        }
    }
}

impl AddressSpace {
    /// Returns an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Installs an access tracker that records every page touched by
    /// reads and writes (used by the cluster layer to account demand
    /// paging). Returns any previous tracker.
    ///
    /// Installing or removing a tracker bumps the generation and
    /// disables the translation fast path (`translate_*` return `None`
    /// while a tracker is present), so the tracker's log stays exact.
    pub fn set_tracker(&mut self, tracker: Option<AccessTracker>) -> Option<AccessTracker> {
        self.generation += 1;
        std::mem::replace(&mut self.tracker, tracker)
    }

    /// Returns a reference to the installed access tracker, if any.
    pub fn tracker(&self) -> Option<&AccessTracker> {
        self.tracker.as_ref()
    }

    /// Returns the number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages
    }

    /// Returns the number of page-table leaves the root spine holds —
    /// the unit of structural-clone work ([`snapshot`] and leaf-
    /// congruent [`copy_from`] cost O(leaves), and the kernel charges
    /// `space_clone_ps` per leaf).
    ///
    /// [`snapshot`]: AddressSpace::snapshot
    /// [`copy_from`]: AddressSpace::copy_from
    pub fn leaf_count(&self) -> usize {
        self.root.len()
    }

    /// Returns the total mapped size in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        (self.pages as u64) << crate::PAGE_SHIFT
    }

    // ------------------------------------------------------------------
    // Two-level table plumbing
    // ------------------------------------------------------------------

    /// Binary search for the spine position of leaf `base`
    /// (`Err` = insertion point).
    #[inline]
    fn leaf_pos(&self, base: u64) -> std::result::Result<usize, usize> {
        self.root.binary_search_by_key(&base, |rs| rs.base)
    }

    /// The leaf covering `vpn`, if present on the spine.
    #[inline]
    pub(crate) fn leaf_for(&self, vpn: u64) -> Option<&Arc<Leaf>> {
        let pos = self.leaf_pos(vpn >> LEAF_BITS).ok()?;
        Some(&self.root[pos].leaf)
    }

    #[inline]
    fn entry(&self, vpn: u64) -> Option<&PageEntry> {
        self.leaf_for(vpn)?.entries[(vpn & LEAF_MASK) as usize].as_ref()
    }

    /// Mutable entry access; clones the leaf first if shared. Checks
    /// presence *before* `Arc::make_mut` so probing an unmapped page
    /// never breaks sharing.
    #[inline]
    fn entry_mut(&mut self, vpn: u64) -> Option<&mut PageEntry> {
        let pos = self.leaf_pos(vpn >> LEAF_BITS).ok()?;
        let idx = (vpn & LEAF_MASK) as usize;
        if !self.root[pos].leaf.is_present(idx) {
            return None;
        }
        Arc::make_mut(&mut self.root[pos].leaf).entries[idx].as_mut()
    }

    fn insert_entry(&mut self, vpn: u64, e: PageEntry) {
        let base = vpn >> LEAF_BITS;
        let pos = match self.leaf_pos(base) {
            Ok(p) => p,
            Err(p) => {
                self.root.insert(
                    p,
                    RootSlot {
                        base,
                        leaf: Arc::new(Leaf::empty()),
                    },
                );
                p
            }
        };
        let leaf = Arc::make_mut(&mut self.root[pos].leaf);
        if leaf.set((vpn & LEAF_MASK) as usize, e) {
            self.pages += 1;
        }
    }

    fn remove_entry(&mut self, vpn: u64) -> bool {
        let Ok(pos) = self.leaf_pos(vpn >> LEAF_BITS) else {
            return false;
        };
        let idx = (vpn & LEAF_MASK) as usize;
        if !self.root[pos].leaf.is_present(idx) {
            return false;
        }
        if self.root[pos].leaf.mapped == 1 {
            // Last page: drop the whole leaf without cloning it (the
            // clone a `make_mut` on a shared leaf would do is wasted
            // work when the result is immediately empty).
            self.root.remove(pos);
        } else {
            Arc::make_mut(&mut self.root[pos].leaf).clear(idx);
        }
        self.pages -= 1;
        true
    }

    /// Installs `leaf` wholesale at leaf index `base`, replacing any
    /// existing leaf (the structural-sharing fast path).
    fn set_leaf(&mut self, base: u64, leaf: Arc<Leaf>) {
        match self.leaf_pos(base) {
            Ok(pos) => {
                self.pages =
                    self.pages - self.root[pos].leaf.mapped as usize + leaf.mapped as usize;
                self.root[pos].leaf = leaf;
            }
            Err(pos) => {
                self.pages += leaf.mapped as usize;
                self.root.insert(pos, RootSlot { base, leaf });
            }
        }
    }

    /// Drops the whole leaf at leaf index `base`; returns true if one
    /// was present.
    fn remove_leaf(&mut self, base: u64) -> bool {
        match self.leaf_pos(base) {
            Ok(pos) => {
                self.pages -= self.root[pos].leaf.mapped as usize;
                self.root.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates information about every mapped page, in address order.
    pub fn iter_pages(&self) -> impl Iterator<Item = PageInfo> + '_ {
        let zero = zero_frame();
        self.root.iter().flat_map(move |rs| {
            let zero = zero.clone();
            rs.leaf.present_indices().map(move |idx| {
                let e = rs.leaf.entries[idx].as_ref().expect("present bit set");
                PageInfo {
                    vpn: (rs.base << LEAF_BITS) + idx as u64,
                    perm: e.perm,
                    frame_refs: Arc::strong_count(&e.frame),
                    is_zero_frame: Arc::ptr_eq(&e.frame, &zero),
                }
            })
        })
    }

    /// Maps `region` as zero-filled pages with permissions `perm`.
    ///
    /// Already-mapped pages in the range are replaced by zero pages.
    /// The zero frame is shared, so no bytes are written regardless of
    /// size; spans covering whole leaves are filled by sharing one
    /// prebuilt zero leaf per call (O(1) per 512 pages after the
    /// first). The region must be page-aligned.
    pub fn map_zero(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        if region.is_empty() {
            return Ok(());
        }
        let zero = zero_frame();
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        // Built on first use, shared across every full leaf in the
        // region (and with the destination: later writes COW it).
        let mut zero_leaf: Option<Arc<Leaf>> = None;
        let mut vpn = first;
        while vpn <= last {
            let base = vpn >> LEAF_BITS;
            let leaf_last = ((base + 1) << LEAF_BITS) - 1;
            let chunk_last = leaf_last.min(last);
            if vpn & LEAF_MASK == 0 && chunk_last == leaf_last {
                let l = zero_leaf.get_or_insert_with(|| {
                    let mut l = Leaf::empty();
                    for i in 0..PAGES_PER_LEAF {
                        l.set(
                            i,
                            PageEntry {
                                frame: zero.clone(),
                                perm,
                            },
                        );
                    }
                    Arc::new(l)
                });
                self.set_leaf(base, l.clone());
                self.dirty.assign_leaf(base, &[u64::MAX; LEAF_WORDS]);
            } else {
                for v in vpn..=chunk_last {
                    self.insert_entry(
                        v,
                        PageEntry {
                            frame: zero.clone(),
                            perm,
                        },
                    );
                    self.dirty.insert(v);
                }
            }
            vpn = chunk_last + 1;
        }
        self.generation += 1;
        Ok(())
    }

    /// Like [`map_zero`](AddressSpace::map_zero) but leaves
    /// already-mapped pages in the range untouched (contents, frames,
    /// and permissions). Returns the number of pages newly mapped.
    ///
    /// Re-staging paths (the process runtime rewrites its file-system
    /// image region at every rendezvous) use this to avoid discarding
    /// frames — and dirtying pages — that the subsequent write will
    /// overwrite anyway. When every page is already mapped this is a
    /// pure no-op: no dirty marks and **no generation bump**, so a
    /// rendezvous that re-stages an image does not spuriously
    /// invalidate the VM's cached translations.
    pub fn map_zero_if_unmapped(&mut self, region: Region, perm: Perm) -> Result<usize> {
        region.check_page_aligned()?;
        let zero = zero_frame();
        let mut added = 0;
        for vpn in region.vpns() {
            if self.entry(vpn).is_some() {
                continue;
            }
            self.insert_entry(
                vpn,
                PageEntry {
                    frame: zero.clone(),
                    perm,
                },
            );
            self.dirty.insert(vpn);
            added += 1;
        }
        if added > 0 {
            self.generation += 1;
        }
        Ok(added)
    }

    /// Removes all mappings in the page-aligned `region`.
    ///
    /// Spans covering whole leaves drop the leaf in O(1) (no
    /// copy-on-write clone of a shared leaf just to empty it).
    pub fn unmap(&mut self, region: Region) -> Result<()> {
        region.check_page_aligned()?;
        if region.is_empty() {
            return Ok(());
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        let mut changed = false;
        let mut vpn = first;
        while vpn <= last {
            let base = vpn >> LEAF_BITS;
            let leaf_last = ((base + 1) << LEAF_BITS) - 1;
            let chunk_last = leaf_last.min(last);
            if vpn & LEAF_MASK == 0 && chunk_last == leaf_last {
                if self.remove_leaf(base) {
                    changed = true;
                }
                self.dirty.clear_leaf(base);
            } else {
                for v in vpn..=chunk_last {
                    if self.remove_entry(v) {
                        changed = true;
                    }
                    self.dirty.remove(v);
                }
            }
            vpn = chunk_last + 1;
        }
        if changed {
            self.generation += 1;
        }
        Ok(())
    }

    /// Sets permissions on every mapped page in the page-aligned
    /// `region`; unmapped pages in the range are skipped.
    pub fn set_perm(&mut self, region: Region, perm: Perm) -> Result<()> {
        region.check_page_aligned()?;
        let mut changed = false;
        for vpn in region.vpns() {
            if let Some(e) = self.entry_mut(vpn) {
                e.perm = perm;
                changed = true;
            }
        }
        if changed {
            self.generation += 1;
        }
        Ok(())
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u64) -> Option<Perm> {
        self.entry(vpn_of(addr)).map(|e| e.perm)
    }

    /// Virtually copies `src_region` (page-aligned) of `src` to
    /// `dst_start` (page-aligned) in `self`.
    ///
    /// Frames are shared copy-on-write: no bytes move until one side
    /// writes. Pages unmapped in the source become unmapped in the
    /// destination, making the copy an exact replica of the range.
    /// Returns the number of pages installed.
    ///
    /// When source and destination are congruent modulo
    /// [`PAGES_PER_LEAF`], whole leaves inside the range are shared
    /// structurally — O(1) per 512 pages — and only the partial leaves
    /// at the range boundaries are walked page by page; see
    /// [`copy_from_counted`](AddressSpace::copy_from_counted) for the
    /// work breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use det_memory::{AddressSpace, Perm, Region};
    ///
    /// let mut parent = AddressSpace::new();
    /// parent.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
    /// parent.write(0x1000, b"shared").unwrap();
    ///
    /// let mut child = AddressSpace::new();
    /// let installed = child
    ///     .copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000)
    ///     .unwrap();
    /// assert_eq!(installed, 2);
    /// assert_eq!(child.read_vec(0x1000, 6).unwrap(), b"shared");
    ///
    /// // Copy-on-write: the child's writes never reach the parent.
    /// child.write(0x1000, b"mine").unwrap();
    /// assert_eq!(parent.read_vec(0x1000, 6).unwrap(), b"shared");
    /// ```
    pub fn copy_from(
        &mut self,
        src: &AddressSpace,
        src_region: Region,
        dst_start: u64,
    ) -> Result<usize> {
        self.copy_from_counted(src, src_region, dst_start)
            .map(|s| s.pages as usize)
    }

    /// Like [`copy_from`](AddressSpace::copy_from) but reports the
    /// structural work performed: how many whole leaves were shared in
    /// O(1) versus pages walked individually. The kernel charges
    /// `space_clone_ps` per shared leaf and `page_map_ps` per boundary
    /// page from these counts.
    pub fn copy_from_counted(
        &mut self,
        src: &AddressSpace,
        src_region: Region,
        dst_start: u64,
    ) -> Result<CloneStats> {
        src_region.check_page_aligned()?;
        if dst_start & (PAGE_SIZE as u64 - 1) != 0 {
            return Err(MemError::Misaligned { addr: dst_start });
        }
        let mut stats = CloneStats::default();
        if src_region.is_empty() {
            return Ok(stats);
        }
        let delta = (dst_start >> crate::PAGE_SHIFT) as i128 - vpn_of(src_region.start) as i128;
        let congruent = delta.rem_euclid(PAGES_PER_LEAF as i128) == 0;
        let first = vpn_of(src_region.start);
        let last = vpn_of(src_region.end - 1);
        let mut changed = false;
        let mut vpn = first;
        while vpn <= last {
            let base = vpn >> LEAF_BITS;
            let leaf_last = ((base + 1) << LEAF_BITS) - 1;
            let chunk_last = leaf_last.min(last);
            let whole = congruent && vpn & LEAF_MASK == 0 && chunk_last == leaf_last;
            if whole {
                // Structural share: one Arc clone replaces up to 512
                // page installs, and the destination's dirty bits for
                // the leaf become exactly the source's present bits
                // (installed pages dirty, holes cleared) — the same
                // marks the per-page path would leave.
                let dst_base = (base as i128 + delta / PAGES_PER_LEAF as i128) as u64;
                match src.leaf_for(vpn) {
                    Some(l) if l.mapped > 0 => {
                        stats.leaves_shared += 1;
                        stats.pages += l.mapped as u64;
                        self.dirty.assign_leaf(dst_base, l.present_bits());
                        self.set_leaf(dst_base, Arc::clone(l));
                        changed = true;
                    }
                    _ => {
                        if self.remove_leaf(dst_base) {
                            changed = true;
                        }
                        self.dirty.clear_leaf(dst_base);
                    }
                }
            } else {
                for v in vpn..=chunk_last {
                    let dst_vpn = (v as i128 + delta) as u64;
                    match src.entry(v) {
                        Some(e) => {
                            self.insert_entry(dst_vpn, e.clone());
                            self.dirty.insert(dst_vpn);
                            stats.pages += 1;
                            stats.boundary_pages += 1;
                            changed = true;
                        }
                        None => {
                            if self.remove_entry(dst_vpn) {
                                changed = true;
                            }
                            self.dirty.remove(dst_vpn);
                        }
                    }
                }
            }
            vpn = chunk_last + 1;
        }
        if changed {
            self.generation += 1;
        }
        Ok(stats)
    }

    /// Takes a snapshot: a structural page-table copy whose leaves and
    /// frames are shared with `self` until either side writes.
    ///
    /// The copy clones only the root spine — O(leaves), ~one `Arc`
    /// clone per 512 mapped pages — which is what makes the paper's
    /// `Snap` option near-free (PAPER.md §3.2, §8: fork/snapshot cost
    /// proportional to pages *touched*, not pages *mapped*).
    ///
    /// The snapshot is the *reference state* against which
    /// [`merge_from`](AddressSpace::merge_from) computes changes.
    /// Trackers are not inherited by snapshots.
    ///
    /// Taking a snapshot **clears this space's dirty write-set**: the
    /// returned snapshot is byte-identical to `self` at this instant,
    /// so "changed since the snapshot" and "dirtied since the write-set
    /// was cleared" start out as the same (empty) set, and every later
    /// mutation maintains both. This is the invariant that lets
    /// [`try_merge_from`](AddressSpace::try_merge_from) visit only
    /// dirty pages; it holds for any snapshot taken at or after the
    /// most recent `snapshot()` call (see DESIGN.md §3).
    ///
    /// Snapshots also bump the generation: a cached write translation
    /// pre-dates the dirty-set clear, so redeeming it would skip a
    /// dirty mark the merge engine depends on. (The refcount bump the
    /// snapshot puts on every *leaf* would already force such writes
    /// back to the slow path while the snapshot lives — redemption
    /// checks leaf exclusivity before frame exclusivity — but the
    /// generation bump keeps them out even after it is dropped.)
    ///
    /// # Examples
    ///
    /// ```
    /// use det_memory::{AddressSpace, Perm, Region};
    ///
    /// let mut s = AddressSpace::new();
    /// s.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
    /// s.write_u64(0x1000, 1).unwrap();
    /// let snap = s.snapshot();
    /// s.write_u64(0x1000, 2).unwrap();
    /// assert_eq!(snap.read_u64(0x1000).unwrap(), 1); // frozen
    /// assert_eq!(s.read_u64(0x1000).unwrap(), 2);
    /// ```
    pub fn snapshot(&mut self) -> AddressSpace {
        self.dirty.clear();
        self.generation += 1;
        AddressSpace {
            root: self.root.clone(),
            pages: self.pages,
            dirty: DirtySet::default(),
            generation: 0,
            space_id: fresh_space_id(),
            tracker: None,
        }
    }

    /// Returns true if the page frames backing `vpn` are the identical
    /// physical frame in `self` and `other` (O(1) unchanged-page test).
    ///
    /// A structurally-shared leaf short-circuits the test: if both
    /// spaces hold the same leaf `Arc`, every page it covers is
    /// trivially identical (mapped or not).
    pub fn same_frame(&self, other: &AddressSpace, vpn: u64) -> bool {
        if self.shares_leaf_with(other, vpn) {
            return true;
        }
        match (self.entry(vpn), other.entry(vpn)) {
            (Some(a), Some(b)) => Arc::ptr_eq(&a.frame, &b.frame),
            (None, None) => true,
            _ => false,
        }
    }

    /// Returns true if `self` and `other` hold the *same page-table
    /// leaf* for the 512-page aligned block containing `vpn` — the O(1)
    /// unchanged-subtree test the merge engine uses to skip whole
    /// blocks (one pointer compare covers [`PAGES_PER_LEAF`] pages).
    pub fn shares_leaf_with(&self, other: &AddressSpace, vpn: u64) -> bool {
        match (self.leaf_for(vpn), other.leaf_for(vpn)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Deltas (see the `delta` module)
    // ------------------------------------------------------------------

    /// Computes the exact difference between `self` and `base`, an
    /// earlier clone of this space (see [`crate::SpaceDelta`]).
    ///
    /// Because the clone pins every shared frame, any write since the
    /// clone COWed its frame, so frame-pointer inequality identifies
    /// exactly the changed pages; untouched leaves are skipped with one
    /// pointer compare. Pages dirtied *without* a frame change (a
    /// rewrite of identical content through the zero frame) are found
    /// by diffing the dirty sets, so
    /// [`apply_delta`](AddressSpace::apply_delta) reproduces the dirty
    /// write-set — and therefore merge behavior — exactly.
    ///
    /// `base` must not have had `snapshot()` taken on either side since
    /// the clone (a snapshot clears dirty marks, which a delta cannot
    /// express).
    /// Clears every dirty mark without touching content, permissions,
    /// structure, or the generation counter.
    ///
    /// This exists for checkpoint *restore*: a full checkpoint encodes
    /// content as a delta from the empty space, and
    /// [`apply_delta`](AddressSpace::apply_delta) marks every written
    /// page dirty — the restorer clears those marks and then re-applies
    /// the true dirty set, reproducing the original's write-set exactly
    /// even when a pre-checkpoint `snapshot()` had cleaned part of it.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// The difference between this space and `base`, an earlier clone
    /// of it: every page written since (plus permission changes and
    /// unmappings), suitable for
    /// [`apply_delta`](AddressSpace::apply_delta). Against a fresh
    /// empty space this enumerates the full mapped image. Cost is
    /// O(dirty leaves) against a true earlier clone, O(touched leaves)
    /// against empty.
    pub fn delta_since(&self, base: &AddressSpace) -> crate::SpaceDelta {
        use crate::delta::{PageDelta, PageDeltaOp, SpaceDelta};
        let zero = zero_frame();
        let mut pages: Vec<PageDelta> = Vec::new();
        let mut unmapped: Vec<u64> = Vec::new();
        let entry_op = |e: &PageEntry| {
            if Arc::ptr_eq(&e.frame, &zero) {
                PageDeltaOp::WriteZero
            } else {
                PageDeltaOp::Write(e.frame.bytes().to_vec())
            }
        };
        // Merge-walk both spines by leaf index.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.root.len() || j < base.root.len() {
            let sb = self.root.get(i).map(|rs| rs.base);
            let bb = base.root.get(j).map(|rs| rs.base);
            match (sb, bb) {
                (Some(s), Some(b)) if s == b => {
                    let (sl, bl) = (&self.root[i].leaf, &base.root[j].leaf);
                    if !Arc::ptr_eq(sl, bl) {
                        for idx in 0..PAGES_PER_LEAF {
                            let vpn = (s << LEAF_BITS) + idx as u64;
                            match (&sl.entries[idx], &bl.entries[idx]) {
                                (Some(se), Some(be)) => {
                                    if !Arc::ptr_eq(&se.frame, &be.frame) {
                                        pages.push(PageDelta {
                                            vpn,
                                            perm: se.perm,
                                            op: entry_op(se),
                                        });
                                    } else if se.perm != be.perm {
                                        pages.push(PageDelta {
                                            vpn,
                                            perm: se.perm,
                                            op: PageDeltaOp::SetPerm,
                                        });
                                    }
                                }
                                (Some(se), None) => pages.push(PageDelta {
                                    vpn,
                                    perm: se.perm,
                                    op: entry_op(se),
                                }),
                                (None, Some(_)) => unmapped.push(vpn),
                                (None, None) => {}
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
                (Some(s), bb) if bb.is_none_or(|b| s < b) => {
                    let sl = &self.root[i].leaf;
                    for idx in sl.present_indices() {
                        let se = sl.entries[idx].as_ref().expect("present bit set");
                        pages.push(PageDelta {
                            vpn: (s << LEAF_BITS) + idx as u64,
                            perm: se.perm,
                            op: entry_op(se),
                        });
                    }
                    i += 1;
                }
                (_, Some(b)) => {
                    let bl = &base.root[j].leaf;
                    for idx in bl.present_indices() {
                        unmapped.push((b << LEAF_BITS) + idx as u64);
                    }
                    j += 1;
                }
                _ => unreachable!("loop condition"),
            }
        }
        // Dirty-set difference: pages marked dirty since the base
        // without a frame change. The frame diff above already dirties
        // its Write/WriteZero pages on apply, so only the remainder
        // needs explicit marks.
        let written: std::collections::BTreeSet<u64> = pages.iter().map(|p| p.vpn).collect();
        for vpn in self.dirty.vpns_in(0, u64::MAX) {
            if base.dirty.contains(vpn) || written.contains(&vpn) {
                continue;
            }
            if let Some(e) = self.entry(vpn) {
                pages.push(PageDelta {
                    vpn,
                    perm: e.perm,
                    op: PageDeltaOp::MarkDirty,
                });
            }
        }
        pages.sort_by_key(|p| p.vpn);
        SpaceDelta { pages, unmapped }
    }

    /// Applies a delta produced by
    /// [`delta_since`](AddressSpace::delta_since) onto this space (a
    /// replica of the delta's base), reproducing the original's
    /// content, permissions, dirty write-set, zero-frame identities,
    /// and leaf-sharing structure.
    pub fn apply_delta(&mut self, delta: &crate::SpaceDelta) -> Result<()> {
        use crate::delta::PageDeltaOp;
        for &vpn in &delta.unmapped {
            self.remove_entry(vpn);
            self.dirty.remove(vpn);
        }
        for p in &delta.pages {
            match &p.op {
                PageDeltaOp::Write(bytes) => {
                    if bytes.len() != PAGE_SIZE {
                        return Err(MemError::Misaligned {
                            addr: p.vpn << PAGE_SHIFT,
                        });
                    }
                    let mut frame = Frame::zeroed();
                    frame.bytes_mut().copy_from_slice(bytes);
                    self.insert_entry(
                        p.vpn,
                        PageEntry {
                            frame: Arc::new(frame),
                            perm: p.perm,
                        },
                    );
                    self.dirty.insert(p.vpn);
                }
                PageDeltaOp::WriteZero => {
                    self.insert_entry(
                        p.vpn,
                        PageEntry {
                            frame: zero_frame(),
                            perm: p.perm,
                        },
                    );
                    self.dirty.insert(p.vpn);
                }
                PageDeltaOp::SetPerm => {
                    // entry_mut unshares the leaf, as live set_perm did.
                    match self.entry_mut(p.vpn) {
                        Some(e) => e.perm = p.perm,
                        None => {
                            return Err(MemError::Unmapped {
                                addr: p.vpn << PAGE_SHIFT,
                            });
                        }
                    }
                }
                PageDeltaOp::MarkDirty => {
                    // The live write that dirtied this page unshared
                    // its leaf even though the frame stayed put (e.g.
                    // map_zero over an already-zero page); entry_mut
                    // reproduces the unsharing on the replica.
                    if self.entry_mut(p.vpn).is_none() {
                        return Err(MemError::Unmapped {
                            addr: p.vpn << PAGE_SHIFT,
                        });
                    }
                    self.dirty.insert(p.vpn);
                }
            }
        }
        self.generation += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Leaf-granularity export (cluster migration pulls)
    // ------------------------------------------------------------------

    /// The leaf-granularity summary of this space: one [`LeafInfo`]
    /// per materialized page-table leaf holding at least one mapped
    /// page, ascending by address.
    ///
    /// This is the migration control-plane message of PAPER.md §3.3:
    /// because the structurally shared table only materializes leaves
    /// that were actually touched, the summary — and therefore the
    /// whole leaf-pull transfer it indexes — is O(touched), never
    /// O(address-range).
    ///
    /// # Examples
    ///
    /// ```
    /// use det_memory::{AddressSpace, PAGES_PER_LEAF, Perm, Region};
    ///
    /// let mut s = AddressSpace::new();
    /// // Two pages in one leaf, far apart from a third.
    /// s.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
    /// s.map_zero(Region::new(0x4000_0000, 0x4000_1000), Perm::RW).unwrap();
    /// let sum = s.leaf_summary();
    /// assert_eq!(sum.len(), 2);
    /// assert_eq!(sum[0].pages, 2);
    /// assert_eq!(sum[1].first_vpn, 0x4000_0000 >> 12);
    /// assert!(sum.iter().map(|l| l.pages as usize).sum::<usize>() <= s.leaf_count() * PAGES_PER_LEAF);
    /// ```
    pub fn leaf_summary(&self) -> Vec<LeafInfo> {
        self.root
            .iter()
            .filter(|rs| rs.leaf.mapped > 0)
            .map(|rs| LeafInfo {
                first_vpn: rs.base << LEAF_BITS,
                pages: rs.leaf.mapped,
            })
            .collect()
    }

    /// The full image of one page-table leaf as a [`crate::SpaceDelta`]
    /// against an *empty* space: a `Write`/`WriteZero` op (with
    /// permissions) per mapped page of the leaf identified by
    /// `first_vpn` (which must be leaf-aligned). Applying every leaf
    /// image of [`leaf_summary`](AddressSpace::leaf_summary) onto a
    /// fresh space via [`apply_delta`](AddressSpace::apply_delta)
    /// reproduces this space's bytes, permissions, zero-frame
    /// identities, and the dirty marks a live
    /// [`copy_from`](AddressSpace::copy_from) would leave — which is
    /// what lets a migrated space materialize leaf by leaf, pulling
    /// only what the home node's table actually holds.
    ///
    /// An unknown or unmaterialized leaf yields an empty delta.
    ///
    /// # Examples
    ///
    /// ```
    /// use det_memory::{AddressSpace, Perm, Region};
    ///
    /// let mut src = AddressSpace::new();
    /// src.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
    /// src.write(0x1000, b"leaf").unwrap();
    ///
    /// let mut dst = AddressSpace::new();
    /// for leaf in src.leaf_summary() {
    ///     dst.apply_delta(&src.leaf_image(leaf.first_vpn)).unwrap();
    /// }
    /// assert_eq!(dst.content_digest(), src.content_digest());
    /// ```
    pub fn leaf_image(&self, first_vpn: u64) -> crate::SpaceDelta {
        use crate::delta::{PageDelta, PageDeltaOp, SpaceDelta};
        let zero = zero_frame();
        let mut pages: Vec<PageDelta> = Vec::new();
        if first_vpn & LEAF_MASK == 0 {
            if let Ok(pos) = self.leaf_pos(first_vpn >> LEAF_BITS) {
                let leaf = &self.root[pos].leaf;
                for idx in leaf.present_indices() {
                    let e = leaf.entries[idx].as_ref().expect("present bit set");
                    pages.push(PageDelta {
                        vpn: first_vpn + idx as u64,
                        perm: e.perm,
                        op: if Arc::ptr_eq(&e.frame, &zero) {
                            PageDeltaOp::WriteZero
                        } else {
                            PageDeltaOp::Write(e.frame.bytes().to_vec())
                        },
                    });
                }
            }
        }
        SpaceDelta {
            pages,
            unmapped: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Translation fast path (the VM's software TLB)
    // ------------------------------------------------------------------

    /// The current page-table generation (see [`Translation`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// This space's unique identity (see [`Translation`]).
    #[inline]
    pub fn space_id(&self) -> u64 {
        self.space_id
    }

    /// Mints a read translation for the page containing `addr`, or
    /// `None` if the page is unmapped, not readable, or an access
    /// tracker is installed (the fast path would bypass its log).
    ///
    /// The translation stays redeemable until the next generation bump;
    /// a whole page of reads through it is semantically identical to
    /// the [`read`](AddressSpace::read) slow path.
    #[inline]
    pub fn translate_read(&self, addr: u64) -> Option<Translation> {
        if self.tracker.is_some() {
            return None;
        }
        let vpn = vpn_of(addr);
        let slot = self.leaf_pos(vpn >> LEAF_BITS).ok()?;
        let entry = (vpn & LEAF_MASK) as usize;
        let e = self.root[slot].leaf.entries[entry].as_ref()?;
        if !e.perm.allows(Perm::R) {
            return None;
        }
        Some(Translation {
            space_id: self.space_id,
            generation: self.generation,
            slot: slot as u32,
            entry: entry as u16,
            writable: false,
        })
    }

    /// Mints a write translation for the page containing `addr`, or
    /// `None` if the page is unmapped, not writable, or a tracker is
    /// installed.
    ///
    /// The page is made exclusively owned now (copy-on-write clone of
    /// a shared leaf *and* a shared frame, if needed) and marked dirty,
    /// so redeeming the translation via
    /// [`translated_bytes_mut`](AddressSpace::translated_bytes_mut) can
    /// write in place with no per-store permission check, dirty-set
    /// insert, or `Arc::make_mut`. This mints without bumping the
    /// generation: the table structure, permissions, and dirty set only
    /// gained information, so no outstanding translation went stale.
    pub fn translate_write(&mut self, addr: u64) -> Option<Translation> {
        if self.tracker.is_some() {
            return None;
        }
        let vpn = vpn_of(addr);
        let slot = self.leaf_pos(vpn >> LEAF_BITS).ok()?;
        let entry = (vpn & LEAF_MASK) as usize;
        // Refuse through the *shared* leaf: un-sharing it for a store
        // that will be denied anyway would pay a 512-entry clone and
        // needlessly break structural sharing with a live snapshot.
        if !self.root[slot].leaf.entries[entry]
            .as_ref()
            .is_some_and(|e| e.perm.allows(Perm::W))
        {
            return None;
        }
        let leaf = Arc::make_mut(&mut self.root[slot].leaf);
        let e = leaf.entries[entry].as_mut().expect("checked above");
        Arc::make_mut(&mut e.frame);
        self.dirty.insert(vpn);
        Some(Translation {
            space_id: self.space_id,
            generation: self.generation,
            slot: slot as u32,
            entry: entry as u16,
            writable: true,
        })
    }

    /// Redeems a read translation: the translated page's bytes, or
    /// `None` if the translation is stale (minted by another space or
    /// before the last generation bump). Redemption is O(1).
    #[inline]
    pub fn translated_bytes(&self, t: Translation) -> Option<&[u8; PAGE_SIZE]> {
        if t.space_id != self.space_id || t.generation != self.generation {
            return None;
        }
        self.root
            .get(t.slot as usize)?
            .leaf
            .entries
            .get(t.entry as usize)?
            .as_ref()
            .map(|e| e.frame.bytes())
    }

    /// Redeems a write translation: the translated page's bytes,
    /// mutably, or `None` if the translation is stale, was minted for
    /// reading, or the page has been shared again since minting — at
    /// *either* level: a snapshot or leaf-congruent virtual copy
    /// shares the whole leaf, a per-page copy shares the frame. Writing
    /// in place through either kind of sharing would leak through the
    /// copy-on-write boundary, so redemption checks leaf exclusivity
    /// (`Arc::get_mut` on the leaf) **before** frame exclusivity — a
    /// frame inside a structurally-shared leaf has a refcount of one,
    /// and only the leaf check can see that it is reachable from two
    /// spaces. Any failure is a miss: the caller falls back to the
    /// slow path, which clones properly.
    ///
    /// **Single-executor contract**: in-place writes through a
    /// redeemed translation deliberately do *not* bump the generation
    /// (that is the entire fast path), so they are invisible to any
    /// *other* holder of content-derived caches over this space. The
    /// one legitimate caller is the single `det_vm::Cpu` executing the
    /// space — it invalidates its own decoded-instruction cache on
    /// stores into code pages. Driving two CPUs against one space (the
    /// kernel never does) would let one CPU's stores stale the other's
    /// cached decodes; use [`write`](AddressSpace::write) (which bumps
    /// the generation) for any externally-observable mutation.
    #[inline]
    pub fn translated_bytes_mut(&mut self, t: Translation) -> Option<&mut [u8; PAGE_SIZE]> {
        if !t.writable || t.space_id != self.space_id || t.generation != self.generation {
            return None;
        }
        let leaf = Arc::get_mut(&mut self.root.get_mut(t.slot as usize)?.leaf)?;
        let e = leaf.entries.get_mut(t.entry as usize)?.as_mut()?;
        Arc::get_mut(&mut e.frame).map(Frame::bytes_mut)
    }

    // ------------------------------------------------------------------
    // Byte access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Fails with [`MemError::Unmapped`] or [`MemError::PermDenied`] at
    /// the first inaccessible byte; earlier bytes may already have been
    /// copied into `buf` (the kernel aborts the faulting space anyway).
    ///
    /// # Examples
    ///
    /// ```
    /// use det_memory::{AddressSpace, MemError, Perm, Region};
    ///
    /// let mut s = AddressSpace::new();
    /// s.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
    /// s.write(0x1000, b"abc").unwrap();
    /// let mut buf = [0u8; 3];
    /// s.read(0x1000, &mut buf).unwrap();
    /// assert_eq!(&buf, b"abc");
    /// assert_eq!(s.read(0x9000, &mut buf), Err(MemError::Unmapped { addr: 0x9000 }));
    /// ```
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.access(addr, buf.len(), Perm::R, |off, frame_bytes, chunk| {
            buf[off..off + chunk.len()].copy_from_slice(chunk);
            let _ = frame_bytes;
        })
    }

    /// Writes `data` starting at `addr`, cloning shared leaves and
    /// frames first (copy-on-write).
    ///
    /// The range is validated up front — every page mapped and
    /// writable — so a failed write is still all-or-nothing: nothing is
    /// dirtied or copied unless the whole range is writable. The copy
    /// loop then works leaf by leaf, un-sharing each leaf at most once.
    /// External content writes bump the generation: the bytes under any
    /// outstanding translation (and any decoded instruction) may have
    /// changed.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let end = addr
            .checked_add(data.len() as u64)
            .ok_or(MemError::AddressOverflow)?;
        let first_vpn = vpn_of(addr);
        let last_vpn = vpn_of(end - 1);

        // Validation pass: every page present and writable, reported
        // in ascending address order. Walked leaf by leaf — one spine
        // lookup per 512 pages, not per page — so staging a large
        // image validates in O(pages) array probes.
        let mut vpn = first_vpn;
        while vpn <= last_vpn {
            let base = vpn >> LEAF_BITS;
            let pos = self.leaf_pos(base).map_err(|_| MemError::Unmapped {
                addr: vpn << crate::PAGE_SHIFT,
            })?;
            let leaf = &self.root[pos].leaf;
            let chunk_last = (((base + 1) << LEAF_BITS) - 1).min(last_vpn);
            for v in vpn..=chunk_last {
                match leaf.entries[(v & LEAF_MASK) as usize].as_ref() {
                    None => {
                        return Err(MemError::Unmapped {
                            addr: v << crate::PAGE_SHIFT,
                        });
                    }
                    Some(e) if !e.perm.allows(Perm::W) => {
                        return Err(MemError::PermDenied {
                            addr: v << crate::PAGE_SHIFT,
                            need: Perm::W,
                        });
                    }
                    Some(_) => {}
                }
            }
            vpn = chunk_last + 1;
        }

        if let Some(t) = &self.tracker {
            t.record_write_range(addr, data.len() as u64);
        }
        self.generation += 1;
        let mut cursor = addr;
        let mut remaining = data;
        let mut vpn = first_vpn;
        while vpn <= last_vpn {
            let base = vpn >> LEAF_BITS;
            let pos = self.leaf_pos(base).expect("validated above");
            let chunk_last = (((base + 1) << LEAF_BITS) - 1).min(last_vpn);
            // One un-share per leaf, then in-place stores.
            let leaf = Arc::make_mut(&mut self.root[pos].leaf);
            for v in vpn..=chunk_last {
                self.dirty.insert(v);
                let off = offset_of(cursor);
                let n = remaining.len().min(PAGE_SIZE - off);
                let e = leaf.entries[(v & LEAF_MASK) as usize]
                    .as_mut()
                    .expect("validated above");
                // Copy-on-write: clone the frame if it is shared.
                let frame = Arc::make_mut(&mut e.frame);
                frame.bytes_mut()[off..off + n].copy_from_slice(&remaining[..n]);
                cursor += n as u64;
                remaining = &remaining[n..];
            }
            vpn = chunk_last + 1;
        }
        Ok(())
    }

    /// Shared read walk used by `read`; calls `sink(buf_offset, frame, chunk)`
    /// per page-sized chunk.
    fn access(
        &self,
        addr: u64,
        len: usize,
        need: Perm,
        mut sink: impl FnMut(usize, &Frame, &[u8]),
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let _end = addr
            .checked_add(len as u64)
            .ok_or(MemError::AddressOverflow)?;
        if let Some(t) = &self.tracker {
            t.record_read_range(addr, len as u64);
        }
        let mut cursor = addr;
        let mut done = 0usize;
        while done < len {
            let off = offset_of(cursor);
            let chunk = (len - done).min(PAGE_SIZE - off);
            let entry = self.entry(vpn_of(cursor)).ok_or(MemError::Unmapped {
                addr: vpn_of(cursor) << crate::PAGE_SHIFT,
            })?;
            if !entry.perm.allows(need) {
                return Err(MemError::PermDenied {
                    addr: vpn_of(cursor) << crate::PAGE_SHIFT,
                    need,
                });
            }
            sink(done, &entry.frame, &entry.frame.bytes()[off..off + chunk]);
            cursor += chunk as u64;
            done += chunk;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&self, addr: u64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<()> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<()> {
        self.write_u64(addr, v.to_bits())
    }

    /// Reads `n` little-endian `u64`s starting at `addr`.
    pub fn read_u64s(&self, addr: u64, n: usize) -> Result<Vec<u64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `u64`s little-endian starting at `addr`.
    pub fn write_u64s(&mut self, addr: u64, vals: &[u64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Reads `n` little-endian `f64`s starting at `addr`.
    pub fn read_f64s(&self, addr: u64, n: usize) -> Result<Vec<f64>> {
        let raw = self.read_vec(addr, n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Writes a slice of `f64`s little-endian starting at `addr`.
    pub fn write_f64s(&mut self, addr: u64, vals: &[f64]) -> Result<()> {
        let mut raw = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &raw)
    }

    /// Returns a deterministic digest of the mapped contents
    /// (vpn, perm, bytes), used by determinism tests to compare whole
    /// memory images across runs. The generation and space id are
    /// deliberately excluded: they are cache-validation state, not
    /// memory contents.
    pub fn content_digest(&self) -> ContentDigest {
        let mut d = ContentDigest::new();
        for rs in &self.root {
            for idx in rs.leaf.present_indices() {
                let e = rs.leaf.entries[idx].as_ref().expect("present bit set");
                d.update_u64((rs.base << LEAF_BITS) + idx as u64);
                d.update_u64(if e.perm.allows(Perm::R) { 1 } else { 0 });
                d.update_u64(if e.perm.allows(Perm::W) { 1 } else { 0 });
                d.update(e.frame.bytes());
            }
        }
        d
    }

    /// Returns one `(vpn, digest)` pair per mapped page, in ascending
    /// vpn order. Each digest covers the page's permission bits plus
    /// its full contents, computed with the same FNV chain as
    /// [`AddressSpace::content_digest`]. This is the stable per-space
    /// enumeration the conformance harness serializes into artifact
    /// bundles: a content divergence localizes to the first differing
    /// page instead of one opaque whole-image digest.
    pub fn page_digests(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.page_count());
        for rs in &self.root {
            for idx in rs.leaf.present_indices() {
                let e = rs.leaf.entries[idx].as_ref().expect("present bit set");
                let mut d = ContentDigest::new();
                d.update_u64(if e.perm.allows(Perm::R) { 1 } else { 0 });
                d.update_u64(if e.perm.allows(Perm::W) { 1 } else { 0 });
                d.update(e.frame.bytes());
                out.push(((rs.base << LEAF_BITS) + idx as u64, d.value()));
            }
        }
        out
    }

    /// Grants `merge_from` access to entries (crate-internal).
    pub(crate) fn entry_frame(&self, vpn: u64) -> Option<(&Arc<Frame>, Perm)> {
        self.entry(vpn).map(|e| (&e.frame, e.perm))
    }

    /// Installs `frame` at `vpn` with `perm` (crate-internal, used by merge).
    pub(crate) fn install_frame(&mut self, vpn: u64, frame: Arc<Frame>, perm: Perm) {
        self.insert_entry(vpn, PageEntry { frame, perm });
        self.dirty.insert(vpn);
        self.generation += 1;
    }

    /// Returns a mutable reference to the frame at `vpn`, cloning leaf
    /// and frame first if shared (crate-internal, used by merge).
    pub(crate) fn frame_mut(&mut self, vpn: u64) -> Option<&mut Frame> {
        self.dirty.insert(vpn);
        self.generation += 1;
        self.entry_mut(vpn).map(|e| Arc::make_mut(&mut e.frame))
    }

    /// Returns the sorted list of mapped vpns intersecting `region`.
    pub(crate) fn vpns_in(&self, region: Region) -> Vec<u64> {
        if region.is_empty() {
            return Vec::new();
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        let mut out = Vec::new();
        let start_pos = self
            .root
            .partition_point(|rs| rs.base < (first >> LEAF_BITS));
        for rs in &self.root[start_pos..] {
            if rs.base > (last >> LEAF_BITS) {
                break;
            }
            for idx in rs.leaf.present_indices() {
                let vpn = (rs.base << LEAF_BITS) + idx as u64;
                if vpn >= first && vpn <= last {
                    out.push(vpn);
                }
            }
        }
        out
    }

    /// Returns the sorted dirty VPNs intersecting `region` — the
    /// candidate set the merge engine examines (public for inspection
    /// tools and the VM's differential tests).
    pub fn dirty_vpns_in(&self, region: Region) -> Vec<u64> {
        if region.is_empty() {
            return Vec::new();
        }
        self.dirty
            .vpns_in(vpn_of(region.start), vpn_of(region.end - 1))
    }

    /// Counts mapped pages intersecting `region` — O(leaves) popcount
    /// work on the present bitmaps, no per-page iteration.
    pub(crate) fn mapped_pages_in(&self, region: Region) -> u64 {
        if region.is_empty() {
            return 0;
        }
        let first = vpn_of(region.start);
        let last = vpn_of(region.end - 1);
        let mut n = 0u64;
        let start_pos = self
            .root
            .partition_point(|rs| rs.base < (first >> LEAF_BITS));
        for rs in &self.root[start_pos..] {
            if rs.base > (last >> LEAF_BITS) {
                break;
            }
            let leaf_first = rs.base << LEAF_BITS;
            let lo = first.max(leaf_first) - leaf_first;
            let hi = last.min(leaf_first + LEAF_MASK) - leaf_first;
            if lo == 0 && hi == LEAF_MASK {
                n += rs.leaf.mapped as u64;
            } else {
                n += rs.leaf.mapped_in(lo as usize, hi as usize) as u64;
            }
        }
        n
    }

    /// Number of pages currently in the dirty write-set (pages whose
    /// contents may have changed since the last
    /// [`snapshot`](AddressSpace::snapshot)).
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// The complete sorted dirty write-set, across the whole address
    /// space (the checkpoint encoder persists it so a restored replica
    /// merges with identical stats — see
    /// [`delta_since`](AddressSpace::delta_since)).
    pub fn dirty_vpns(&self) -> Vec<u64> {
        self.dirty.vpns_in(0, u64::MAX)
    }

    /// Number of distinct page-table leaves containing at least one
    /// dirty page — the unit of incremental-checkpoint work.
    /// [`delta_since`](AddressSpace::delta_since) visits exactly the
    /// leaves that changed since the base, so the kernel charges
    /// checkpoint virtual time per dirty leaf, mirroring how
    /// `space_clone_ps` is charged per leaf on snapshot.
    pub fn dirty_leaf_count(&self) -> usize {
        let mut leaves = 0usize;
        let mut cur: Option<u64> = None;
        for vpn in self.dirty.vpns_in(0, u64::MAX) {
            let leaf = vpn >> LEAF_BITS;
            if cur != Some(leaf) {
                leaves += 1;
                cur = Some(leaf);
            }
        }
        leaves
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AddressSpace {{ pages: {}, leaves: {}, bytes: {} }}",
            self.pages,
            self.root.len(),
            self.mapped_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictPolicy;

    fn rw_space(start: u64, len: u64) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map_zero(Region::sized(start, len), Perm::RW).unwrap();
        s
    }

    #[test]
    fn zero_mapped_reads_zero() {
        let s = rw_space(0x1000, 0x3000);
        assert_eq!(s.read_vec(0x1000, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(s.read_u64(0x2ff8).unwrap(), 0);
    }

    #[test]
    fn unmapped_faults() {
        let s = rw_space(0x1000, 0x1000);
        assert_eq!(s.read_u8(0x3000), Err(MemError::Unmapped { addr: 0x3000 }));
        let mut s = s;
        assert!(matches!(s.write_u8(0x0, 1), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn perm_enforced() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert_eq!(
            s.write_u8(0x1000, 1),
            Err(MemError::PermDenied {
                addr: 0x1000,
                need: Perm::W
            })
        );
        s.set_perm(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        assert!(s.write_u8(0x1000, 1).is_ok());
        s.set_perm(Region::new(0x1000, 0x2000), Perm::NONE).unwrap();
        assert!(matches!(
            s.read_u8(0x1000),
            Err(MemError::PermDenied { .. })
        ));
    }

    #[test]
    fn write_spanning_pages() {
        let mut s = rw_space(0x1000, 0x2000);
        let data: Vec<u8> = (0..100).collect();
        s.write(0x1fd0, &data).unwrap();
        assert_eq!(s.read_vec(0x1fd0, 100).unwrap(), data);
    }

    #[test]
    fn write_spanning_many_pages() {
        let mut s = rw_space(0x1000, 0x10000);
        let data: Vec<u8> = (0..0xa000u32).map(|i| i as u8).collect();
        s.write(0x1800, &data).unwrap();
        assert_eq!(s.read_vec(0x1800, data.len()).unwrap(), data);
    }

    #[test]
    fn write_spanning_leaves() {
        // A write crossing a 512-page leaf boundary un-shares both
        // leaves and lands byte-exactly.
        let base = (PAGES_PER_LEAF as u64 - 1) << crate::PAGE_SHIFT;
        let mut s = rw_space(base, 2 * PAGE_SIZE as u64);
        assert_eq!(s.leaf_count(), 2);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        s.write(base + PAGE_SIZE as u64 - 100, &data).unwrap();
        assert_eq!(
            s.read_vec(base + PAGE_SIZE as u64 - 100, 200).unwrap(),
            data
        );
    }

    #[test]
    fn failed_write_is_all_or_nothing() {
        let mut s = rw_space(0x1000, 0x1000);
        // Spans into unmapped page 0x2000.
        let before = s.read_vec(0x1ff0, 16).unwrap();
        let dirty_before = s.dirty_page_count();
        assert!(s.write(0x1ff0, &[1u8; 32]).is_err());
        assert_eq!(s.read_vec(0x1ff0, 16).unwrap(), before);
        // The failed write also left no dirty marks behind.
        assert_eq!(s.dirty_page_count(), dirty_before);
    }

    #[test]
    fn failed_write_reports_first_bad_page() {
        let mut s = rw_space(0x1000, 0x1000);
        s.map_zero(Region::new(0x3000, 0x4000), Perm::RW).unwrap();
        // Hole at 0x2000 in the middle of the range.
        assert_eq!(
            s.write(0x1ff0, &[0u8; 0x2020]),
            Err(MemError::Unmapped { addr: 0x2000 })
        );
        // Read-only page in the middle is found too.
        s.map_zero(Region::new(0x2000, 0x3000), Perm::R).unwrap();
        assert_eq!(
            s.write(0x1ff0, &[0u8; 0x2020]),
            Err(MemError::PermDenied {
                addr: 0x2000,
                need: Perm::W
            })
        );
    }

    #[test]
    fn cow_copy_isolates_writes() {
        let mut parent = rw_space(0x1000, 0x2000);
        parent.write_u64(0x1000, 42).unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        // Shared frame until a write.
        assert!(child.same_frame(&parent, 1));
        child.write_u64(0x1000, 7).unwrap();
        assert!(!child.same_frame(&parent, 1));
        assert_eq!(parent.read_u64(0x1000).unwrap(), 42);
        assert_eq!(child.read_u64(0x1000).unwrap(), 7);
        // Untouched page still shared.
        assert!(child.same_frame(&parent, 2));
    }

    #[test]
    fn copy_to_different_destination() {
        let mut src = rw_space(0x1000, 0x1000);
        src.write(0x1100, b"hello").unwrap();
        let mut dst = AddressSpace::new();
        dst.copy_from(&src, Region::new(0x1000, 0x2000), 0x8000)
            .unwrap();
        assert_eq!(dst.read_vec(0x8100, 5).unwrap(), b"hello");
    }

    #[test]
    fn copy_propagates_holes() {
        let mut src = AddressSpace::new();
        src.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        // dst has a page at 0x5000 that the source range lacks.
        let mut dst = rw_space(0x4000, 0x3000);
        dst.copy_from(&src, Region::new(0x0000, 0x3000), 0x4000)
            .unwrap();
        // 0x4000 (from unmapped 0x0000) must now be unmapped.
        assert!(matches!(
            dst.read_u8(0x4000),
            Err(MemError::Unmapped { .. })
        ));
        assert!(dst.read_u8(0x5000).is_ok());
        assert!(matches!(
            dst.read_u8(0x6000),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn snapshot_is_immutable_reference() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u64(0x1000, 1).unwrap();
        let snap = s.snapshot();
        s.write_u64(0x1000, 2).unwrap();
        assert_eq!(snap.read_u64(0x1000).unwrap(), 1);
        assert_eq!(s.read_u64(0x1000).unwrap(), 2);
    }

    #[test]
    fn digest_detects_content_and_perm_changes() {
        let mut a = rw_space(0x1000, 0x2000);
        let d0 = a.content_digest();
        a.write_u8(0x1800, 1).unwrap();
        let d1 = a.content_digest();
        assert_ne!(d0, d1);
        a.write_u8(0x1800, 0).unwrap();
        // Content equality matters, not sharing structure.
        assert_eq!(a.content_digest(), d0);
        a.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert_ne!(a.content_digest(), d0);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut s = rw_space(0, 0x2000);
        s.write_u32(0x10, 0xdead_beef).unwrap();
        assert_eq!(s.read_u32(0x10).unwrap(), 0xdead_beef);
        s.write_f64(0x20, -1.5e300).unwrap();
        assert_eq!(s.read_f64(0x20).unwrap(), -1.5e300);
        s.write_u64s(0x100, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_u64s(0x100, 3).unwrap(), vec![1, 2, 3]);
        s.write_f64s(0x200, &[0.5, -0.25]).unwrap();
        assert_eq!(s.read_f64s(0x200, 2).unwrap(), vec![0.5, -0.25]);
    }

    #[test]
    fn unmap_removes_pages() {
        let mut s = rw_space(0x1000, 0x3000);
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert!(s.read_u8(0x1000).is_ok());
        assert!(matches!(s.read_u8(0x2000), Err(MemError::Unmapped { .. })));
        assert!(s.read_u8(0x3000).is_ok());
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn empty_leaves_are_dropped() {
        let mut s = rw_space(0x1000, 0x3000);
        assert_eq!(s.leaf_count(), 1);
        s.unmap(Region::new(0x1000, 0x4000)).unwrap();
        // Unmapping the last page of a leaf removes the leaf itself,
        // so the spine never accumulates empty leaves.
        assert_eq!(s.leaf_count(), 0);
        s.map_zero(Region::new(0x8000, 0xa000), Perm::RW).unwrap();
        assert_eq!(s.leaf_count(), 1);
        s.write_u8(0x8000, 7).unwrap();
        assert_eq!(s.read_u8(0x8000).unwrap(), 7);
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn misaligned_kernel_ops_rejected() {
        let mut s = AddressSpace::new();
        assert!(matches!(
            s.map_zero(Region::new(0x100, 0x2000), Perm::RW),
            Err(MemError::Misaligned { .. })
        ));
        let src = AddressSpace::new();
        assert!(matches!(
            s.copy_from(&src, Region::new(0x1000, 0x2000), 0x80),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn zero_fill_shares_global_frame() {
        let s = rw_space(0x1000, 0x100000);
        assert!(s.iter_pages().all(|p| p.is_zero_frame));
        assert_eq!(s.page_count(), 0x100);
    }

    #[test]
    fn dirty_set_tracks_mutations_and_snapshot_clears() {
        let mut s = rw_space(0x1000, 0x3000);
        // map_zero dirtied all three pages.
        assert_eq!(s.dirty_page_count(), 3);
        let _snap = s.snapshot();
        assert_eq!(s.dirty_page_count(), 0);
        // A write spanning two pages dirties both.
        s.write(0x1ff0, &[1u8; 32]).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1, 2]);
        // Unmapping removes the page from the set.
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x4000)), vec![1]);
        // Region filtering works.
        assert!(s.dirty_vpns_in(Region::new(0x3000, 0x4000)).is_empty());
        assert_eq!(s.mapped_pages_in(Region::new(0x1000, 0x4000)), 2);
    }

    #[test]
    fn copy_from_marks_destination_dirty() {
        let mut src = rw_space(0x1000, 0x2000);
        src.write_u8(0x1000, 9).unwrap();
        let mut dst = AddressSpace::new();
        let _snap = dst.snapshot();
        dst.copy_from(&src, Region::new(0x1000, 0x3000), 0x1000)
            .unwrap();
        assert_eq!(dst.dirty_vpns_in(Region::new(0x1000, 0x3000)), vec![1, 2]);
    }

    #[test]
    fn map_zero_if_unmapped_preserves_existing_pages() {
        let mut s = rw_space(0x1000, 0x1000);
        s.write_u8(0x1000, 7).unwrap();
        let added = s
            .map_zero_if_unmapped(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        assert_eq!(added, 1);
        // The existing page's contents survived; the new page is zero.
        assert_eq!(s.read_u8(0x1000).unwrap(), 7);
        assert_eq!(s.read_u8(0x2000).unwrap(), 0);
    }

    // ------------------------------------------------------------------
    // Structural sharing (leaf-level copy-on-write)
    // ------------------------------------------------------------------

    /// A leaf-aligned region of `leaves` full leaves starting at leaf
    /// index `base`.
    fn leaf_region(base: u64, leaves: u64) -> Region {
        let start = base << (LEAF_BITS + crate::PAGE_SHIFT);
        Region::sized(start, leaves * (PAGES_PER_LEAF * PAGE_SIZE) as u64)
    }

    #[test]
    fn snapshot_shares_leaves_structurally() {
        let mut s = AddressSpace::new();
        s.map_zero(leaf_region(1, 2), Perm::RW).unwrap();
        for i in 0..2 * PAGES_PER_LEAF as u64 {
            s.write_u64(leaf_region(1, 2).start + i * PAGE_SIZE as u64, i)
                .unwrap();
        }
        let snap = s.snapshot();
        // Every leaf is shared, no frame was copied.
        assert!(s.shares_leaf_with(&snap, PAGES_PER_LEAF as u64));
        assert!(s.shares_leaf_with(&snap, 2 * PAGES_PER_LEAF as u64));
        // One write un-shares exactly one leaf.
        s.write_u64(leaf_region(1, 1).start, 999).unwrap();
        assert!(!s.shares_leaf_with(&snap, PAGES_PER_LEAF as u64));
        assert!(s.shares_leaf_with(&snap, 2 * PAGES_PER_LEAF as u64));
        // The snapshot still reads the old value; frames of the
        // un-shared leaf are still frame-shared except the written one.
        assert_eq!(snap.read_u64(leaf_region(1, 1).start).unwrap(), 0);
        assert_eq!(s.read_u64(leaf_region(1, 1).start).unwrap(), 999);
        assert!(s.same_frame(&snap, PAGES_PER_LEAF as u64 + 1));
    }

    #[test]
    fn leaf_congruent_copy_shares_wholesale() {
        let r = leaf_region(2, 2);
        let mut src = AddressSpace::new();
        src.map_zero(r, Perm::RW).unwrap();
        src.write(r.start, b"payload").unwrap();
        let mut dst = AddressSpace::new();
        // Same offset: fully congruent, zero boundary pages.
        let stats = dst.copy_from_counted(&src, r, r.start).unwrap();
        assert_eq!(stats.leaves_shared, 2);
        assert_eq!(stats.boundary_pages, 0);
        assert_eq!(stats.pages, 2 * PAGES_PER_LEAF as u64);
        assert!(dst.shares_leaf_with(&src, 2 * PAGES_PER_LEAF as u64));
        assert_eq!(dst.read_vec(r.start, 7).unwrap(), b"payload");
        // A congruent but shifted destination still shares.
        let mut dst2 = AddressSpace::new();
        let shifted = leaf_region(10, 1).start;
        let stats = dst2.copy_from_counted(&src, r, shifted).unwrap();
        assert_eq!(stats.leaves_shared, 2);
        assert_eq!(dst2.read_vec(shifted, 7).unwrap(), b"payload");
        // Writes through a shared leaf COW and never leak back.
        dst2.write(shifted, b"other!!").unwrap();
        assert_eq!(src.read_vec(r.start, 7).unwrap(), b"payload");
    }

    #[test]
    fn incongruent_copy_falls_back_to_pages() {
        let r = leaf_region(2, 1);
        let mut src = AddressSpace::new();
        src.map_zero(r, Perm::RW).unwrap();
        let mut dst = AddressSpace::new();
        // Destination shifted by one page: no leaf can be shared.
        let stats = dst
            .copy_from_counted(&src, r, r.start + PAGE_SIZE as u64)
            .unwrap();
        assert_eq!(stats.leaves_shared, 0);
        assert_eq!(stats.boundary_pages, PAGES_PER_LEAF as u64);
        assert_eq!(dst.page_count(), PAGES_PER_LEAF);
    }

    #[test]
    fn partial_leaf_ranges_use_boundary_pages() {
        // Range starts mid-leaf: head and tail are walked per page,
        // the interior leaf is shared.
        let start = leaf_region(1, 1).start + 16 * PAGE_SIZE as u64;
        let r = Region::sized(start, (2 * PAGES_PER_LEAF * PAGE_SIZE) as u64);
        let mut src = AddressSpace::new();
        src.map_zero(r, Perm::RW).unwrap();
        let mut dst = AddressSpace::new();
        let stats = dst.copy_from_counted(&src, r, r.start).unwrap();
        assert_eq!(stats.leaves_shared, 1);
        assert_eq!(stats.boundary_pages, (PAGES_PER_LEAF - 16) as u64 + 16);
        assert_eq!(stats.pages, 2 * PAGES_PER_LEAF as u64);
    }

    #[test]
    fn wholesale_copy_propagates_leaf_holes() {
        // An interior leaf absent from the source must erase the
        // destination's leaf in O(1), exactly like per-page hole
        // propagation would.
        let r = leaf_region(4, 3);
        let mut src = AddressSpace::new();
        src.map_zero(leaf_region(4, 1), Perm::RW).unwrap(); // Leaf 4 only.
        src.map_zero(leaf_region(6, 1), Perm::RW).unwrap(); // Leaf 6 only.
        let mut dst = AddressSpace::new();
        dst.map_zero(r, Perm::RW).unwrap(); // All three leaves mapped.
        dst.copy_from(&src, r, r.start).unwrap();
        assert_eq!(dst.page_count(), 2 * PAGES_PER_LEAF);
        assert!(dst.read_u8(leaf_region(4, 1).start).is_ok());
        assert!(matches!(
            dst.read_u8(leaf_region(5, 1).start),
            Err(MemError::Unmapped { .. })
        ));
        assert!(dst.read_u8(leaf_region(6, 1).start).is_ok());
        // Dirty marks mirror the source's present set.
        assert_eq!(dst.dirty_page_count(), 2 * PAGES_PER_LEAF);
    }

    #[test]
    fn unmap_drops_whole_leaves_without_cow() {
        let r = leaf_region(1, 2);
        let mut s = AddressSpace::new();
        s.map_zero(r, Perm::RW).unwrap();
        let snap = s.snapshot();
        // Unmapping a whole shared leaf must not clone it first.
        s.unmap(leaf_region(1, 1)).unwrap();
        assert_eq!(s.page_count(), PAGES_PER_LEAF);
        assert_eq!(snap.page_count(), 2 * PAGES_PER_LEAF);
        assert!(snap.read_u8(r.start).is_ok());
    }

    // ------------------------------------------------------------------
    // Generation + translation fast path
    // ------------------------------------------------------------------

    #[test]
    fn generation_bumps_on_table_and_content_mutations() {
        let mut s = AddressSpace::new();
        let g0 = s.generation();
        s.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
        let g1 = s.generation();
        assert!(g1 > g0);
        s.write_u8(0x1000, 1).unwrap();
        let g2 = s.generation();
        assert!(g2 > g1);
        s.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        let g3 = s.generation();
        assert!(g3 > g2);
        let _snap = s.snapshot();
        let g4 = s.generation();
        assert!(g4 > g3);
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        assert!(s.generation() > g4);
    }

    #[test]
    fn generation_stable_under_noop_restage_and_reads() {
        // The proc-runtime rendezvous re-stages its fs image with
        // map_zero_if_unmapped; when every page is already mapped the
        // call must not invalidate cached translations.
        let mut s = rw_space(0x1000, 0x3000);
        let g = s.generation();
        s.map_zero_if_unmapped(Region::new(0x1000, 0x3000), Perm::RW)
            .unwrap();
        assert_eq!(s.generation(), g);
        // Reads and no-op mutations on empty ranges don't bump either.
        s.read_u64(0x1000).unwrap();
        s.unmap(Region::new(0x8000, 0x9000)).unwrap();
        s.set_perm(Region::new(0x8000, 0x9000), Perm::R).unwrap();
        s.write(0x1000, &[]).unwrap();
        assert_eq!(s.generation(), g);
    }

    #[test]
    fn translations_roundtrip_and_go_stale() {
        let mut s = rw_space(0x1000, 0x2000);
        s.write(0x1000, b"abcd").unwrap();
        let t = s.translate_read(0x1004).unwrap();
        assert_eq!(&s.translated_bytes(t).unwrap()[0..4], b"abcd");
        // Any mutation invalidates it.
        s.write_u8(0x2000, 1).unwrap();
        assert!(s.translated_bytes(t).is_none());
        // A fresh one works again.
        let t = s.translate_read(0x1000).unwrap();
        assert!(s.translated_bytes(t).is_some());
        // Read translations cannot be redeemed for writing.
        assert!(s.translated_bytes_mut(t).is_none());
    }

    #[test]
    fn translate_respects_perms_and_mapping() {
        let mut s = AddressSpace::new();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        assert!(s.translate_read(0x1000).is_some());
        assert!(s.translate_write(0x1000).is_none());
        assert!(s.translate_read(0x5000).is_none());
        s.set_perm(Region::new(0x1000, 0x2000), Perm::NONE).unwrap();
        assert!(s.translate_read(0x1000).is_none());
    }

    #[test]
    fn write_translation_marks_dirty_and_writes_in_place() {
        let mut s = rw_space(0x1000, 0x2000);
        let _snap = s.snapshot();
        assert_eq!(s.dirty_page_count(), 0);
        let t = s.translate_write(0x1008).unwrap();
        // Minting the translation already dirtied the page.
        assert_eq!(s.dirty_vpns_in(Region::new(0x1000, 0x3000)), vec![1]);
        let g = s.generation();
        s.translated_bytes_mut(t).unwrap()[8] = 0xAB;
        // In-place writes do not bump the generation...
        assert_eq!(s.generation(), g);
        // ...and are visible to ordinary reads.
        assert_eq!(s.read_u8(0x1008).unwrap(), 0xAB);
    }

    #[test]
    fn write_translation_refused_once_frame_shared() {
        let mut s = rw_space(0x1000, 0x2000);
        s.write_u8(0x1000, 1).unwrap(); // Own the frame exclusively.
        let t = s.translate_write(0x1000).unwrap();
        assert!(s.translated_bytes_mut(t).is_some());
        // A snapshot shares every leaf again (and bumps generation).
        let snap = s.snapshot();
        assert!(s.translated_bytes_mut(t).is_none());
        // Even a fresh write translation COWs first, so writing through
        // it cannot leak into the snapshot.
        let t2 = s.translate_write(0x1000).unwrap();
        s.translated_bytes_mut(t2).unwrap()[0] = 9;
        assert_eq!(snap.read_u8(0x1000).unwrap(), 1);
        assert_eq!(s.read_u8(0x1000).unwrap(), 9);
    }

    #[test]
    fn write_translation_refused_once_leaf_shared() {
        // The structural analogue of the frame-sharing test: using this
        // space as the *source* of a leaf-congruent copy bumps only the
        // leaf's refcount (the frames inside keep refcount 1), and
        // redemption must detect that sharing via the leaf check alone.
        let r = leaf_region(1, 1);
        let mut s = AddressSpace::new();
        s.map_zero(r, Perm::RW).unwrap();
        s.write_u8(r.start, 1).unwrap();
        let t = s.translate_write(r.start).unwrap();
        assert!(s.translated_bytes_mut(t).is_some());
        let mut other = AddressSpace::new();
        other.copy_from(&s, r, r.start).unwrap();
        assert!(other.shares_leaf_with(&s, PAGES_PER_LEAF as u64));
        // No generation bump happened on the source, but the in-place
        // write path must still refuse: the leaf is no longer exclusive.
        assert!(s.translated_bytes_mut(t).is_none());
        // The slow path COWs properly and the copy keeps the old byte.
        s.write_u8(r.start, 2).unwrap();
        assert_eq!(other.read_u8(r.start).unwrap(), 1);
        assert_eq!(s.read_u8(r.start).unwrap(), 2);
    }

    #[test]
    fn refused_write_translation_keeps_leaf_shared() {
        // A denied store must be refused through the *shared* leaf:
        // un-sharing it first would pay a 512-entry clone and break
        // structural sharing with the snapshot for nothing.
        let r = leaf_region(1, 1);
        let mut s = AddressSpace::new();
        s.map_zero(r, Perm::R).unwrap();
        let snap = s.snapshot();
        assert!(s.translate_write(r.start).is_none());
        assert!(s.shares_leaf_with(&snap, PAGES_PER_LEAF as u64));
    }

    #[test]
    fn translations_do_not_cross_spaces() {
        let a = rw_space(0x1000, 0x1000);
        let t = a.translate_read(0x1000).unwrap();
        let b = a.clone();
        // The clone shares frames but is a different space; the
        // original's translation must not validate against it.
        assert!(b.translated_bytes(t).is_none());
        assert!(a.translated_bytes(t).is_some());
    }

    #[test]
    fn tracker_disables_fast_path() {
        let mut s = rw_space(0x1000, 0x1000);
        let t = s.translate_read(0x1000).unwrap();
        s.set_tracker(Some(AccessTracker::new()));
        // Installing the tracker bumped the generation...
        assert!(s.translated_bytes(t).is_none());
        // ...and minting is refused while it is present.
        assert!(s.translate_read(0x1000).is_none());
        assert!(s.translate_write(0x1000).is_none());
        s.set_tracker(None);
        assert!(s.translate_read(0x1000).is_some());
    }
    #[test]
    fn delta_roundtrip_reproduces_content_and_dirty_set() {
        let r = Region::new(0x1000, 0x5000);
        let mut s = rw_space(0x1000, 0x4000);
        s.write_u64(0x1000, 7).unwrap();
        let base = s.clone();
        // A mix of mutations: writes, fresh zero maps, perm change,
        // unmap, and a re-zero of an already-zero page (dirty mark
        // with no frame change).
        s.write_u64(0x2000, 99).unwrap();
        s.map_zero(Region::new(0x4000, 0x5000), Perm::RW).unwrap();
        s.map_zero(Region::new(0x3000, 0x4000), Perm::RW).unwrap();
        s.set_perm(Region::new(0x1000, 0x2000), Perm::R).unwrap();
        s.unmap(Region::new(0x2000, 0x3000)).unwrap();
        let d = s.delta_since(&base);
        let mut replica = base.clone();
        replica.apply_delta(&d).unwrap();
        assert_eq!(replica.content_digest().value(), s.content_digest().value());
        assert_eq!(replica.page_count(), s.page_count());
        assert_eq!(replica.dirty_page_count(), s.dirty_page_count());
        for vpn in r.vpns() {
            assert_eq!(
                replica.perm_at(vpn << PAGE_SHIFT),
                s.perm_at(vpn << PAGE_SHIFT)
            );
        }
    }

    #[test]
    fn delta_preserves_zero_frame_identity() {
        let base = AddressSpace::new();
        let mut s = base.clone();
        s.map_zero(Region::new(0x1000, 0x2000), Perm::RW).unwrap();
        s.map_zero(Region::new(0x2000, 0x3000), Perm::RW).unwrap();
        s.write_u64(0x2000, 5).unwrap();
        let d = s.delta_since(&base);
        let mut replica = base.clone();
        replica.apply_delta(&d).unwrap();
        // The untouched zero page still aliases the global zero frame
        // on the replica (the merge engine's O(1) fast path depends on
        // this identity); the written page holds a private frame.
        let infos: Vec<PageInfo> = replica.iter_pages().collect();
        assert!(infos.iter().any(|p| p.vpn == 1 && p.is_zero_frame));
        assert!(infos.iter().any(|p| p.vpn == 2 && !p.is_zero_frame));
    }

    #[test]
    fn delta_replica_merges_with_identical_stats() {
        // Parent forks a child (copy + snap), the child writes; merging
        // the live child and a delta-reconstructed replica into
        // identical parents must produce bit-identical MergeStats —
        // including the frame-identity and leaf-sharing fast paths.
        let r = Region::new(0x1000, 0x4000);
        let mut parent = rw_space(0x1000, 0x3000);
        parent.write_u64(0x1000, 1).unwrap();
        let mut child = AddressSpace::new();
        child.copy_from(&parent, r, 0x1000).unwrap();
        let snap = child.snapshot();
        let child_base = child.clone();
        let snap_replica = snap.clone();
        let mut child_replica = child_base.clone();
        // The vehicle window: the child writes one page, zero-maps a
        // fresh one, and re-zeroes an existing zero page.
        child.write_u64(0x2000, 42).unwrap();
        child
            .map_zero(Region::new(0x3000, 0x4000), Perm::RW)
            .unwrap();
        child
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let d = child.delta_since(&child_base);
        child_replica.apply_delta(&d).unwrap();

        let mut p_live = parent.clone();
        let mut p_replay = parent.clone();
        let (live, lc) = p_live
            .try_merge_from(&child, &snap, r, ConflictPolicy::ChildWins)
            .unwrap();
        let (replayed, rc) = p_replay
            .try_merge_from(&child_replica, &snap_replica, r, ConflictPolicy::ChildWins)
            .unwrap();
        assert!(lc.is_none() && rc.is_none());
        assert_eq!(live, replayed, "merge stats must replay bit-identically");
        assert_eq!(
            p_live.content_digest().value(),
            p_replay.content_digest().value()
        );
    }

    #[test]
    fn empty_delta_is_empty() {
        let s = rw_space(0x1000, 0x3000);
        let base = s.clone();
        let d = s.delta_since(&base);
        assert!(d.is_empty());
    }
}
