//! The dirty write-set, stored at page-table-leaf granularity.
//!
//! PR 2 introduced the dirty set as a `BTreeSet<u64>` of VPNs; with
//! the structurally-shared page table (DESIGN.md §5), bulk operations
//! matter: a leaf-congruent virtual copy installs up to 512 pages with
//! one `Arc` clone, and its dirty marks must be just as cheap or the
//! bookkeeping would re-introduce the O(pages) cost the sharing
//! removed. So the set is a map from leaf index to a 512-bit bitmap:
//! per-page marks are one bit flip, whole-leaf marks are one 8-word
//! assignment.

use std::collections::BTreeMap;

use crate::space::{LEAF_BITS, LEAF_MASK, LEAF_WORDS as WORDS};

/// Set of dirty VPNs, bitmap-chunked by page-table leaf.
///
/// Invariant: no stored bitmap is all-zero (empty leaves are removed),
/// and `count` equals the total number of set bits.
#[derive(Clone, Debug, Default)]
pub(crate) struct DirtySet {
    leaves: BTreeMap<u64, [u64; WORDS]>,
    count: usize,
}

impl DirtySet {
    /// Marks `vpn` dirty.
    pub(crate) fn insert(&mut self, vpn: u64) {
        let bits = self.leaves.entry(vpn >> LEAF_BITS).or_insert([0; WORDS]);
        let idx = (vpn & LEAF_MASK) as usize;
        let bit = 1u64 << (idx % 64);
        if bits[idx / 64] & bit == 0 {
            bits[idx / 64] |= bit;
            self.count += 1;
        }
    }

    /// Clears `vpn`'s dirty mark, if set.
    pub(crate) fn remove(&mut self, vpn: u64) {
        let base = vpn >> LEAF_BITS;
        let Some(bits) = self.leaves.get_mut(&base) else {
            return;
        };
        let idx = (vpn & LEAF_MASK) as usize;
        let bit = 1u64 << (idx % 64);
        if bits[idx / 64] & bit != 0 {
            bits[idx / 64] &= !bit;
            self.count -= 1;
            if bits.iter().all(|&w| w == 0) {
                self.leaves.remove(&base);
            }
        }
    }

    /// Sets the dirty bitmap of leaf `base` to exactly `bits` — the
    /// bulk form of insert-every-mapped-page / remove-every-hole a
    /// wholesale leaf install needs (O(1) per 512 pages).
    pub(crate) fn assign_leaf(&mut self, base: u64, bits: &[u64; WORDS]) {
        let new: usize = bits.iter().map(|w| w.count_ones() as usize).sum();
        if new == 0 {
            self.clear_leaf(base);
            return;
        }
        let old = match self.leaves.insert(base, *bits) {
            Some(prev) => prev.iter().map(|w| w.count_ones() as usize).sum(),
            None => 0,
        };
        self.count = self.count - old + new;
    }

    /// Clears every dirty bit of leaf `base` (O(1)).
    pub(crate) fn clear_leaf(&mut self, base: u64) {
        if let Some(prev) = self.leaves.remove(&base) {
            self.count -= prev.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
    }

    /// Clears the whole set.
    pub(crate) fn clear(&mut self) {
        self.leaves.clear();
        self.count = 0;
    }

    /// Number of dirty pages.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// True if `vpn` is marked dirty.
    pub(crate) fn contains(&self, vpn: u64) -> bool {
        match self.leaves.get(&(vpn >> LEAF_BITS)) {
            Some(bits) => {
                let idx = (vpn & LEAF_MASK) as usize;
                bits[idx / 64] & (1u64 << (idx % 64)) != 0
            }
            None => false,
        }
    }

    /// The sorted dirty VPNs in `first..=last`.
    pub(crate) fn vpns_in(&self, first: u64, last: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for (&base, bits) in self.leaves.range(first >> LEAF_BITS..=last >> LEAF_BITS) {
            for (w, &word) in bits.iter().enumerate() {
                let mut b = word;
                while b != 0 {
                    let i = b.trailing_zeros() as u64;
                    b &= b - 1;
                    let vpn = (base << LEAF_BITS) + w as u64 * 64 + i;
                    if vpn >= first && vpn <= last {
                        out.push(vpn);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut d = DirtySet::default();
        d.insert(5);
        d.insert(5);
        d.insert(513);
        assert_eq!(d.len(), 2);
        assert_eq!(d.vpns_in(0, u64::MAX - 1), vec![5, 513]);
        d.remove(5);
        d.remove(5);
        assert_eq!(d.len(), 1);
        d.remove(513);
        assert_eq!(d.len(), 0);
        assert!(d.leaves.is_empty(), "empty bitmaps must be dropped");
    }

    #[test]
    fn assign_and_clear_leaf_adjust_count() {
        let mut d = DirtySet::default();
        d.insert(3);
        let mut bits = [0u64; WORDS];
        bits[0] = 0b1010;
        d.assign_leaf(0, &bits);
        assert_eq!(d.len(), 2);
        assert_eq!(d.vpns_in(0, 511), vec![1, 3]);
        d.assign_leaf(0, &[0; WORDS]);
        assert_eq!(d.len(), 0);
        d.insert(700);
        d.clear_leaf(1);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn range_filters_within_leaf() {
        let mut d = DirtySet::default();
        for vpn in [0, 100, 511, 512, 1024] {
            d.insert(vpn);
        }
        assert_eq!(d.vpns_in(100, 512), vec![100, 511, 512]);
        assert_eq!(d.vpns_in(513, 1023), Vec::<u64>::new());
    }
}
