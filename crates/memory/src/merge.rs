//! Three-way, byte-granularity merge with conflict detection — the
//! kernel's `Merge` option on `Get` (§3.2).

use std::sync::Arc;

use crate::page::{PAGE_SIZE, zero_frame};
use crate::{AddressSpace, MemError, Perm, Region, Result};

/// How the merge treats a byte changed on *both* sides since the
/// snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// The paper's semantics: any byte changed in both the child and
    /// the parent since the snapshot is a conflict, even if both sides
    /// wrote the same value. Conflicts are programming errors, like
    /// divide-by-zero.
    #[default]
    Strict,
    /// A relaxed ablation: both sides writing the *same* value is
    /// benign; only divergent double-writes conflict.
    BenignSameValue,
    /// No conflicts: the child's changed bytes always overwrite the
    /// parent's. This is *not* the private-workspace model — it is the
    /// last-writer-wins semantics the deterministic scheduler (§4.5)
    /// uses to emulate a conventional memory model, where races
    /// resolve arbitrarily-but-repeatably instead of being reported.
    ChildWins,
}

/// Detailed description of a detected write/write conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MergeConflict {
    /// Lowest conflicting virtual address.
    pub addr: u64,
    /// Value of the byte in the reference snapshot.
    pub base: u8,
    /// Value the child wrote.
    pub child: u8,
    /// Value the parent wrote.
    pub parent: u8,
}

/// Operation counts from a merge, consumed by the kernel's cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MergeStats {
    /// Pages examined in the merge range.
    pub pages_scanned: u64,
    /// Pages skipped in O(1) because child and snapshot share the frame.
    pub pages_unchanged: u64,
    /// Pages that required a byte-level diff.
    pub pages_diffed: u64,
    /// Bytes compared during diffing.
    pub bytes_compared: u64,
    /// Bytes copied into the parent.
    pub bytes_copied: u64,
    /// Pages newly mapped into the parent by the merge.
    pub pages_mapped: u64,
}

impl MergeStats {
    /// Accumulates another stats record into `self`.
    pub fn accumulate(&mut self, other: &MergeStats) {
        self.pages_scanned += other.pages_scanned;
        self.pages_unchanged += other.pages_unchanged;
        self.pages_diffed += other.pages_diffed;
        self.bytes_compared += other.bytes_compared;
        self.bytes_copied += other.bytes_copied;
        self.pages_mapped += other.pages_mapped;
    }
}

impl AddressSpace {
    /// Merges the child's changes since `snap` into `self` over the
    /// page-aligned `region`.
    ///
    /// For every byte in the region, with `base` the snapshot value,
    /// `c` the child's current value and `p` the parent's (self's)
    /// current value:
    ///
    /// * `c == base`: the child did not touch the byte — the parent's
    ///   value stands (the child never sees a torn mix, §2.2);
    /// * `c != base && p == base`: the child's write propagates;
    /// * `c != base && p != base`: a write/write conflict, reported as
    ///   [`MemError::Conflict`] (under
    ///   [`ConflictPolicy::BenignSameValue`], `c == p` is allowed).
    ///
    /// Pages whose child frame is pointer-identical to the snapshot
    /// frame are skipped without touching their bytes. Pages present in
    /// the child but absent from both snapshot and parent are mapped
    /// into the parent (the child extended the shared region). Pages
    /// the merge does not mention are left untouched in the parent.
    ///
    /// On conflict the parent is left unmodified (the merge validates
    /// before it writes), so a failed join can be reported and
    /// re-examined — the kernel treats it as a child exception.
    pub fn merge_from(
        &mut self,
        child: &AddressSpace,
        snap: &AddressSpace,
        region: Region,
        policy: ConflictPolicy,
    ) -> Result<MergeStats> {
        match self.try_merge_from(child, snap, region, policy) {
            Ok((stats, None)) => Ok(stats),
            Ok((_, Some(conflict))) => Err(MemError::Conflict {
                addr: conflict.addr,
            }),
            Err(e) => Err(e),
        }
    }

    /// Like [`merge_from`](AddressSpace::merge_from) but returns the
    /// full [`MergeConflict`] detail instead of collapsing it into an
    /// error, and never applies a conflicting merge.
    pub fn try_merge_from(
        &mut self,
        child: &AddressSpace,
        snap: &AddressSpace,
        region: Region,
        policy: ConflictPolicy,
    ) -> Result<(MergeStats, Option<MergeConflict>)> {
        region.check_page_aligned()?;
        let mut stats = MergeStats::default();

        // Pass 1: find changed pages and detect conflicts without
        // mutating the parent.
        let mut dirty: Vec<u64> = Vec::new();
        let mut vpns = child.vpns_in(region);
        // Pages the child unmapped are not propagated (documented
        // limitation; the runtime never unmaps inside shared regions).
        vpns.dedup();
        let zero = zero_frame();
        let mut first_conflict: Option<MergeConflict> = None;
        for vpn in vpns {
            stats.pages_scanned += 1;
            let (child_frame, _) = child.entry_frame(vpn).expect("vpn from child map");
            let snap_frame = snap.entry_frame(vpn).map(|(f, _)| f);
            // O(1) unchanged test via frame identity.
            if let Some(sf) = snap_frame {
                if Arc::ptr_eq(child_frame, sf) {
                    stats.pages_unchanged += 1;
                    continue;
                }
            } else if Arc::ptr_eq(child_frame, &zero) {
                // Newly mapped but still the shared zero frame: treat a
                // zero page against a missing snapshot page as
                // unchanged (both read as zeroes).
                stats.pages_unchanged += 1;
                continue;
            }
            stats.pages_diffed += 1;
            stats.bytes_compared += PAGE_SIZE as u64;
            let base_bytes = snap_frame.map(|f| f.bytes());
            let child_bytes = child_frame.bytes();
            let parent_frame = self.entry_frame(vpn).map(|(f, _)| f.clone());
            let parent_bytes = parent_frame.as_ref().map(|f| f.bytes());
            let mut page_dirty = false;
            for i in 0..PAGE_SIZE {
                let base = base_bytes.map_or(0, |b| b[i]);
                let c = child_bytes[i];
                if c == base {
                    continue;
                }
                page_dirty = true;
                if policy == ConflictPolicy::ChildWins {
                    continue;
                }
                let p = parent_bytes.map_or(base, |b| b[i]);
                if p != base {
                    let benign = policy == ConflictPolicy::BenignSameValue && p == c;
                    if !benign && first_conflict.is_none() {
                        first_conflict = Some(MergeConflict {
                            addr: (vpn << crate::PAGE_SHIFT) + i as u64,
                            base,
                            child: c,
                            parent: p,
                        });
                    }
                }
            }
            if page_dirty {
                dirty.push(vpn);
            }
        }
        if let Some(conflict) = first_conflict {
            return Ok((stats, Some(conflict)));
        }

        // Pass 2: apply child bytes that differ from the snapshot.
        for vpn in dirty {
            let (child_frame, child_perm) = child.entry_frame(vpn).expect("still mapped");
            let child_frame = child_frame.clone();
            let snap_frame = snap.entry_frame(vpn).map(|(f, _)| f.clone());
            if self.entry_frame(vpn).is_none() {
                // The child created this page: adopt its frame
                // wholesale (copy-on-write share).
                stats.pages_mapped += 1;
                stats.bytes_copied += PAGE_SIZE as u64;
                self.install_frame(vpn, child_frame, child_perm.union(Perm::RW));
                continue;
            }
            let frame = self.frame_mut(vpn).expect("checked above");
            let dst = frame.bytes_mut();
            let child_bytes = child_frame.bytes();
            match snap_frame {
                Some(sf) => {
                    let base = sf.bytes();
                    for i in 0..PAGE_SIZE {
                        if child_bytes[i] != base[i] {
                            dst[i] = child_bytes[i];
                            stats.bytes_copied += 1;
                        }
                    }
                }
                None => {
                    for i in 0..PAGE_SIZE {
                        if child_bytes[i] != 0 {
                            dst[i] = child_bytes[i];
                            stats.bytes_copied += 1;
                        }
                    }
                }
            }
        }
        Ok((stats, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddressSpace, AddressSpace, AddressSpace) {
        // Parent with a 4-page RW region; child forked from it; snapshot.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x5000), Perm::RW)
            .unwrap();
        parent.write(0x1000, b"base").unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x5000), 0x1000)
            .unwrap();
        let snap = child.snapshot();
        (parent, child, snap)
    }

    const R: Region = Region {
        start: 0x1000,
        end: 0x5000,
    };

    #[test]
    fn disjoint_writes_union() {
        let (mut parent, mut child, snap) = setup();
        child.write(0x2000, b"from-child").unwrap();
        parent.write(0x3000, b"from-parent").unwrap();
        let stats = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_vec(0x2000, 10).unwrap(), b"from-child");
        assert_eq!(parent.read_vec(0x3000, 11).unwrap(), b"from-parent");
        assert_eq!(stats.bytes_copied, 10);
        // Pages 1 (untouched), 3 (parent-only) and 4 unchanged in child.
        assert_eq!(stats.pages_unchanged, 3);
        assert_eq!(stats.pages_diffed, 1);
    }

    #[test]
    fn same_page_disjoint_bytes_union() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2000, 11).unwrap();
        parent.write_u8(0x2001, 22).unwrap();
        parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_u8(0x2000).unwrap(), 11);
        assert_eq!(parent.read_u8(0x2001).unwrap(), 22);
    }

    #[test]
    fn child_untouched_byte_never_overwrites_parent() {
        let (mut parent, mut child, snap) = setup();
        // Child dirties its page (so it is diffed) but not this byte.
        child.write_u8(0x1800, 5).unwrap();
        parent.write(0x1000, b"newp").unwrap();
        parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_vec(0x1000, 4).unwrap(), b"newp");
        assert_eq!(parent.read_u8(0x1800).unwrap(), 5);
    }

    #[test]
    fn strict_conflict_detected_and_parent_untouched() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2004, 1).unwrap();
        parent.write_u8(0x2004, 2).unwrap();
        child.write_u8(0x4000, 9).unwrap(); // Non-conflicting change.
        let err = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap_err();
        assert_eq!(err, MemError::Conflict { addr: 0x2004 });
        // Merge validates before writing: nothing propagated.
        assert_eq!(parent.read_u8(0x2004).unwrap(), 2);
        assert_eq!(parent.read_u8(0x4000).unwrap(), 0);
    }

    #[test]
    fn conflict_detail_reported() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2004, 1).unwrap();
        parent.write_u8(0x2004, 2).unwrap();
        let (_, conflict) = parent
            .try_merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        let c = conflict.expect("conflict expected");
        assert_eq!(c.addr, 0x2004);
        assert_eq!(c.base, 0);
        assert_eq!(c.child, 1);
        assert_eq!(c.parent, 2);
    }

    #[test]
    fn same_value_conflicts_under_strict_but_not_benign() {
        let (parent, mut child, snap) = setup();
        child.write_u8(0x2004, 7).unwrap();
        let mut p1 = parent.clone();
        p1.write_u8(0x2004, 7).unwrap();
        let mut p2 = p1.clone();
        assert!(matches!(
            p1.merge_from(&child, &snap, R, ConflictPolicy::Strict),
            Err(MemError::Conflict { addr: 0x2004 })
        ));
        p2.merge_from(&child, &snap, R, ConflictPolicy::BenignSameValue)
            .unwrap();
        assert_eq!(p2.read_u8(0x2004).unwrap(), 7);
    }

    #[test]
    fn unchanged_pages_skipped_in_o1() {
        let (mut parent, child, snap) = setup();
        let stats = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(stats.pages_scanned, 4);
        assert_eq!(stats.pages_unchanged, 4);
        assert_eq!(stats.bytes_compared, 0);
        assert_eq!(stats.bytes_copied, 0);
    }

    #[test]
    fn child_created_page_adopted() {
        let (mut parent, mut child, _) = setup();
        // Child maps and fills a page the parent and snapshot lack.
        child
            .map_zero(Region::new(0x6000, 0x7000), Perm::RW)
            .unwrap();
        child.write(0x6000, b"grown").unwrap();
        let snap2 = AddressSpace::new(); // Empty snapshot for that range.
        let stats = parent
            .merge_from(
                &child,
                &snap2,
                Region::new(0x6000, 0x7000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(stats.pages_mapped, 1);
        assert_eq!(parent.read_vec(0x6000, 5).unwrap(), b"grown");
    }

    #[test]
    fn merge_respects_region_bounds() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x1000, 1).unwrap();
        child.write_u8(0x4000, 2).unwrap();
        // Merge only the first page.
        parent
            .merge_from(
                &child,
                &snap,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(parent.read_u8(0x1000).unwrap(), 1);
        assert_eq!(parent.read_u8(0x4000).unwrap(), 0);
    }

    #[test]
    fn sequential_merges_of_two_children() {
        // The fork/join pattern: two children fork from the same state,
        // write disjoint slots, parent merges both.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        c1.write_u64(0x1000, 111).unwrap();
        c2.write_u64(0x1008, 222).unwrap();
        parent
            .merge_from(
                &c1,
                &s1,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        parent
            .merge_from(
                &c2,
                &s2,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(parent.read_u64(0x1000).unwrap(), 111);
        assert_eq!(parent.read_u64(0x1008).unwrap(), 222);
    }

    #[test]
    fn two_children_same_byte_conflict_at_second_join() {
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        c1.write_u64(0x1000, 111).unwrap();
        c2.write_u64(0x1000, 222).unwrap();
        parent
            .merge_from(
                &c1,
                &s1,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        // Second join sees the conflict — exactly the paper's actor
        // array example (§2.2).
        assert!(matches!(
            parent.merge_from(
                &c2,
                &s2,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict
            ),
            Err(MemError::Conflict { addr: 0x1000 })
        ));
    }

    #[test]
    fn swap_example_is_race_free() {
        // The paper's `x = y || y = x` example (§2.2): both children
        // read their private snapshots, so the merge swaps the values.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let x = 0x1000u64;
        let y = 0x1008u64;
        parent.write_u64(x, 1).unwrap();
        parent.write_u64(y, 2).unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        // Child 1: x = y. Child 2: y = x.
        let v = c1.read_u64(y).unwrap();
        c1.write_u64(x, v).unwrap();
        let v = c2.read_u64(x).unwrap();
        c2.write_u64(y, v).unwrap();
        let r = Region::new(0x1000, 0x2000);
        parent
            .merge_from(&c1, &s1, r, ConflictPolicy::Strict)
            .unwrap();
        parent
            .merge_from(&c2, &s2, r, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_u64(x).unwrap(), 2);
        assert_eq!(parent.read_u64(y).unwrap(), 1);
    }
}
