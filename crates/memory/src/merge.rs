//! Three-way, byte-granularity merge with conflict detection — the
//! kernel's `Merge` option on `Get` (§3.2).
//!
//! The engine is optimized two ways over the naive formulation (which
//! survives as [`crate::reference::merge_from_reference`], the
//! differential-testing oracle):
//!
//! * **Dirty write-set**: instead of walking every mapped page in the
//!   merge region, pass 1 visits only the child's dirty VPNs — pages
//!   the child actually touched since its snapshot (see
//!   [`AddressSpace::snapshot`] for the invariant). Clean pages are
//!   never examined at all and are counted in
//!   [`MergeStats::pages_skipped_clean`].
//! * **Word-chunked diffing**: both conflict detection and apply
//!   compare 8 bytes per step via `u64::from_ne_bytes`, descending to
//!   byte granularity only inside a mismatching word. `words_compared`
//!   counts chunk compares; `bytes_compared` counts only the bytes
//!   examined individually — together they are the work actually done.
//! * **Leaf-granular subtree skipping**: when child and snapshot still
//!   hold the same structurally-shared page-table leaf
//!   ([`crate::PAGES_PER_LEAF`] pages), every candidate inside it is
//!   unchanged by construction — one `Arc` pointer compare covers the
//!   whole 512-page block (DESIGN.md §5).

use std::sync::Arc;

use crate::page::{Frame, PAGE_SIZE, zero_frame};
use crate::{AddressSpace, MemError, Perm, Region, Result};

/// Bytes per diff chunk: one `u64` comparison.
pub(crate) const CHUNK: usize = 8;

/// How the merge treats a byte changed on *both* sides since the
/// snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// The paper's semantics: any byte changed in both the child and
    /// the parent since the snapshot is a conflict, even if both sides
    /// wrote the same value. Conflicts are programming errors, like
    /// divide-by-zero.
    #[default]
    Strict,
    /// A relaxed ablation: both sides writing the *same* value is
    /// benign; only divergent double-writes conflict.
    BenignSameValue,
    /// No conflicts: the child's changed bytes always overwrite the
    /// parent's. This is *not* the private-workspace model — it is the
    /// last-writer-wins semantics the deterministic scheduler (§4.5)
    /// uses to emulate a conventional memory model, where races
    /// resolve arbitrarily-but-repeatably instead of being reported.
    ChildWins,
}

/// Detailed description of a detected write/write conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MergeConflict {
    /// Lowest conflicting virtual address.
    pub addr: u64,
    /// Value of the byte in the reference snapshot.
    pub base: u8,
    /// Value the child wrote.
    pub child: u8,
    /// Value the parent wrote.
    pub parent: u8,
}

/// Operation counts from a merge, consumed by the kernel's cost model.
///
/// All counters report work *actually performed*: a page skipped via
/// the dirty set or frame identity contributes nothing to the compare
/// and copy counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MergeStats {
    /// Candidate pages examined (dirty pages mapped in the region).
    pub pages_scanned: u64,
    /// Mapped pages in the region skipped without examination because
    /// they were not in the child's dirty write-set.
    pub pages_skipped_clean: u64,
    /// Examined pages skipped in O(1) because child and snapshot share
    /// the frame (or a fresh zero page matches a missing snapshot page).
    pub pages_unchanged: u64,
    /// Candidate pages skipped because child and snapshot still share
    /// the whole structurally-shared page-table leaf — one pointer
    /// compare per [`crate::PAGES_PER_LEAF`]-page block, so these are
    /// free in the cost model (no per-page scan charge), unlike
    /// `pages_unchanged`, whose frame-identity test is per-page work.
    pub pages_skipped_shared: u64,
    /// Examined pages skipped in O(1) because the parent already holds
    /// the child's exact frame (self-merge of a previously adopted
    /// page); only possible under non-strict policies.
    pub pages_aliased: u64,
    /// Pages that required a word/byte-level diff.
    pub pages_diffed: u64,
    /// 8-byte chunk comparisons performed during diffing and apply.
    pub words_compared: u64,
    /// Byte comparisons performed inside mismatching words.
    pub bytes_compared: u64,
    /// Bytes copied into the parent (a wholesale page adoption counts
    /// as a full page).
    pub bytes_copied: u64,
    /// Pages newly mapped into the parent by the merge.
    pub pages_mapped: u64,
}

impl MergeStats {
    /// Accumulates another stats record into `self`.
    pub fn accumulate(&mut self, other: &MergeStats) {
        self.pages_scanned += other.pages_scanned;
        self.pages_skipped_clean += other.pages_skipped_clean;
        self.pages_unchanged += other.pages_unchanged;
        self.pages_skipped_shared += other.pages_skipped_shared;
        self.pages_aliased += other.pages_aliased;
        self.pages_diffed += other.pages_diffed;
        self.words_compared += other.words_compared;
        self.bytes_compared += other.bytes_compared;
        self.bytes_copied += other.bytes_copied;
        self.pages_mapped += other.pages_mapped;
    }
}

/// Reads the `u64` chunk at byte offset `w` of a page, or 0 for an
/// absent (all-zero) base page.
#[inline]
fn word_at(bytes: Option<&[u8; PAGE_SIZE]>, w: usize) -> u64 {
    match bytes {
        Some(b) => u64::from_ne_bytes(b[w..w + CHUNK].try_into().expect("chunk of 8")),
        None => 0,
    }
}

impl AddressSpace {
    /// Merges the child's changes since `snap` into `self` over the
    /// page-aligned `region`.
    ///
    /// For every byte in the region, with `base` the snapshot value,
    /// `c` the child's current value and `p` the parent's (self's)
    /// current value:
    ///
    /// * `c == base`: the child did not touch the byte — the parent's
    ///   value stands (the child never sees a torn mix, §2.2);
    /// * `c != base && p == base`: the child's write propagates;
    /// * `c != base && p != base`: a write/write conflict, reported as
    ///   [`MemError::Conflict`] (under
    ///   [`ConflictPolicy::BenignSameValue`], `c == p` is allowed).
    ///
    /// Only pages in the child's dirty write-set are examined; within
    /// them, pages whose child frame is pointer-identical to the
    /// snapshot frame are skipped without touching their bytes. Pages
    /// present in the child but absent from both snapshot and parent
    /// are mapped into the parent (the child extended the shared
    /// region). Pages the merge does not mention are left untouched in
    /// the parent.
    ///
    /// **Dirty-set precondition**: `snap` must be a snapshot of `child`
    /// taken (and left unmodified) at or after the child's most recent
    /// [`snapshot`](AddressSpace::snapshot) call, which is when the
    /// write-set was last cleared. The kernel's `Snap` option satisfies
    /// this by construction. See DESIGN.md §3.
    ///
    /// On conflict the parent is left unmodified (the merge validates
    /// before it writes), so a failed join can be reported and
    /// re-examined — the kernel treats it as a child exception. The
    /// same validate-before-write rule applies to permissions: if any
    /// page that would receive bytes is mapped read-only in the
    /// parent, the merge fails with [`MemError::PermDenied`] without
    /// modifying anything. A page whose parent frame *is* the child
    /// frame (adopted at an earlier join) is already merged: under
    /// non-strict policies it receives no writes and therefore needs
    /// no write permission.
    pub fn merge_from(
        &mut self,
        child: &AddressSpace,
        snap: &AddressSpace,
        region: Region,
        policy: ConflictPolicy,
    ) -> Result<MergeStats> {
        match self.try_merge_from(child, snap, region, policy) {
            Ok((stats, None)) => Ok(stats),
            Ok((_, Some(conflict))) => Err(MemError::Conflict {
                addr: conflict.addr,
            }),
            Err(e) => Err(e),
        }
    }

    /// Like [`merge_from`](AddressSpace::merge_from) but returns the
    /// full [`MergeConflict`] detail instead of collapsing it into an
    /// error, and never applies a conflicting merge.
    ///
    /// On a conflict the scan stops at the lowest conflicting address
    /// (pages and bytes are visited in ascending order), so the stats
    /// reflect only the work done up to detection.
    pub fn try_merge_from(
        &mut self,
        child: &AddressSpace,
        snap: &AddressSpace,
        region: Region,
        policy: ConflictPolicy,
    ) -> Result<(MergeStats, Option<MergeConflict>)> {
        region.check_page_aligned()?;
        let mut stats = MergeStats::default();
        let zero = zero_frame();
        let mapped_in_region = child.mapped_pages_in(region);

        // Candidate set: dirty pages still mapped in the region
        // (dirtied-then-unmapped pages are not propagated — documented
        // limitation; the runtime never unmaps inside shared regions).
        // `pages_skipped_clean` is exact on every exit path, including
        // an early conflict return.
        let mut candidates = child.dirty_vpns_in(region);
        candidates.retain(|&vpn| child.entry_frame(vpn).is_some());
        stats.pages_skipped_clean = mapped_in_region.saturating_sub(candidates.len() as u64);

        // Pass 1: diff the child's dirty pages against the snapshot,
        // detecting conflicts and permission violations without
        // mutating the parent.
        let mut apply: Vec<u64> = Vec::new();
        // Leaf-granular unchanged-subtree skip: one pointer compare per
        // 512-page leaf transition. A structurally-shared leaf means
        // every page it covers is frame-identical to the snapshot, so
        // candidates inside it are unchanged without touching their
        // entries (DESIGN.md §5 — this compounds the §3 dirty-set skip
        // whenever the dirty marks over-approximate, e.g. after a
        // wholesale virtual copy).
        let leaf_shift = crate::PAGES_PER_LEAF.trailing_zeros();
        let mut cur_leaf: Option<(u64, bool)> = None;
        for vpn in candidates {
            let leaf = vpn >> leaf_shift;
            let leaf_shared = match cur_leaf {
                Some((l, shared)) if l == leaf => shared,
                _ => {
                    let shared = child.shares_leaf_with(snap, vpn);
                    cur_leaf = Some((leaf, shared));
                    shared
                }
            };
            if leaf_shared {
                // Free in the cost model: the work here is one pointer
                // compare per leaf transition, not per page — counting
                // these as scanned would charge page_scan_ps for work
                // the structural sharing eliminated.
                stats.pages_skipped_shared += 1;
                continue;
            }
            let (child_frame, _) = child.entry_frame(vpn).expect("retained mapped");
            stats.pages_scanned += 1;
            let snap_frame = snap.entry_frame(vpn).map(|(f, _)| f);
            // O(1) unchanged test via frame identity. A newly mapped
            // page still aliasing the shared zero frame against a
            // missing snapshot page is unchanged too (both read as
            // zeroes).
            match snap_frame {
                Some(sf) if Arc::ptr_eq(child_frame, sf) => {
                    stats.pages_unchanged += 1;
                    continue;
                }
                None if Arc::ptr_eq(child_frame, &zero) => {
                    stats.pages_unchanged += 1;
                    continue;
                }
                _ => {}
            }
            let parent = self.entry_frame(vpn);
            let parent_alias = parent.is_some_and(|(pf, _)| Arc::ptr_eq(pf, child_frame));
            if parent_alias && policy != ConflictPolicy::Strict {
                // The parent already holds exactly the child's frame —
                // a page it adopted at an earlier join. Every parent
                // byte equals the child byte, so BenignSameValue and
                // ChildWins cannot conflict and the page receives no
                // writes: skip in O(1) with no bytes examined and no
                // write permission required. This is a semantic rule,
                // not just a shortcut — the reference oracle applies
                // the same page-level test. (Strict still scans: a
                // double-write of the same value is a conflict there.)
                stats.pages_aliased += 1;
                continue;
            }
            stats.pages_diffed += 1;
            let child_bytes = child_frame.bytes();
            let base_bytes = snap_frame.map(|f| f.bytes());
            let parent_bytes = parent.map(|(f, _)| f.bytes());
            let parent_perm = parent.map(|(_, p)| p);
            let mut page_dirty = false;
            let mut conflict: Option<MergeConflict> = None;
            'page: for w in (0..PAGE_SIZE).step_by(CHUNK) {
                stats.words_compared += 1;
                if word_at(Some(child_bytes), w) == word_at(base_bytes, w) {
                    continue;
                }
                for i in w..w + CHUNK {
                    stats.bytes_compared += 1;
                    let base = base_bytes.map_or(0, |b| b[i]);
                    let c = child_bytes[i];
                    if c == base {
                        continue;
                    }
                    page_dirty = true;
                    if policy == ConflictPolicy::ChildWins {
                        // Nothing further to learn from this page:
                        // no conflicts exist, and pass 2 re-diffs.
                        break 'page;
                    }
                    // Aliased + Strict: the parent byte is the child
                    // byte by construction.
                    let p = if parent_alias {
                        c
                    } else {
                        parent_bytes.map_or(base, |b| b[i])
                    };
                    if p != base {
                        let benign = policy == ConflictPolicy::BenignSameValue && p == c;
                        if !benign {
                            conflict = Some(MergeConflict {
                                addr: (vpn << crate::PAGE_SHIFT) + i as u64,
                                base,
                                child: c,
                                parent: p,
                            });
                            break 'page;
                        }
                    }
                }
            }
            if let Some(c) = conflict {
                return Ok((stats, Some(c)));
            }
            if page_dirty {
                // Validate-before-write: a page about to receive bytes
                // must be writable in the parent (absent pages are
                // adopted; aliased pages cannot reach here — non-strict
                // skipped them above, and under Strict a dirty aliased
                // page already returned a conflict).
                if let Some(p) = parent_perm {
                    if !p.allows(Perm::W) {
                        return Err(MemError::PermDenied {
                            addr: vpn << crate::PAGE_SHIFT,
                            need: Perm::W,
                        });
                    }
                }
                apply.push(vpn);
            }
        }

        // Pass 2: apply child bytes that differ from the snapshot.
        for vpn in apply {
            let (child_frame, child_perm) = child.entry_frame(vpn).expect("still mapped");
            let child_frame = child_frame.clone();
            let snap_frame = snap.entry_frame(vpn).map(|(f, _)| f.clone());
            if self.entry_frame(vpn).is_none() {
                // The child created this page: adopt its frame
                // wholesale (copy-on-write share).
                stats.pages_mapped += 1;
                stats.bytes_copied += PAGE_SIZE as u64;
                self.install_frame(vpn, child_frame, child_perm.union(Perm::RW));
                continue;
            }
            let frame = self.frame_mut(vpn).expect("checked above");
            let dst = frame.bytes_mut();
            let child_bytes = child_frame.bytes();
            let base_bytes: Option<&[u8; PAGE_SIZE]> = snap_frame.as_deref().map(Frame::bytes);
            for w in (0..PAGE_SIZE).step_by(CHUNK) {
                stats.words_compared += 1;
                if word_at(Some(child_bytes), w) == word_at(base_bytes, w) {
                    continue;
                }
                for i in w..w + CHUNK {
                    stats.bytes_compared += 1;
                    let base = base_bytes.map_or(0, |b| b[i]);
                    let c = child_bytes[i];
                    if c != base {
                        dst[i] = c;
                        stats.bytes_copied += 1;
                    }
                }
            }
        }
        Ok((stats, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddressSpace, AddressSpace, AddressSpace) {
        // Parent with a 4-page RW region; child forked from it; snapshot.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x5000), Perm::RW)
            .unwrap();
        parent.write(0x1000, b"base").unwrap();
        let mut child = AddressSpace::new();
        child
            .copy_from(&parent, Region::new(0x1000, 0x5000), 0x1000)
            .unwrap();
        let snap = child.snapshot();
        (parent, child, snap)
    }

    const R: Region = Region {
        start: 0x1000,
        end: 0x5000,
    };

    #[test]
    fn disjoint_writes_union() {
        let (mut parent, mut child, snap) = setup();
        child.write(0x2000, b"from-child").unwrap();
        parent.write(0x3000, b"from-parent").unwrap();
        let stats = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_vec(0x2000, 10).unwrap(), b"from-child");
        assert_eq!(parent.read_vec(0x3000, 11).unwrap(), b"from-parent");
        assert_eq!(stats.bytes_copied, 10);
        // Only the child's one dirty page is even examined; the other
        // three mapped pages are skipped via the dirty set.
        assert_eq!(stats.pages_scanned, 1);
        assert_eq!(stats.pages_skipped_clean, 3);
        assert_eq!(stats.pages_diffed, 1);
    }

    #[test]
    fn same_page_disjoint_bytes_union() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2000, 11).unwrap();
        parent.write_u8(0x2001, 22).unwrap();
        parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_u8(0x2000).unwrap(), 11);
        assert_eq!(parent.read_u8(0x2001).unwrap(), 22);
    }

    #[test]
    fn child_untouched_byte_never_overwrites_parent() {
        let (mut parent, mut child, snap) = setup();
        // Child dirties its page (so it is diffed) but not this byte.
        child.write_u8(0x1800, 5).unwrap();
        parent.write(0x1000, b"newp").unwrap();
        parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_vec(0x1000, 4).unwrap(), b"newp");
        assert_eq!(parent.read_u8(0x1800).unwrap(), 5);
    }

    #[test]
    fn strict_conflict_detected_and_parent_untouched() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2004, 1).unwrap();
        parent.write_u8(0x2004, 2).unwrap();
        child.write_u8(0x4000, 9).unwrap(); // Non-conflicting change.
        let err = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap_err();
        assert_eq!(err, MemError::Conflict { addr: 0x2004 });
        // Merge validates before writing: nothing propagated.
        assert_eq!(parent.read_u8(0x2004).unwrap(), 2);
        assert_eq!(parent.read_u8(0x4000).unwrap(), 0);
    }

    #[test]
    fn conflict_detail_reported() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2004, 1).unwrap();
        parent.write_u8(0x2004, 2).unwrap();
        let (_, conflict) = parent
            .try_merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        let c = conflict.expect("conflict expected");
        assert_eq!(c.addr, 0x2004);
        assert_eq!(c.base, 0);
        assert_eq!(c.child, 1);
        assert_eq!(c.parent, 2);
    }

    #[test]
    fn same_value_conflicts_under_strict_but_not_benign() {
        let (parent, mut child, snap) = setup();
        child.write_u8(0x2004, 7).unwrap();
        let mut p1 = parent.clone();
        p1.write_u8(0x2004, 7).unwrap();
        let mut p2 = p1.clone();
        assert!(matches!(
            p1.merge_from(&child, &snap, R, ConflictPolicy::Strict),
            Err(MemError::Conflict { addr: 0x2004 })
        ));
        p2.merge_from(&child, &snap, R, ConflictPolicy::BenignSameValue)
            .unwrap();
        assert_eq!(p2.read_u8(0x2004).unwrap(), 7);
    }

    #[test]
    fn clean_child_merge_examines_nothing() {
        let (mut parent, child, snap) = setup();
        let stats = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        // With an empty dirty set the merge does not even look at the
        // child's pages: everything is skipped clean.
        assert_eq!(stats.pages_scanned, 0);
        assert_eq!(stats.pages_skipped_clean, 4);
        assert_eq!(stats.words_compared, 0);
        assert_eq!(stats.bytes_compared, 0);
        assert_eq!(stats.bytes_copied, 0);
    }

    #[test]
    fn child_created_page_adopted() {
        let (mut parent, mut child, _) = setup();
        // Child maps and fills a page the parent and snapshot lack.
        child
            .map_zero(Region::new(0x6000, 0x7000), Perm::RW)
            .unwrap();
        child.write(0x6000, b"grown").unwrap();
        let snap2 = AddressSpace::new(); // Empty snapshot for that range.
        let stats = parent
            .merge_from(
                &child,
                &snap2,
                Region::new(0x6000, 0x7000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(stats.pages_mapped, 1);
        assert_eq!(parent.read_vec(0x6000, 5).unwrap(), b"grown");
    }

    #[test]
    fn zero_page_mapped_by_child_is_unchanged() {
        let (mut parent, mut child, _) = setup();
        // Child maps fresh pages but never writes them: they still
        // alias the global zero frame and merge as unchanged.
        child
            .map_zero(Region::new(0x6000, 0x8000), Perm::RW)
            .unwrap();
        let snap2 = AddressSpace::new();
        let stats = parent
            .merge_from(
                &child,
                &snap2,
                Region::new(0x6000, 0x8000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(stats.pages_scanned, 2);
        assert_eq!(stats.pages_unchanged, 2);
        assert_eq!(stats.words_compared, 0);
        assert_eq!(stats.pages_mapped, 0);
    }

    #[test]
    fn merge_respects_region_bounds() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x1000, 1).unwrap();
        child.write_u8(0x4000, 2).unwrap();
        // Merge only the first page.
        parent
            .merge_from(
                &child,
                &snap,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(parent.read_u8(0x1000).unwrap(), 1);
        assert_eq!(parent.read_u8(0x4000).unwrap(), 0);
    }

    #[test]
    fn sequential_merges_of_two_children() {
        // The fork/join pattern: two children fork from the same state,
        // write disjoint slots, parent merges both.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        c1.write_u64(0x1000, 111).unwrap();
        c2.write_u64(0x1008, 222).unwrap();
        parent
            .merge_from(
                &c1,
                &s1,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        parent
            .merge_from(
                &c2,
                &s2,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        assert_eq!(parent.read_u64(0x1000).unwrap(), 111);
        assert_eq!(parent.read_u64(0x1008).unwrap(), 222);
    }

    #[test]
    fn two_children_same_byte_conflict_at_second_join() {
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        c1.write_u64(0x1000, 111).unwrap();
        c2.write_u64(0x1000, 222).unwrap();
        parent
            .merge_from(
                &c1,
                &s1,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict,
            )
            .unwrap();
        // Second join sees the conflict — exactly the paper's actor
        // array example (§2.2).
        assert!(matches!(
            parent.merge_from(
                &c2,
                &s2,
                Region::new(0x1000, 0x2000),
                ConflictPolicy::Strict
            ),
            Err(MemError::Conflict { addr: 0x1000 })
        ));
    }

    #[test]
    fn swap_example_is_race_free() {
        // The paper's `x = y || y = x` example (§2.2): both children
        // read their private snapshots, so the merge swaps the values.
        let mut parent = AddressSpace::new();
        parent
            .map_zero(Region::new(0x1000, 0x2000), Perm::RW)
            .unwrap();
        let x = 0x1000u64;
        let y = 0x1008u64;
        parent.write_u64(x, 1).unwrap();
        parent.write_u64(y, 2).unwrap();
        let fork = |p: &AddressSpace| {
            let mut c = AddressSpace::new();
            c.copy_from(p, Region::new(0x1000, 0x2000), 0x1000).unwrap();
            let s = c.snapshot();
            (c, s)
        };
        let (mut c1, s1) = fork(&parent);
        let (mut c2, s2) = fork(&parent);
        // Child 1: x = y. Child 2: y = x.
        let v = c1.read_u64(y).unwrap();
        c1.write_u64(x, v).unwrap();
        let v = c2.read_u64(x).unwrap();
        c2.write_u64(y, v).unwrap();
        let r = Region::new(0x1000, 0x2000);
        parent
            .merge_from(&c1, &s1, r, ConflictPolicy::Strict)
            .unwrap();
        parent
            .merge_from(&c2, &s2, r, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_u64(x).unwrap(), 2);
        assert_eq!(parent.read_u64(y).unwrap(), 1);
    }

    #[test]
    fn self_merge_of_adopted_page_is_free() {
        // Merge #1 adopts a child-created page into the parent: parent
        // and child then share the frame. Re-merging the same child
        // under a non-strict policy must recognize the alias in O(1)
        // and charge no compare or copy work (the pre-optimization
        // engine charged a full page of bytes_compared here).
        let (mut parent, mut child, _) = setup();
        child
            .map_zero(Region::new(0x6000, 0x7000), Perm::RW)
            .unwrap();
        child.write(0x6000, b"grown").unwrap();
        let snap2 = AddressSpace::new();
        let r = Region::new(0x6000, 0x7000);
        parent
            .merge_from(&child, &snap2, r, ConflictPolicy::ChildWins)
            .unwrap();
        assert!(parent.same_frame(&child, 6));
        let before = parent.content_digest();
        let stats = parent
            .merge_from(&child, &snap2, r, ConflictPolicy::ChildWins)
            .unwrap();
        assert_eq!(stats.pages_aliased, 1);
        assert_eq!(stats.pages_diffed, 0);
        assert_eq!(stats.words_compared, 0);
        assert_eq!(stats.bytes_compared, 0);
        assert_eq!(stats.bytes_copied, 0);
        assert_eq!(parent.content_digest(), before);
        // The frame is still shared — the self-merge did not force a
        // copy-on-write clone of the parent page.
        assert!(parent.same_frame(&child, 6));
        // BenignSameValue skips the same way (p == c everywhere).
        let stats = parent
            .merge_from(&child, &snap2, r, ConflictPolicy::BenignSameValue)
            .unwrap();
        assert_eq!(stats.pages_aliased, 1);
        assert_eq!(stats.bytes_compared, 0);
        // An aliased page receives no writes, so it needs no write
        // permission — both engines agree (the differential suite's
        // alias rule).
        parent.set_perm(r, Perm::R).unwrap();
        let stats = parent
            .merge_from(&child, &snap2, r, ConflictPolicy::ChildWins)
            .unwrap();
        assert_eq!((stats.pages_aliased, stats.bytes_copied), (1, 0));
        let mut p_ref = parent.clone();
        let (ref_stats, ref_conflict) = crate::reference::merge_from_reference(
            &mut p_ref,
            &child,
            &snap2,
            r,
            ConflictPolicy::ChildWins,
        )
        .unwrap();
        assert!(ref_conflict.is_none());
        assert_eq!((ref_stats.pages_aliased, ref_stats.bytes_copied), (1, 0));
        assert_eq!(p_ref.content_digest(), parent.content_digest());
        parent.set_perm(r, Perm::RW).unwrap();
        // Strict still treats the double-write as a conflict.
        assert!(matches!(
            parent.merge_from(&child, &snap2, r, ConflictPolicy::Strict),
            Err(MemError::Conflict { addr: 0x6000 })
        ));
    }

    #[test]
    fn shared_leaf_candidates_skip_free() {
        // A wholesale leaf-congruent self-copy marks every page dirty
        // (sound over-approximation) while the leaf stays Arc-shared
        // with the snapshot. The merge must skip all 512 candidates
        // via the leaf pointer compare — no scan charge, no byte work.
        let ppl = crate::PAGES_PER_LEAF as u64;
        let r = Region::sized(4 * ppl * 4096, ppl * 4096);
        let mut parent = AddressSpace::new();
        parent.map_zero(r, Perm::RW).unwrap();
        let mut child = AddressSpace::new();
        child.copy_from(&parent, r, r.start).unwrap();
        let snap = child.snapshot();
        let aliased = child.clone();
        child.copy_from(&aliased, r, r.start).unwrap();
        assert_eq!(child.dirty_page_count(), ppl as usize);
        assert!(child.shares_leaf_with(&snap, 4 * ppl));
        let stats = parent
            .merge_from(&child, &snap, r, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(stats.pages_skipped_shared, ppl);
        assert_eq!(stats.pages_scanned, 0);
        assert_eq!(stats.words_compared, 0);
        assert_eq!(stats.bytes_copied, 0);
    }

    #[test]
    fn merge_into_read_only_parent_page_fails_without_writing() {
        let (mut parent, mut child, snap) = setup();
        child.write_u8(0x2004, 9).unwrap();
        parent
            .set_perm(Region::new(0x2000, 0x3000), Perm::R)
            .unwrap();
        let before = parent.content_digest();
        let err = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap_err();
        assert_eq!(
            err,
            MemError::PermDenied {
                addr: 0x2000,
                need: Perm::W
            }
        );
        assert_eq!(parent.content_digest(), before);
    }

    #[test]
    fn unaligned_byte_runs_merge_exactly() {
        // Writes that straddle word and page boundaries survive the
        // chunked diff byte-for-byte.
        let (mut parent, mut child, snap) = setup();
        let data: Vec<u8> = (1..=100).collect();
        child.write(0x1ffd, &data).unwrap(); // Spans pages 1 and 2.
        child.write_u8(0x3007, 0xEE).unwrap(); // Last byte of a word.
        let stats = parent
            .merge_from(&child, &snap, R, ConflictPolicy::Strict)
            .unwrap();
        assert_eq!(parent.read_vec(0x1ffd, 100).unwrap(), data);
        assert_eq!(parent.read_u8(0x3007).unwrap(), 0xEE);
        assert_eq!(stats.bytes_copied, 101);
    }
}
