//! Virtual memory regions (half-open address ranges).

use crate::page::{PAGE_SIZE, vpn_of};
use crate::{MemError, Result};

/// A half-open virtual address range `[start, end)`.
///
/// Kernel operations (`Copy`, `Zero`, `Snap`, `Merge`, `Perm`) operate
/// on page-aligned regions, as the hardware page tables the paper's
/// kernel manipulates do; [`Region::check_page_aligned`] enforces this.
/// Byte-granularity access inside a region goes through
/// [`crate::AddressSpace::read`] / [`crate::AddressSpace::write`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Region {
    /// First address in the region.
    pub start: u64,
    /// First address past the region.
    pub end: u64,
}

impl Region {
    /// Returns the region `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Region {
        assert!(end >= start, "region end {end:#x} below start {start:#x}");
        Region { start, end }
    }

    /// Returns the region of `len` bytes starting at `start`.
    pub fn sized(start: u64, len: u64) -> Region {
        Region::new(start, start.checked_add(len).expect("region overflows"))
    }

    /// Returns the region covering exactly one page containing `addr`.
    pub fn page_of(addr: u64) -> Region {
        let base = addr & !(PAGE_SIZE as u64 - 1);
        Region::new(base, base + PAGE_SIZE as u64)
    }

    /// Returns the region's length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns true if the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns true if `addr` lies inside the region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Returns true if the two regions share at least one address.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Errors with [`MemError::Misaligned`] unless both endpoints are
    /// page-aligned.
    pub fn check_page_aligned(&self) -> Result<()> {
        let mask = PAGE_SIZE as u64 - 1;
        if self.start & mask != 0 {
            return Err(MemError::Misaligned { addr: self.start });
        }
        if self.end & mask != 0 {
            return Err(MemError::Misaligned { addr: self.end });
        }
        Ok(())
    }

    /// Iterates the virtual page numbers the region covers (the final
    /// partial page is included).
    pub fn vpns(&self) -> impl Iterator<Item = u64> {
        let first = vpn_of(self.start);
        let last = if self.is_empty() {
            first
        } else {
            vpn_of(self.end - 1) + 1
        };
        first..last
    }

    /// Returns the number of pages the region touches.
    pub fn page_count(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            vpn_of(self.end - 1) - vpn_of(self.start) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = Region::sized(0x1000, 0x3000);
        assert_eq!(r.len(), 0x3000);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x3fff));
        assert!(!r.contains(0x4000));
        assert_eq!(r.page_count(), 3);
        assert_eq!(r.vpns().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn alignment_check() {
        assert!(Region::new(0x1000, 0x2000).check_page_aligned().is_ok());
        assert!(Region::new(0x1001, 0x2000).check_page_aligned().is_err());
        assert!(Region::new(0x1000, 0x2001).check_page_aligned().is_err());
    }

    #[test]
    fn overlap() {
        let a = Region::new(0x1000, 0x2000);
        assert!(a.overlaps(&Region::new(0x1fff, 0x3000)));
        assert!(!a.overlaps(&Region::new(0x2000, 0x3000)));
        assert!(a.overlaps(&Region::new(0, u64::MAX)));
    }

    #[test]
    fn empty_region() {
        let r = Region::new(0x1000, 0x1000);
        assert!(r.is_empty());
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.vpns().count(), 0);
    }

    #[test]
    fn page_of() {
        let r = Region::page_of(0x1234);
        assert_eq!(r.start, 0x1000);
        assert_eq!(r.end, 0x2000);
    }

    #[test]
    #[should_panic(expected = "region end")]
    fn inverted_region_panics() {
        let _ = Region::new(0x2000, 0x1000);
    }
}
