//! Paged copy-on-write virtual memory for the Determinator reproduction.
//!
//! This crate is the software analogue of the MMU mechanisms the
//! Determinator kernel (OSDI 2010) relies on:
//!
//! * an [`AddressSpace`] is a sparse map from virtual page numbers to
//!   reference-counted page frames with per-page permissions, stored as
//!   a two-level *structurally shared* table: a root spine over
//!   `Arc`-counted 512-entry leaves ([`PAGES_PER_LEAF`]), so cloning a
//!   space copies only the spine — O(leaves), not O(mapped pages) —
//!   and the first write into a shared leaf clones just that leaf
//!   (DESIGN.md §5);
//! * *virtual copy* ([`AddressSpace::copy_from`]) shares whole leaves
//!   when source and destination are leaf-congruent and frames
//!   copy-on-write otherwise, so replicating a whole file system image
//!   or a multi-megabyte heap is O(leaves + boundary pages) pointer
//!   work, not O(bytes) — [`CloneStats`] reports the split;
//! * [`AddressSpace::snapshot`] captures the reference state used by
//!   [`AddressSpace::merge_from`], which copies only bytes the child
//!   changed since the snapshot and reports a *conflict* when a byte
//!   changed on both sides — the paper's `Snap`/`Merge` kernel options
//!   (§3.2);
//! * unchanged pages are skipped in O(1) via frame pointer equality,
//!   mirroring the kernel's page-table diffing — and pages outside the
//!   child's *dirty write-set* (maintained by every mutation path,
//!   cleared by `snapshot`) are never examined at all;
//! * [`reference::merge_from_reference`] is the deliberately naive
//!   merge oracle that differential tests and benches compare the
//!   optimized engine against;
//! * [`AddressSpace::translate_read`] / [`AddressSpace::translate_write`]
//!   mint generation-validated [`Translation`]s — the entries of the
//!   VM's software TLB — that skip the page-table walk, permission
//!   check, and dirty-set bookkeeping until the next mutation
//!   invalidates them (DESIGN.md §4).
//!
//! All operations are deterministic: iteration orders are fixed
//! (B-tree), no host state is consulted, and [`MergeStats`] exposes the
//! exact operation counts that the kernel's virtual-time cost model
//! charges.
//!
//! # Examples
//!
//! ```
//! use det_memory::{AddressSpace, Perm, Region, ConflictPolicy};
//!
//! let mut parent = AddressSpace::new();
//! parent.map_zero(Region::new(0x1000, 0x3000), Perm::RW).unwrap();
//! parent.write(0x1000, &[1, 2, 3]).unwrap();
//!
//! // Fork: virtual copy plus snapshot.
//! let mut child = AddressSpace::new();
//! child.copy_from(&parent, Region::new(0x1000, 0x3000), 0x1000).unwrap();
//! let snap = child.snapshot();
//!
//! // The child works in its private replica.
//! child.write(0x2000, &[9]).unwrap();
//! parent.write(0x1003, &[7]).unwrap();
//!
//! // Join: merge the child's changes; disjoint writes both survive.
//! let stats = parent
//!     .merge_from(&child, &snap, Region::new(0x1000, 0x3000), ConflictPolicy::Strict)
//!     .unwrap();
//! assert_eq!(parent.read_u8(0x2000).unwrap(), 9);
//! assert_eq!(parent.read_u8(0x1003).unwrap(), 7);
//! // The page the child never touched was skipped via the dirty set.
//! assert!(stats.pages_skipped_clean >= 1);
//! ```

#![warn(missing_docs)]

mod delta;
mod digest;
mod dirty;
mod error;
mod merge;
mod page;
mod perm;
pub mod reference;
mod region;
mod space;
mod tracker;

pub use delta::{PageDelta, PageDeltaOp, SpaceDelta};
pub use digest::ContentDigest;
pub use error::MemError;
pub use merge::{ConflictPolicy, MergeConflict, MergeStats};
pub use page::{Frame, PAGE_SHIFT, PAGE_SIZE};
pub use perm::Perm;
pub use region::Region;
pub use space::{AddressSpace, CloneStats, LeafInfo, PAGES_PER_LEAF, PageInfo, Translation};
pub use tracker::AccessTracker;

/// Result alias for memory operations.
pub type Result<T> = std::result::Result<T, MemError>;
