//! Property-based tests of the private-workspace merge invariants.
//!
//! These check the paper's §2.2 semantics on randomly generated write
//! sets: reads see only causally prior writes, disjoint writes always
//! union, and write/write overlap is detected as a conflict
//! independently of any schedule.

use det_memory::{AddressSpace, ConflictPolicy, MemError, Perm, Region};
use proptest::prelude::*;

const BASE: u64 = 0x1000;
const LEN: u64 = 4 * 4096;
const REGION: Region = Region {
    start: BASE,
    end: BASE + LEN,
};

/// A single byte write at a region-relative offset.
#[derive(Clone, Debug)]
struct W {
    off: u64,
    val: u8,
}

fn writes(max: usize) -> impl Strategy<Value = Vec<W>> {
    proptest::collection::vec(
        (0..LEN, any::<u8>()).prop_map(|(off, val)| W { off, val }),
        0..max,
    )
}

fn fresh_parent(init: &[W]) -> AddressSpace {
    let mut p = AddressSpace::new();
    p.map_zero(REGION, Perm::RW).unwrap();
    for w in init {
        p.write_u8(BASE + w.off, w.val).unwrap();
    }
    p
}

fn fork(p: &AddressSpace) -> (AddressSpace, AddressSpace) {
    let mut c = AddressSpace::new();
    c.copy_from(p, REGION, BASE).unwrap();
    let s = c.snapshot();
    (c, s)
}

/// Final value a sequence of writes leaves at `off`, if any.
fn last_write(ws: &[W], off: u64) -> Option<u8> {
    ws.iter().rev().find(|w| w.off == off).map(|w| w.val)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disjoint parent/child writes always merge to their union,
    /// regardless of the order and number of writes.
    #[test]
    fn disjoint_writes_union(init in writes(16), child_ws in writes(32), parent_ws in writes(32)) {
        // Make the write sets disjoint by offsetting parent writes into
        // bytes the child never touched.
        let child_offs: std::collections::HashSet<u64> =
            child_ws.iter().map(|w| w.off).collect();
        let parent_ws: Vec<W> = parent_ws
            .into_iter()
            .filter(|w| !child_offs.contains(&w.off))
            .collect();

        let mut parent = fresh_parent(&init);
        let baseline = parent.clone();
        let (mut child, snap) = fork(&parent);
        for w in &child_ws {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        for w in &parent_ws {
            parent.write_u8(BASE + w.off, w.val).unwrap();
        }
        parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict).unwrap();

        for off in 0..LEN {
            let expect = last_write(&child_ws, off)
                .or_else(|| last_write(&parent_ws, off))
                .unwrap_or_else(|| baseline.read_u8(BASE + off).unwrap());
            prop_assert_eq!(parent.read_u8(BASE + off).unwrap(), expect);
        }
    }

    /// Strict policy: the merge errors iff some byte was changed (to a
    /// different final value than the snapshot) on both sides.
    #[test]
    fn conflict_iff_overlapping_change(init in writes(8), child_ws in writes(24), parent_ws in writes(24)) {
        let mut parent = fresh_parent(&init);
        let (mut child, snap) = fork(&parent);
        for w in &child_ws {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        for w in &parent_ws {
            parent.write_u8(BASE + w.off, w.val).unwrap();
        }
        // Expected conflict: some offset where both sides' final value
        // differs from the snapshot value.
        let mut expect_conflict = false;
        for off in 0..LEN {
            let base = snap.read_u8(BASE + off).unwrap();
            let c = last_write(&child_ws, off).unwrap_or(base);
            let p = last_write(&parent_ws, off).unwrap_or(
                // Parent's pre-merge value = its own baseline (same as snap here).
                base,
            );
            if c != base && p != base {
                expect_conflict = true;
                break;
            }
        }
        let got = parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict);
        prop_assert_eq!(got.is_err(), expect_conflict);
        if let Err(e) = got {
            let is_conflict = matches!(e, MemError::Conflict { .. });
            prop_assert!(is_conflict);
        }
    }

    /// Benign policy accepts identical double-writes but still rejects
    /// divergent ones.
    #[test]
    fn benign_same_value(off in 0..LEN, v in any::<u8>(), w in any::<u8>()) {
        prop_assume!(v != 0 && w != 0);
        let mut parent = fresh_parent(&[]);
        let (mut child, snap) = fork(&parent);
        child.write_u8(BASE + off, v).unwrap();
        parent.write_u8(BASE + off, w).unwrap();
        let r = parent.merge_from(&child, &snap, REGION, ConflictPolicy::BenignSameValue);
        if v == w {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }

    /// Merging a child that wrote nothing is always a no-op with zero
    /// byte traffic (O(1) page skipping).
    #[test]
    fn null_merge_is_free(init in writes(16)) {
        let mut parent = fresh_parent(&init);
        let before = parent.content_digest();
        let (child, snap) = fork(&parent);
        let stats = parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict).unwrap();
        prop_assert_eq!(stats.bytes_compared, 0);
        prop_assert_eq!(stats.bytes_copied, 0);
        prop_assert_eq!(parent.content_digest(), before);
    }

    /// Join order of children with disjoint writes does not affect the
    /// final state (schedule independence).
    #[test]
    fn join_order_irrelevant_for_disjoint(child1 in writes(16), child2 in writes(16)) {
        let offs1: std::collections::HashSet<u64> = child1.iter().map(|w| w.off).collect();
        let child2: Vec<W> = child2.into_iter().filter(|w| !offs1.contains(&w.off)).collect();

        let parent0 = fresh_parent(&[]);
        let run = |order: [&[W]; 2]| {
            let mut parent = parent0.clone();
            let mut kids = Vec::new();
            for ws in order {
                let (mut c, s) = fork(&parent0);
                for w in ws {
                    c.write_u8(BASE + w.off, w.val).unwrap();
                }
                kids.push((c, s));
            }
            for (c, s) in &kids {
                parent.merge_from(c, s, REGION, ConflictPolicy::Strict).unwrap();
            }
            parent.content_digest()
        };
        prop_assert_eq!(run([&child1, &child2]), run([&child2, &child1]));
    }

    /// COW virtual copy is semantically a deep copy.
    #[test]
    fn cow_copy_equals_deep_copy(init in writes(32), post in writes(32)) {
        let parent = fresh_parent(&init);
        let (mut child, _) = fork(&parent);
        let reference = parent.clone();
        for w in &post {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        // Parent unchanged by child writes.
        prop_assert_eq!(parent.content_digest(), reference.content_digest());
        // Child equals parent overwritten with post.
        for off in 0..LEN {
            let expect = last_write(&post, off)
                .unwrap_or_else(|| parent.read_u8(BASE + off).unwrap());
            prop_assert_eq!(child.read_u8(BASE + off).unwrap(), expect);
        }
    }
}
