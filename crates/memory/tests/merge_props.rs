//! Property-based tests of the private-workspace merge invariants.
//!
//! These check the paper's §2.2 semantics on randomly generated write
//! sets: reads see only causally prior writes, disjoint writes always
//! union, and write/write overlap is detected as a conflict
//! independently of any schedule.
//!
//! The second half is a **differential suite**: randomized
//! fork/write/merge schedules are run through both the optimized
//! dirty-set engine (`AddressSpace::try_merge_from`) and the naive
//! byte-at-a-time oracle (`reference::merge_from_reference`) under all
//! three conflict policies, asserting identical parent contents,
//! identical conflict detail, and consistent stats.

use det_memory::{AddressSpace, ConflictPolicy, MemError, Perm, Region, reference};
use proptest::prelude::*;

const BASE: u64 = 0x1000;
const LEN: u64 = 4 * 4096;
const REGION: Region = Region {
    start: BASE,
    end: BASE + LEN,
};

/// A single byte write at a region-relative offset.
#[derive(Clone, Debug)]
struct W {
    off: u64,
    val: u8,
}

fn writes(max: usize) -> impl Strategy<Value = Vec<W>> {
    proptest::collection::vec(
        (0..LEN, any::<u8>()).prop_map(|(off, val)| W { off, val }),
        0..max,
    )
}

fn fresh_parent(init: &[W]) -> AddressSpace {
    let mut p = AddressSpace::new();
    p.map_zero(REGION, Perm::RW).unwrap();
    for w in init {
        p.write_u8(BASE + w.off, w.val).unwrap();
    }
    p
}

fn fork(p: &AddressSpace) -> (AddressSpace, AddressSpace) {
    let mut c = AddressSpace::new();
    c.copy_from(p, REGION, BASE).unwrap();
    let s = c.snapshot();
    (c, s)
}

/// Final value a sequence of writes leaves at `off`, if any.
fn last_write(ws: &[W], off: u64) -> Option<u8> {
    ws.iter().rev().find(|w| w.off == off).map(|w| w.val)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disjoint parent/child writes always merge to their union,
    /// regardless of the order and number of writes.
    #[test]
    fn disjoint_writes_union(init in writes(16), child_ws in writes(32), parent_ws in writes(32)) {
        // Make the write sets disjoint by offsetting parent writes into
        // bytes the child never touched.
        let child_offs: std::collections::HashSet<u64> =
            child_ws.iter().map(|w| w.off).collect();
        let parent_ws: Vec<W> = parent_ws
            .into_iter()
            .filter(|w| !child_offs.contains(&w.off))
            .collect();

        let mut parent = fresh_parent(&init);
        let baseline = parent.clone();
        let (mut child, snap) = fork(&parent);
        for w in &child_ws {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        for w in &parent_ws {
            parent.write_u8(BASE + w.off, w.val).unwrap();
        }
        parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict).unwrap();

        for off in 0..LEN {
            let expect = last_write(&child_ws, off)
                .or_else(|| last_write(&parent_ws, off))
                .unwrap_or_else(|| baseline.read_u8(BASE + off).unwrap());
            prop_assert_eq!(parent.read_u8(BASE + off).unwrap(), expect);
        }
    }

    /// Strict policy: the merge errors iff some byte was changed (to a
    /// different final value than the snapshot) on both sides.
    #[test]
    fn conflict_iff_overlapping_change(init in writes(8), child_ws in writes(24), parent_ws in writes(24)) {
        let mut parent = fresh_parent(&init);
        let (mut child, snap) = fork(&parent);
        for w in &child_ws {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        for w in &parent_ws {
            parent.write_u8(BASE + w.off, w.val).unwrap();
        }
        // Expected conflict: some offset where both sides' final value
        // differs from the snapshot value.
        let mut expect_conflict = false;
        for off in 0..LEN {
            let base = snap.read_u8(BASE + off).unwrap();
            let c = last_write(&child_ws, off).unwrap_or(base);
            let p = last_write(&parent_ws, off).unwrap_or(
                // Parent's pre-merge value = its own baseline (same as snap here).
                base,
            );
            if c != base && p != base {
                expect_conflict = true;
                break;
            }
        }
        let got = parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict);
        prop_assert_eq!(got.is_err(), expect_conflict);
        if let Err(e) = got {
            let is_conflict = matches!(e, MemError::Conflict { .. });
            prop_assert!(is_conflict);
        }
    }

    /// Benign policy accepts identical double-writes but still rejects
    /// divergent ones.
    #[test]
    fn benign_same_value(off in 0..LEN, v in any::<u8>(), w in any::<u8>()) {
        prop_assume!(v != 0 && w != 0);
        let mut parent = fresh_parent(&[]);
        let (mut child, snap) = fork(&parent);
        child.write_u8(BASE + off, v).unwrap();
        parent.write_u8(BASE + off, w).unwrap();
        let r = parent.merge_from(&child, &snap, REGION, ConflictPolicy::BenignSameValue);
        if v == w {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }

    /// Merging a child that wrote nothing is always a no-op with zero
    /// byte traffic (O(1) page skipping).
    #[test]
    fn null_merge_is_free(init in writes(16)) {
        let mut parent = fresh_parent(&init);
        let before = parent.content_digest();
        let (child, snap) = fork(&parent);
        let stats = parent.merge_from(&child, &snap, REGION, ConflictPolicy::Strict).unwrap();
        prop_assert_eq!(stats.bytes_compared, 0);
        prop_assert_eq!(stats.bytes_copied, 0);
        prop_assert_eq!(parent.content_digest(), before);
    }

    /// Join order of children with disjoint writes does not affect the
    /// final state (schedule independence).
    #[test]
    fn join_order_irrelevant_for_disjoint(child1 in writes(16), child2 in writes(16)) {
        let offs1: std::collections::HashSet<u64> = child1.iter().map(|w| w.off).collect();
        let child2: Vec<W> = child2.into_iter().filter(|w| !offs1.contains(&w.off)).collect();

        let parent0 = fresh_parent(&[]);
        let run = |order: [&[W]; 2]| {
            let mut parent = parent0.clone();
            let mut kids = Vec::new();
            for ws in order {
                let (mut c, s) = fork(&parent0);
                for w in ws {
                    c.write_u8(BASE + w.off, w.val).unwrap();
                }
                kids.push((c, s));
            }
            for (c, s) in &kids {
                parent.merge_from(c, s, REGION, ConflictPolicy::Strict).unwrap();
            }
            parent.content_digest()
        };
        prop_assert_eq!(run([&child1, &child2]), run([&child2, &child1]));
    }

    /// COW virtual copy is semantically a deep copy.
    #[test]
    fn cow_copy_equals_deep_copy(init in writes(32), post in writes(32)) {
        let parent = fresh_parent(&init);
        let (mut child, _) = fork(&parent);
        let reference = parent.clone();
        for w in &post {
            child.write_u8(BASE + w.off, w.val).unwrap();
        }
        // Parent unchanged by child writes.
        prop_assert_eq!(parent.content_digest(), reference.content_digest());
        // Child equals parent overwritten with post.
        for off in 0..LEN {
            let expect = last_write(&post, off)
                .unwrap_or_else(|| parent.read_u8(BASE + off).unwrap());
            prop_assert_eq!(child.read_u8(BASE + off).unwrap(), expect);
        }
    }
}

// ---------------------------------------------------------------------
// Differential suite: optimized engine vs the naive reference oracle.
// ---------------------------------------------------------------------

/// Pages the parent maps; the child may map up to 4 more beyond them
/// (child-created pages the merge adopts).
const DPAGES: u64 = 8;
const DEXTRA: u64 = 4;
const DBASE: u64 = 0x10_000;
const PAGE: u64 = 4096;
const DREGION: Region = Region {
    start: DBASE,
    end: DBASE + (DPAGES + DEXTRA) * PAGE,
};

/// One step of a child-side schedule.
#[derive(Clone, Debug)]
enum COp {
    /// Unaligned multi-byte write anywhere in the merged range
    /// (silently skipped if it touches an unmapped page, like a
    /// faulting space would be).
    Write { off: u64, data: Vec<u8> },
    /// Page-aligned whole-page fill.
    FillPage { page: u64, val: u8 },
    /// Map a fresh zero page (possibly beyond the parent's mapping —
    /// a child-created page; possibly over an existing one).
    MapZero { page: u64 },
}

fn child_ops(max: usize) -> impl Strategy<Value = Vec<COp>> {
    proptest::collection::vec(
        prop_oneof![
            (
                0..(DPAGES + DEXTRA) * PAGE - 32,
                proptest::collection::vec(any::<u8>(), 1..24)
            )
                .prop_map(|(off, data)| COp::Write { off, data }),
            (0..DPAGES + DEXTRA, any::<u8>()).prop_map(|(page, val)| COp::FillPage { page, val }),
            (0..DPAGES + DEXTRA).prop_map(|page| COp::MapZero { page }),
        ],
        0..max,
    )
}

fn apply_child_ops(space: &mut AddressSpace, ops: &[COp]) {
    for op in ops {
        match op {
            COp::Write { off, data } => {
                // Writes into unmapped pages fault; the schedule just
                // moves on (all-or-nothing, checked by `write`).
                let _ = space.write(DBASE + off, data);
            }
            COp::FillPage { page, val } => {
                let _ = space.write(DBASE + page * PAGE, &vec![*val; PAGE as usize]);
            }
            COp::MapZero { page } => {
                let start = DBASE + page * PAGE;
                space
                    .map_zero(Region::new(start, start + PAGE), Perm::RW)
                    .unwrap();
            }
        }
    }
}

/// Builds the fork state: parent with `init` applied, child forked
/// from it with a snapshot (clearing the child's dirty write-set).
fn diff_fork(init: &[W]) -> (AddressSpace, AddressSpace, AddressSpace) {
    let mut parent = AddressSpace::new();
    parent
        .map_zero(Region::new(DBASE, DBASE + DPAGES * PAGE), Perm::RW)
        .unwrap();
    for w in init {
        parent
            .write_u8(DBASE + w.off % (DPAGES * PAGE), w.val)
            .unwrap();
    }
    let mut child = AddressSpace::new();
    child
        .copy_from(&parent, Region::new(DBASE, DBASE + DPAGES * PAGE), DBASE)
        .unwrap();
    let snap = child.snapshot();
    (parent, child, snap)
}

/// Runs one generated schedule through both engines under `policy` and
/// asserts they are observationally identical.
fn assert_engines_agree(
    parent: &AddressSpace,
    child: &AddressSpace,
    snap: &AddressSpace,
    region: Region,
    policy: ConflictPolicy,
) -> Result<(), TestCaseError> {
    let before = parent.content_digest();
    let mut p_opt = parent.clone();
    let mut p_ref = parent.clone();
    let opt = p_opt.try_merge_from(child, snap, region, policy);
    let refr = reference::merge_from_reference(&mut p_ref, child, snap, region, policy);
    match (opt, refr) {
        (Ok((s_opt, c_opt)), Ok((s_ref, c_ref))) => {
            prop_assert_eq!(c_opt, c_ref, "conflict detail diverged ({:?})", policy);
            if c_opt.is_some() {
                // Validate-before-write: neither engine touched the parent.
                prop_assert_eq!(p_opt.content_digest(), before.clone());
                prop_assert_eq!(p_ref.content_digest(), before);
            } else {
                prop_assert_eq!(
                    p_opt.content_digest(),
                    p_ref.content_digest(),
                    "merged contents diverged ({:?})",
                    policy
                );
                prop_assert_eq!(s_opt.bytes_copied, s_ref.bytes_copied);
                prop_assert_eq!(s_opt.pages_mapped, s_ref.pages_mapped);
            }
        }
        (Err(e_opt), Err(e_ref)) => {
            prop_assert_eq!(e_opt, e_ref, "error diverged ({:?})", policy);
            prop_assert_eq!(p_opt.content_digest(), before.clone());
            prop_assert_eq!(p_ref.content_digest(), before);
        }
        (opt, refr) => {
            return Err(TestCaseError::Fail(format!(
                "engines disagree under {policy:?}: optimized={opt:?} reference={refr:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The optimized engine and the reference oracle agree on final
    /// parent bytes, conflict presence/detail, and `bytes_copied`
    /// across randomized fork/write/merge schedules under all three
    /// conflict policies.
    #[test]
    fn differential_engines_agree(
        init in writes(24),
        cops in child_ops(24),
        pws in writes(24),
        ro_sel in 0u64..20,
        premerge in 0u64..4,
    ) {
        let (mut parent, mut child, snap) = diff_fork(&init);
        apply_child_ops(&mut child, &cops);
        // A quarter of the cases re-merge a child the parent has
        // already joined once (ChildWins cannot conflict): adopted
        // child-created pages then alias the parent's frames, which is
        // the one state where the engines' page-level alias rule must
        // demonstrably agree.
        if premerge == 0 {
            parent
                .merge_from(&child, &snap, DREGION, ConflictPolicy::ChildWins)
                .unwrap();
        }
        for w in &pws {
            parent.write_u8(DBASE + w.off % (DPAGES * PAGE), w.val).unwrap();
        }
        // Occasionally make one parent page read-only: the merge must
        // fail identically (validate-before-write) in both engines.
        if ro_sel < DPAGES {
            let start = DBASE + ro_sel * PAGE;
            parent.set_perm(Region::new(start, start + PAGE), Perm::R).unwrap();
        }
        for policy in [
            ConflictPolicy::Strict,
            ConflictPolicy::BenignSameValue,
            ConflictPolicy::ChildWins,
        ] {
            assert_engines_agree(&parent, &child, &snap, DREGION, policy)?;
        }
    }

    /// Reverted writes (child restores the snapshot value) never
    /// propagate, under either engine.
    #[test]
    fn differential_reverted_writes(off in 0..DPAGES * PAGE, v in 1u8..=255) {
        let (parent, mut child, snap) = diff_fork(&[]);
        child.write_u8(DBASE + off, v).unwrap();
        child.write_u8(DBASE + off, 0).unwrap(); // Back to the base value.
        for policy in [
            ConflictPolicy::Strict,
            ConflictPolicy::BenignSameValue,
            ConflictPolicy::ChildWins,
        ] {
            assert_engines_agree(&parent, &child, &snap, DREGION, policy)?;
            let mut p = parent.clone();
            let stats = p.merge_from(&child, &snap, DREGION, policy).unwrap();
            prop_assert_eq!(stats.bytes_copied, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Structural-sharing differential suite: schedules at page-table-leaf
// scale (512-page leaves), so snapshot/copy_from share, COW, and merge
// *whole leaves* — the DESIGN.md §5 invariant — against the oracle.
// ---------------------------------------------------------------------

const PPL: u64 = det_memory::PAGES_PER_LEAF as u64;
/// Leaf-aligned test region: 2 whole leaves starting at leaf index 4.
const LBASE: u64 = 4 * PPL * PAGE;
const LLEN: u64 = 2 * PPL * PAGE;
const LREGION: Region = Region {
    start: LBASE,
    end: LBASE + LLEN,
};

/// One step of a leaf-scale child schedule. Every constructor keeps
/// the schedule inside `LREGION`'s two leaves (indices 0 and 1).
#[derive(Clone, Debug)]
enum LOp {
    /// Byte write anywhere in the region (faults on unmapped pages are
    /// swallowed, like a trapping space).
    Write { off: u64, val: u8 },
    /// 64-byte fill at a page start.
    FillPage { page: u64, val: u8 },
    /// Leaf-congruent self-aliasing copy: leaf `src` over leaf `dst`
    /// (wholesale `Arc` share of a 512-page leaf).
    CopyLeaf { src: u64, dst: u64 },
    /// Incongruent copy of leaf `src` to an 8-page-shifted offset:
    /// forces the per-page boundary path over shared leaves.
    CopyShifted { src: u64 },
    /// Fresh zero mapping over a whole leaf (shares one zero leaf).
    MapZeroLeaf { leaf: u64 },
    /// Unmap a whole leaf (drops it from the spine in O(1)).
    UnmapLeaf { leaf: u64 },
    /// Replace the reference snapshot, as the kernel's `Snap` option
    /// does — clears the dirty set while every leaf becomes shared.
    Snap,
    /// Fold the child into the parent mid-schedule under `ChildWins`
    /// (never conflicts): afterwards parent and child alias adopted
    /// frames and leaves, the `pages_aliased` state at leaf scale.
    Premerge,
}

fn leaf_region(leaf: u64) -> Region {
    Region::sized(LBASE + leaf * PPL * PAGE, PPL * PAGE)
}

fn leaf_ops(max: usize) -> impl Strategy<Value = Vec<LOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..LLEN, any::<u8>()).prop_map(|(off, val)| LOp::Write { off, val }),
            (0..2 * PPL, any::<u8>()).prop_map(|(page, val)| LOp::FillPage { page, val }),
            (0..2u64, 0..2u64).prop_map(|(src, dst)| LOp::CopyLeaf { src, dst }),
            (0..2u64).prop_map(|src| LOp::CopyShifted { src }),
            (0..2u64).prop_map(|leaf| LOp::MapZeroLeaf { leaf }),
            (0..2u64).prop_map(|leaf| LOp::UnmapLeaf { leaf }),
            Just(LOp::Snap),
            Just(LOp::Premerge),
        ],
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of snapshot / leaf-congruent copy_from /
    /// write / merge over whole 512-page leaves: the optimized engine
    /// (leaf short-circuit, dirty bitmaps, structural sharing) must
    /// stay observationally identical to the naive oracle, and the
    /// parent must never see a torn or leaked page through a shared
    /// leaf.
    #[test]
    fn differential_leaf_scale_interleavings(
        init_stride in 1u64..64,
        ops in leaf_ops(20),
        pws in proptest::collection::vec((0..LLEN, any::<u8>()), 0..12),
        pol in 0u8..3,
    ) {
        let policy = match pol {
            0 => ConflictPolicy::Strict,
            1 => ConflictPolicy::BenignSameValue,
            _ => ConflictPolicy::ChildWins,
        };
        let mut parent = AddressSpace::new();
        parent.map_zero(LREGION, Perm::RW).unwrap();
        // Sparse recognizable content so merges move real bytes.
        let mut vpn = 0;
        while vpn < 2 * PPL {
            parent.write_u64(LBASE + vpn * PAGE, vpn + 1).unwrap();
            vpn += init_stride;
        }
        // Fork: wholesale leaf share plus reference snapshot.
        let mut child = AddressSpace::new();
        child.copy_from(&parent, LREGION, LBASE).unwrap();
        prop_assert!(child.shares_leaf_with(&parent, LBASE / PAGE));
        let mut snap = child.snapshot();
        for op in &ops {
            match op {
                LOp::Write { off, val } => {
                    let _ = child.write_u8(LBASE + off, *val);
                }
                LOp::FillPage { page, val } => {
                    let _ = child.write(LBASE + page * PAGE, &[*val; 64]);
                }
                LOp::CopyLeaf { src, dst } => {
                    let aliased = child.clone();
                    child
                        .copy_from(&aliased, leaf_region(*src), leaf_region(*dst).start)
                        .unwrap();
                }
                LOp::CopyShifted { src } => {
                    let aliased = child.clone();
                    // Shift by 8 pages but stay inside the region.
                    let r = leaf_region(*src);
                    let r = Region::new(r.start, r.end - 8 * PAGE);
                    child.copy_from(&aliased, r, r.start + 8 * PAGE).unwrap();
                }
                LOp::MapZeroLeaf { leaf } => {
                    child.map_zero(leaf_region(*leaf), Perm::RW).unwrap();
                }
                LOp::UnmapLeaf { leaf } => {
                    child.unmap(leaf_region(*leaf)).unwrap();
                }
                LOp::Snap => snap = child.snapshot(),
                LOp::Premerge => {
                    parent
                        .merge_from(&child, &snap, LREGION, ConflictPolicy::ChildWins)
                        .unwrap();
                }
            }
        }
        for (off, val) in &pws {
            parent.write_u8(LBASE + off, *val).unwrap();
        }
        assert_engines_agree(&parent, &child, &snap, LREGION, policy)?;
    }
}

/// The acceptance benchmark in test form: on a sparse-dirty merge
/// (16 of 1024 pages touched) the optimized engine must report at
/// least a 5x reduction in `pages_scanned + bytes_compared` versus the
/// pre-optimization engine, whose costs the reference oracle would
/// overstate — so the pre-PR figures are reconstructed analytically:
/// it scanned every mapped page (1024) and charged a full page of
/// byte compares per frame-distinct page (16 * 4096).
#[test]
fn sparse_dirty_stat_reduction_is_at_least_5x() {
    const PAGES: u64 = 1024;
    let region = Region::new(0, PAGES * PAGE);
    let mut parent = AddressSpace::new();
    parent.map_zero(region, Perm::RW).unwrap();
    let mut child = AddressSpace::new();
    child.copy_from(&parent, region, 0).unwrap();
    let snap = child.snapshot();
    for i in 0..16u64 {
        child.write_u64(i * 64 * PAGE + 64, i + 1).unwrap();
    }
    let stats = parent
        .merge_from(&child, &snap, region, ConflictPolicy::Strict)
        .unwrap();
    let new_cost = stats.pages_scanned + stats.bytes_compared;
    let pre_pr_cost = PAGES + 16 * PAGE; // pages_scanned + bytes_compared.
    assert!(
        pre_pr_cost >= 5 * new_cost,
        "expected >=5x reduction: pre-PR {pre_pr_cost} vs new {new_cost} ({stats:?})"
    );
    // And the dirty-set bookkeeping is visible in the stats.
    assert_eq!(stats.pages_scanned, 16);
    assert_eq!(stats.pages_skipped_clean, PAGES - 16);
}
