//! Crash-recovery conformance: kill a run at a deterministic fault
//! point, restore from the latest restorable checkpoint, replay the
//! trace suffix, and require the recovered bundle to be byte-identical
//! (Scope::Full) to the uninterrupted run's.
//!
//! The full registry × both dispatch modes runs in CI via
//! `conform --recover`; the in-tree tests keep to representative
//! subsets so `cargo test` stays snappy.

use det_conform::{
    ConformConfig, ScenarioConfig, conform_scenario, crash_recovery_check, find, root_syscalls,
};
use det_kernel::{FaultPlan, VmDispatch};

/// Kill-at-midpoint recovery conforms for a representative subset in
/// both dispatch modes: native spaces, VM spaces, heavy rendezvous,
/// device I/O, and a real workload.
#[test]
fn crash_recovery_conforms_for_representative_subset() {
    for name in [
        "quickstart_swap",
        "vm_counter_stream",
        "rendezvous_storm",
        "device_io",
        "wl_md5",
    ] {
        let sc = find(name).expect("registered");
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            let r = crash_recovery_check(&sc, dispatch, None);
            assert!(r.conforms(), "{}", r.report());
        }
    }
}

/// Recovery conforms no matter *where* the kill lands: sweep every
/// root-syscall kill point of one scenario. This exercises boundary
/// selection across the whole trace, including kill points inside
/// snap→merge windows (where the checkpoint must fall back to an
/// earlier boundary) and kill at the very first syscall (restore from
/// the empty boundary 0).
#[test]
fn crash_recovery_conforms_at_every_kill_point() {
    let sc = find("quickstart_swap").expect("registered");
    let oracle = (sc.run)(&ScenarioConfig::traced(VmDispatch::Inline));
    let total = root_syscalls(oracle.trace.as_ref().expect("traceable"));
    assert!(total > 2, "scenario too small to sweep");
    for kill in 0..total {
        let r = crash_recovery_check(&sc, VmDispatch::Inline, Some(kill));
        assert!(r.conforms(), "kill@{kill}: {}", r.report());
    }
}

/// A run under an injected *operation* failure (device write errors
/// once, surfaced as a typed `KernelError`) is still deterministic:
/// replicas of the faulted run conform byte-for-byte.
#[test]
fn injected_device_failure_is_deterministic() {
    let plan = FaultPlan::default().with(FaultPlan::parse("fail@device").expect("valid spec"));
    let sc = find("device_io").expect("registered");
    let cfg = ConformConfig {
        replicas: 3,
        chaos: false,
        faults: plan,
    };
    for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
        let r = conform_scenario(&sc, dispatch, &cfg);
        assert!(r.conforms(), "{}", r.report());
    }
}

/// An injected allocation failure at a Put is also replica-stable.
#[test]
fn injected_alloc_failure_is_deterministic() {
    let plan = FaultPlan::default().with(FaultPlan::parse("fail@alloc:n=2").expect("valid spec"));
    let sc = find("quickstart_swap").expect("registered");
    let cfg = ConformConfig {
        replicas: 2,
        chaos: false,
        faults: plan,
    };
    let r = conform_scenario(&sc, VmDispatch::Inline, &cfg);
    assert!(r.conforms(), "{}", r.report());
}
