//! Conformance harness self-tests: replica conformance under chaos,
//! canonical-serialization stability, cross-dispatch bundle equality,
//! and divergence classification on seeded faults.

use det_conform::{
    Artifacts, ConformConfig, DivergenceCategory, Scope, compare, conform_scenario,
    cross_dispatch_check, find, registry,
};
use det_kernel::VmDispatch;

fn artifacts(name: &str, dispatch: VmDispatch) -> Artifacts {
    let sc = find(name).expect("registered");
    let run = (sc.run)(&det_conform::ScenarioConfig {
        dispatch,
        trace: sc.traceable,
        faults: det_kernel::FaultPlan::default(),
    });
    Artifacts::collect(sc.name, dispatch, &run)
}

/// A fast representative subset conforms at N=3 under chaos load, in
/// both dispatch modes. (The full registry runs in CI via the
/// `conform` binary; keeping the in-tree test to a subset keeps
/// `cargo test` snappy.)
#[test]
fn replicas_conform_under_chaos() {
    let cfg = ConformConfig {
        replicas: 3,
        chaos: true,
        ..ConformConfig::default()
    };
    for name in [
        "quickstart_swap",
        "vm_counter_stream",
        "rendezvous_storm",
        "device_io",
        "shell_pipeline",
    ] {
        let sc = find(name).expect("registered");
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            let r = conform_scenario(&sc, dispatch, &cfg);
            assert!(r.conforms(), "{}", r.report());
        }
    }
}

/// Serializing the same bundle twice yields identical bytes: the
/// canonical form has no iteration-order or formatting instability
/// (this is what the `HashMap` → `BTreeMap` sweep buys).
#[test]
fn serialization_is_byte_stable() {
    for name in ["quickstart_swap", "device_io", "vm_sandbox"] {
        let a = artifacts(name, VmDispatch::Inline);
        for scope in [Scope::Full, Scope::CrossDispatch] {
            assert_eq!(
                a.to_bytes(scope),
                a.to_bytes(scope),
                "{name}: serialize-twice must be byte-identical"
            );
        }
        // And a bundle is equal to itself under compare().
        assert!(compare(&a, &a, Scope::Full).is_none());
    }
}

/// Inline and Threaded dispatch produce byte-identical bundles for
/// every registered scenario once the vehicle-observability sections
/// are excluded: the execution-vehicle policy must be invisible to
/// the computation.
#[test]
fn cross_dispatch_bundles_identical_for_all_scenarios() {
    for sc in registry() {
        if let Some(d) = cross_dispatch_check(&sc) {
            panic!("{}", d.report(sc.name, "inline", "threaded"));
        }
    }
}

/// A seeded single-bit page corruption is classified as page content,
/// names the right space and page, and the reported offset really is
/// the first divergent byte.
#[test]
fn seeded_page_corruption_localizes() {
    let a = artifacts("quickstart_swap", VmDispatch::Inline);
    let mut b = a.clone();
    assert!(b.corrupt_page_digest(), "scenario has paged spaces");
    let d = compare(&a, &b, Scope::Full).expect("must diverge");
    assert_eq!(d.category, DivergenceCategory::PageContent, "{}", d.detail);
    assert!(d.detail.contains("page vpn="), "detail: {}", d.detail);

    // Independently recompute the first divergent byte.
    let (ba, bb) = (a.to_bytes(Scope::Full), b.to_bytes(Scope::Full));
    let expected = (0..ba.len().min(bb.len()))
        .find(|&i| ba[i] != bb[i])
        .expect("bytes differ");
    assert_eq!(d.offset, expected);
    assert!(d.context_a.contains('['), "context marks the byte");
    assert_ne!(d.context_a, d.context_b);
}

/// A seeded reorder of two adjacent trace events is classified as a
/// schedule/trace divergence naming the stream and event index, with
/// the exact first divergent offset.
#[test]
fn seeded_trace_reorder_localizes() {
    let a = artifacts("rendezvous_storm", VmDispatch::Inline);
    let mut b = a.clone();
    assert!(b.reorder_trace(), "scenario records a trace");
    let d = compare(&a, &b, Scope::Full).expect("must diverge");
    assert_eq!(
        d.category,
        DivergenceCategory::ScheduleTrace,
        "{}",
        d.detail
    );
    assert!(d.detail.contains("event 0"), "detail: {}", d.detail);

    let (ba, bb) = (a.to_bytes(Scope::Full), b.to_bytes(Scope::Full));
    let expected = (0..ba.len().min(bb.len()))
        .find(|&i| ba[i] != bb[i])
        .expect("bytes differ");
    assert_eq!(d.offset, expected);
    // The reorder is invisible in cross-dispatch scope (trace
    // excluded) — the computation itself did not change.
    assert!(compare(&a, &b, Scope::CrossDispatch).is_none());
}

/// Stat drift (a counter bumped post-hoc) is classified as such and
/// names the counter.
#[test]
fn seeded_stat_drift_localizes() {
    let a = artifacts("device_io", VmDispatch::Inline);
    let mut b = a.clone();
    b.stats.merges += 1;
    // The trace streams still agree, so classification falls through
    // to the stats section.
    let d = compare(&a, &b, Scope::Full).expect("must diverge");
    assert_eq!(d.category, DivergenceCategory::StatDrift, "{}", d.detail);
    assert!(d.detail.contains("merges"), "detail: {}", d.detail);
}

/// Device-output divergence (an output byte flipped) is classified as
/// device output when everything upstream agrees.
#[test]
fn seeded_output_corruption_localizes() {
    let a = artifacts("device_io", VmDispatch::Inline);
    let mut b = a.clone();
    let data = b
        .outputs
        .get_mut(&det_kernel::DeviceId::ConsoleOut)
        .expect("scenario writes the console");
    data[0] ^= 0xff;
    let d = compare(&a, &b, Scope::Full).expect("must diverge");
    assert_eq!(d.category, DivergenceCategory::DeviceOutput, "{}", d.detail);
    assert!(d.detail.contains("byte 0"), "detail: {}", d.detail);
}

/// The untraceable cluster scenario still conforms (no trace section,
/// everything else byte-compared).
#[test]
fn untraceable_scenario_conforms() {
    let sc = find("dist_md5_tree").expect("registered");
    assert!(!sc.traceable);
    let r = conform_scenario(
        &sc,
        VmDispatch::Inline,
        &ConformConfig {
            replicas: 2,
            chaos: false,
            ..ConformConfig::default()
        },
    );
    assert!(r.conforms(), "{}", r.report());
    let a = artifacts("dist_md5_tree", VmDispatch::Inline);
    assert!(a.trace_streams.is_none());
    assert!(!a.spaces.is_empty() || a.vclock_ns > 0);
}
