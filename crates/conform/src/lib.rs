//! det-conform: the N-replica conformance harness with divergence
//! localization.
//!
//! Determinator's promise is that a computation's observable outcome
//! is a pure function of its inputs — independent of host scheduling,
//! core count, and execution-vehicle policy. This crate *enforces*
//! that promise mechanically:
//!
//! 1. every example and workload is registered as a library-callable
//!    [`scenario::Scenario`];
//! 2. the [`harness`] runs N replicas of each scenario (optionally
//!    under chaotic host load) and collects a canonical
//!    [`bundle::Artifacts`] per replica — exit status, virtual clock,
//!    the full deterministic stats vector, device outputs, per-space
//!    memory digests keyed by lineage path, and the syscall trace
//!    projected into per-space streams;
//! 3. bundles are serialized byte-stably and compared byte-for-byte;
//! 4. on mismatch, [`diff`] reports the first divergent byte offset
//!    with hex context and classifies the root cause: schedule/trace
//!    divergence vs page content vs stat drift vs device output.
//!
//! The `conform` binary drives the same machinery from CI
//! (`conform --replicas 3`) and nightly chaos runs
//! (`conform --replicas 10 --chaos`).

#![warn(missing_docs)]

pub mod bundle;
pub mod diff;
pub mod harness;
pub mod scenario;

pub use bundle::{Artifacts, Scope};
pub use diff::{Divergence, DivergenceCategory, compare, first_diff, hex_context};
pub use harness::{
    ChaosLoad, ConformConfig, RecoveryReport, ScenarioReport, conform_all, conform_scenario,
    crash_recovery_check, cross_dispatch_check, recover_all, root_syscalls,
};
pub use scenario::{Scenario, ScenarioConfig, ScenarioRun, find, registry};
