//! Divergence localization: byte-exact comparison of two artifact
//! bundles plus root-cause classification.
//!
//! The byte offset answers *where* two bundles first disagree; the
//! classification answers *what kind* of nondeterminism produced the
//! disagreement. Classification follows the diagnostic order from the
//! harness design: trace streams are diffed first (a schedule or
//! syscall divergence upstream usually explains every downstream
//! delta), then per-space memory, then the stats vector and clocks,
//! then device outputs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::bundle::{Artifacts, Scope};

/// Root-cause category of a divergence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceCategory {
    /// The syscall event streams disagree: a schedule-visible
    /// difference in what the replicas *did*, not just what they
    /// computed.
    ScheduleTrace,
    /// A space's final memory differs (per-page digest mismatch).
    PageContent,
    /// A deterministic counter, clock, or the exit status drifted.
    StatDrift,
    /// Device output bytes or the consumed input log differ.
    DeviceOutput,
}

impl DivergenceCategory {
    /// Stable lowercase name used in reports and CI logs.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceCategory::ScheduleTrace => "schedule-trace",
            DivergenceCategory::PageContent => "page-content",
            DivergenceCategory::StatDrift => "stat-drift",
            DivergenceCategory::DeviceOutput => "device-output",
        }
    }
}

/// A localized divergence between two bundles.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Root-cause classification.
    pub category: DivergenceCategory,
    /// Human-readable locus: which stream/space/counter/device, and
    /// how the two sides disagree.
    pub detail: String,
    /// First divergent byte offset into the canonical serialization.
    pub offset: usize,
    /// Hex context (±16 bytes around the offset) from the first bundle.
    pub context_a: String,
    /// Hex context from the second bundle.
    pub context_b: String,
}

impl Divergence {
    /// Renders the full divergence report.
    pub fn report(&self, scenario: &str, label_a: &str, label_b: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "CONFORMANCE DIVERGENCE: {scenario}");
        let _ = writeln!(s, "  category: {}", self.category.name());
        let _ = writeln!(s, "  detail:   {}", self.detail);
        let _ = writeln!(s, "  first divergent byte offset: {}", self.offset);
        let _ = writeln!(s, "  {label_a}: {}", self.context_a);
        let _ = writeln!(s, "  {label_b}: {}", self.context_b);
        s
    }
}

/// Compares two bundles byte-for-byte under `scope`. Returns `None`
/// when they are identical; otherwise the first divergent offset with
/// hex context and a root-cause classification.
pub fn compare(a: &Artifacts, b: &Artifacts, scope: Scope) -> Option<Divergence> {
    let ba = a.to_bytes(scope);
    let bb = b.to_bytes(scope);
    if ba == bb {
        return None;
    }
    let offset = first_diff(&ba, &bb);
    let (category, detail) = classify(a, b, scope);
    Some(Divergence {
        category,
        detail,
        offset,
        context_a: hex_context(&ba, offset),
        context_b: hex_context(&bb, offset),
    })
}

/// First index at which the byte strings differ (the shorter length
/// when one is a prefix of the other).
pub fn first_diff(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    (0..n).find(|&i| a[i] != b[i]).unwrap_or(n)
}

/// Hex dump of the 16 bytes before and after `offset` with the
/// divergent byte bracketed, e.g. `..73 70 61 [63] 65 2e..`.
pub fn hex_context(bytes: &[u8], offset: usize) -> String {
    let lo = offset.saturating_sub(16);
    let hi = (offset + 17).min(bytes.len());
    let mut s = String::new();
    if lo > 0 {
        s.push_str("..");
    }
    for (i, b) in bytes[lo..hi].iter().enumerate() {
        let pos = lo + i;
        if i > 0 {
            s.push(' ');
        }
        if pos == offset {
            let _ = write!(s, "[{b:02x}]");
        } else {
            let _ = write!(s, "{b:02x}");
        }
    }
    if offset >= bytes.len() {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str("[end]");
    } else if hi < bytes.len() {
        s.push_str("..");
    }
    s
}

/// Truncates a serialized event for report text.
fn brief(e: &str) -> String {
    if e.len() <= 96 {
        e.to_string()
    } else {
        format!("{}…", &e[..96])
    }
}

/// Root-cause classification, in diagnostic order.
fn classify(a: &Artifacts, b: &Artifacts, scope: Scope) -> (DivergenceCategory, String) {
    // 1. Trace event streams: a syscall-level divergence explains
    //    everything downstream, so look there first.
    if scope == Scope::Full {
        if let Some(d) = classify_traces(a, b) {
            return d;
        }
    }
    // 2. Per-space memory.
    if let Some(d) = classify_spaces(a, b) {
        return d;
    }
    // 3. The deterministic stats vector, clocks, and exit status.
    if let Some(d) = classify_stats(a, b, scope) {
        return d;
    }
    // 4. Device outputs and the input log.
    if let Some(d) = classify_devices(a, b) {
        return d;
    }
    (
        DivergenceCategory::StatDrift,
        "bundles differ but no section classifier fired (encoding drift?)".to_string(),
    )
}

fn classify_traces(a: &Artifacts, b: &Artifacts) -> Option<(DivergenceCategory, String)> {
    let (sa, sb) = match (&a.trace_streams, &b.trace_streams) {
        (Some(sa), Some(sb)) => (sa, sb),
        (None, None) => return None,
        _ => {
            return Some((
                DivergenceCategory::ScheduleTrace,
                "one replica recorded a trace and the other did not".to_string(),
            ));
        }
    };
    let ma: BTreeMap<&str, &Vec<String>> = sa.iter().map(|(p, e)| (p.as_str(), e)).collect();
    let mb: BTreeMap<&str, &Vec<String>> = sb.iter().map(|(p, e)| (p.as_str(), e)).collect();
    for (path, ea) in &ma {
        let Some(eb) = mb.get(path) else {
            return Some((
                DivergenceCategory::ScheduleTrace,
                format!("space {path} has a trace stream in only one replica"),
            ));
        };
        for (i, (va, vb)) in ea.iter().zip(eb.iter()).enumerate() {
            if va != vb {
                return Some((
                    DivergenceCategory::ScheduleTrace,
                    format!("stream {path} event {i}: {} vs {}", brief(va), brief(vb)),
                ));
            }
        }
        if ea.len() != eb.len() {
            return Some((
                DivergenceCategory::ScheduleTrace,
                format!("stream {path}: {} events vs {} events", ea.len(), eb.len()),
            ));
        }
    }
    for path in mb.keys() {
        if !ma.contains_key(path) {
            return Some((
                DivergenceCategory::ScheduleTrace,
                format!("space {path} has a trace stream in only one replica"),
            ));
        }
    }
    None
}

fn classify_spaces(a: &Artifacts, b: &Artifacts) -> Option<(DivergenceCategory, String)> {
    let ma: BTreeMap<&str, &det_kernel::SpaceArtifact> =
        a.spaces.iter().map(|s| (s.path.as_str(), s)).collect();
    let mb: BTreeMap<&str, &det_kernel::SpaceArtifact> =
        b.spaces.iter().map(|s| (s.path.as_str(), s)).collect();
    for (path, sa) in &ma {
        let Some(sb) = mb.get(path) else {
            return Some((
                DivergenceCategory::PageContent,
                format!("space {path} exists in only one replica"),
            ));
        };
        let pa: BTreeMap<u64, u64> = sa.page_digests.iter().copied().collect();
        let pb: BTreeMap<u64, u64> = sb.page_digests.iter().copied().collect();
        for (vpn, da) in &pa {
            match pb.get(vpn) {
                Some(db) if db == da => {}
                Some(db) => {
                    return Some((
                        DivergenceCategory::PageContent,
                        format!("space {path} page vpn={vpn:#x}: digest {da:016x} vs {db:016x}"),
                    ));
                }
                None => {
                    return Some((
                        DivergenceCategory::PageContent,
                        format!("space {path} page vpn={vpn:#x} mapped in only one replica"),
                    ));
                }
            }
        }
        for vpn in pb.keys() {
            if !pa.contains_key(vpn) {
                return Some((
                    DivergenceCategory::PageContent,
                    format!("space {path} page vpn={vpn:#x} mapped in only one replica"),
                ));
            }
        }
        if sa.digest != sb.digest {
            return Some((
                DivergenceCategory::PageContent,
                format!(
                    "space {path} content digest {:016x} vs {:016x} (pages agree)",
                    sa.digest, sb.digest
                ),
            ));
        }
        if sa.vclock_ps != sb.vclock_ps {
            return Some((
                DivergenceCategory::StatDrift,
                format!(
                    "space {path} vclock_ps {} vs {}",
                    sa.vclock_ps, sb.vclock_ps
                ),
            ));
        }
        if sa.insn_count != sb.insn_count {
            return Some((
                DivergenceCategory::StatDrift,
                format!(
                    "space {path} insn_count {} vs {}",
                    sa.insn_count, sb.insn_count
                ),
            ));
        }
    }
    for path in mb.keys() {
        if !ma.contains_key(path) {
            return Some((
                DivergenceCategory::PageContent,
                format!("space {path} exists in only one replica"),
            ));
        }
    }
    None
}

fn classify_stats(
    a: &Artifacts,
    b: &Artifacts,
    scope: Scope,
) -> Option<(DivergenceCategory, String)> {
    if a.exit != b.exit {
        return Some((
            DivergenceCategory::StatDrift,
            format!("exit status {} vs {}", a.exit, b.exit),
        ));
    }
    if a.vclock_ns != b.vclock_ns {
        return Some((
            DivergenceCategory::StatDrift,
            format!("vclock_ns {} vs {}", a.vclock_ns, b.vclock_ns),
        ));
    }
    // Field-by-field through the serialized form so the report names
    // the counter.
    let (mut la, va) = crate::bundle::stat_lines(&a.stats);
    let (mut lb, vb) = crate::bundle::stat_lines(&b.stats);
    if scope == Scope::Full {
        la.extend(va);
        lb.extend(vb);
    }
    for ((ka, a_val), (_kb, b_val)) in la.iter().zip(lb.iter()) {
        if a_val != b_val {
            return Some((
                DivergenceCategory::StatDrift,
                format!("counter {ka}: {a_val} vs {b_val}"),
            ));
        }
    }
    None
}

fn classify_devices(a: &Artifacts, b: &Artifacts) -> Option<(DivergenceCategory, String)> {
    for (dev, da) in &a.outputs {
        match b.outputs.get(dev) {
            Some(db) if db == da => {}
            Some(db) => {
                let at = first_diff(da, db);
                return Some((
                    DivergenceCategory::DeviceOutput,
                    format!("device {dev:?} output differs at byte {at}"),
                ));
            }
            None => {
                return Some((
                    DivergenceCategory::DeviceOutput,
                    format!("device {dev:?} produced output in only one replica"),
                ));
            }
        }
    }
    for dev in b.outputs.keys() {
        if !a.outputs.contains_key(dev) {
            return Some((
                DivergenceCategory::DeviceOutput,
                format!("device {dev:?} produced output in only one replica"),
            ));
        }
    }
    if a.io_log != b.io_log {
        return Some((
            DivergenceCategory::DeviceOutput,
            "consumed device input logs differ".to_string(),
        ));
    }
    None
}
