//! Canonical artifact bundles.
//!
//! An [`Artifacts`] value captures everything observable about one
//! scenario run: exit status, the virtual clock, the full
//! deterministic [`KernelStats`] vector, device outputs, the consumed
//! input log, per-space memory digests (keyed by *lineage path*, not
//! by allocation-order space id), and — when a trace was recorded —
//! the syscall event log projected into per-space streams.
//!
//! [`Artifacts::to_bytes`] serializes the bundle into a canonical,
//! byte-stable text form: fixed section order, fixed key order inside
//! each section, spaces and trace streams sorted by path, all ids
//! rewritten to paths. Two conforming replicas must produce identical
//! bytes; the first differing byte is the divergence the harness
//! localizes.
//!
//! Space ids never appear in the serialized form: ids are allocation
//! order, which can legitimately differ between replicas when sibling
//! subtrees create spaces concurrently. Lineage paths (`/`, `/3`,
//! `/3/1`, `/3/1@2` after a rebind) are a pure function of the
//! kernel-mediated event history and are therefore run-invariant.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use det_kernel::{
    DeviceId, InputEvent, IoLog, KernelStats, ReplayOutcome, SpaceArtifact, Trace, TraceEvent,
    VmDispatch,
};
use serde::{Serialize, Value};

use crate::scenario::ScenarioRun;

/// Which sections of a bundle participate in a comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Every section. The comparison for replicas of the *same*
    /// configuration: any byte may differ only through a real
    /// nondeterminism bug.
    Full,
    /// Excludes the `[stats-vehicle]` and `[trace]` sections, which
    /// legitimately depend on the execution-vehicle policy (thread
    /// counts, inline-run counts, check-in boundaries). The comparison
    /// across `VmDispatch::Inline` vs `Threaded`.
    CrossDispatch,
}

/// Stats fields that describe the execution *vehicle* rather than the
/// computation; serialized into `[stats-vehicle]` and excluded from
/// cross-dispatch comparisons.
const VEHICLE_FIELDS: &[&str] = &["threads_spawned", "condvar_wakeups", "vm_inline_runs"];

/// The canonical artifact bundle of one scenario run.
#[derive(Clone, Debug)]
pub struct Artifacts {
    /// Scenario name (bundle `[meta]`).
    pub scenario: String,
    /// Execution-vehicle policy the run used.
    pub dispatch: VmDispatch,
    /// Root exit status, `Debug`-rendered (`Ok(0)`, `Err(PageFault)`…).
    pub exit: String,
    /// Virtual-time makespan in nanoseconds.
    pub vclock_ns: u64,
    /// The full deterministic kernel statistics vector.
    pub stats: KernelStats,
    /// Final device output streams.
    pub outputs: BTreeMap<DeviceId, Vec<u8>>,
    /// Consumed nondeterministic inputs.
    pub io_log: IoLog,
    /// Per-space final artifacts, sorted by lineage path.
    pub spaces: Vec<SpaceArtifact>,
    /// Per-space serialized trace event streams (path → rewritten
    /// event JSON lines), present when the run recorded a trace.
    pub trace_streams: Option<Vec<(String, Vec<String>)>>,
}

impl Artifacts {
    /// Collects the bundle from a scenario run.
    pub fn collect(scenario: &str, dispatch: VmDispatch, run: &ScenarioRun) -> Artifacts {
        let out = &run.outcome;
        let mut spaces = out.spaces.clone();
        spaces.sort_by(|a, b| a.path.cmp(&b.path));
        let trace_streams = run
            .trace
            .as_ref()
            .map(|t| project_streams(&t.events, &out.space_paths));
        Artifacts {
            scenario: scenario.to_string(),
            dispatch,
            exit: format!("{:?}", out.exit),
            vclock_ns: out.vclock_ns,
            stats: out.stats.clone(),
            outputs: out.outputs.clone(),
            io_log: out.io_log.clone(),
            spaces,
            trace_streams,
        }
    }

    /// Builds the bundle of a *recovered* run: a checkpoint restore
    /// resumed over the oracle trace's suffix.
    ///
    /// The resume yields a [`ReplayOutcome`]; the sections a replay
    /// does not carry are reconstructed from the trace itself — the
    /// input log from the recorded `DevRead` events (consumption
    /// order is the root's own syscall order, which is exactly how
    /// the live log is built), the trace streams from the full event
    /// sequence the recovered run re-derived. Crash recovery conforms
    /// iff this bundle is byte-identical ([`Scope::Full`]) to the
    /// uninterrupted run's [`Artifacts::collect`] bundle.
    pub fn from_recovery(
        scenario: &str,
        dispatch: VmDispatch,
        out: &ReplayOutcome,
        trace: &Trace,
    ) -> Artifacts {
        let mut spaces = out.spaces.clone();
        spaces.sort_by(|a, b| a.path.cmp(&b.path));
        let mut io_log = IoLog::default();
        for ev in &trace.events {
            if let TraceEvent::DevRead { dev, data, .. } = ev {
                io_log.events.push(InputEvent {
                    seq: io_log.events.len() as u64,
                    device: *dev,
                    data: data.clone(),
                });
            }
        }
        Artifacts {
            scenario: scenario.to_string(),
            dispatch,
            exit: format!("{:?}", out.exit),
            vclock_ns: out.vclock_ns,
            stats: out.stats.clone(),
            outputs: out.outputs.clone(),
            io_log,
            spaces,
            trace_streams: Some(project_streams(&trace.events, &out.space_paths)),
        }
    }

    /// Serializes the bundle into its canonical byte form.
    ///
    /// Sections appear in a fixed order — `[meta]`, `[exit]`,
    /// `[vclock]`, `[stats-core]`, `[stats-vehicle]`, `[outputs]`,
    /// `[io]`, `[spaces]`, `[trace]` — with one `key=value` line per
    /// fact and `\n` line endings throughout.
    pub fn to_bytes(&self, scope: Scope) -> Vec<u8> {
        let mut s = String::new();
        let _ = writeln!(s, "[meta]\nscenario={}", self.scenario);
        let _ = writeln!(s, "[exit]\nexit={}", self.exit);
        let _ = writeln!(s, "[vclock]\nvclock_ns={}", self.vclock_ns);

        s.push_str("[stats-core]\n");
        let (core, vehicle) = stat_lines(&self.stats);
        for (k, v) in &core {
            let _ = writeln!(s, "{k}={v}");
        }
        let m = &self.stats.merge_totals.0;
        for (k, v) in [
            ("merge.pages_scanned", m.pages_scanned),
            ("merge.pages_skipped_clean", m.pages_skipped_clean),
            ("merge.pages_unchanged", m.pages_unchanged),
            ("merge.pages_skipped_shared", m.pages_skipped_shared),
            ("merge.pages_aliased", m.pages_aliased),
            ("merge.pages_diffed", m.pages_diffed),
            ("merge.words_compared", m.words_compared),
            ("merge.bytes_compared", m.bytes_compared),
            ("merge.bytes_copied", m.bytes_copied),
            ("merge.pages_mapped", m.pages_mapped),
        ] {
            let _ = writeln!(s, "{k}={v}");
        }
        if scope == Scope::Full {
            s.push_str("[stats-vehicle]\n");
            let _ = writeln!(s, "dispatch={:?}", self.dispatch);
            for (k, v) in &vehicle {
                let _ = writeln!(s, "{k}={v}");
            }
        }

        s.push_str("[outputs]\n");
        for (dev, data) in &self.outputs {
            let _ = writeln!(s, "{dev:?}={}", hex(data));
        }
        s.push_str("[io]\n");
        let _ = writeln!(
            s,
            "events={}",
            serde_json::to_string(&self.io_log).expect("io log renders")
        );
        s.push_str("[spaces]\n");
        for sp in &self.spaces {
            let _ = writeln!(
                s,
                "space path={} vclock_ps={} insn={} digest={:016x}",
                sp.path, sp.vclock_ps, sp.insn_count, sp.digest
            );
            for (vpn, d) in &sp.page_digests {
                let _ = writeln!(s, "page path={} vpn={vpn:#x} digest={d:016x}", sp.path);
            }
        }
        if scope == Scope::Full {
            if let Some(streams) = &self.trace_streams {
                s.push_str("[trace]\n");
                for (path, events) in streams {
                    let _ = writeln!(s, "stream path={path} events={}", events.len());
                    for e in events {
                        let _ = writeln!(s, "e={e}");
                    }
                }
            }
        }
        s.into_bytes()
    }

    /// Fault injection for harness self-tests: XORs one bit into the
    /// first per-page digest found, modelling a single corrupted page.
    /// Returns false if the bundle has no paged space.
    pub fn corrupt_page_digest(&mut self) -> bool {
        for sp in &mut self.spaces {
            if let Some((_, d)) = sp.page_digests.first_mut() {
                *d ^= 1;
                return true;
            }
        }
        false
    }

    /// Fault injection for harness self-tests: swaps the first two
    /// events of the first stream that has at least two, modelling a
    /// schedule divergence. Returns false without a suitable stream.
    pub fn reorder_trace(&mut self) -> bool {
        if let Some(streams) = &mut self.trace_streams {
            for (_, events) in streams.iter_mut() {
                if events.len() >= 2 {
                    events.swap(0, 1);
                    return true;
                }
            }
        }
        false
    }
}

/// `key=value` stat lines in field declaration order.
pub type StatLines = Vec<(String, String)>;

/// Splits the stats vector into (core, vehicle) `key=value` lists,
/// preserving field declaration order. Public so the divergence
/// classifier can name the exact counter that drifted.
pub fn stat_lines(stats: &KernelStats) -> (StatLines, StatLines) {
    let mut core = Vec::new();
    let mut vehicle = Vec::new();
    if let Value::Object(fields) = stats.to_value() {
        for (k, v) in fields {
            let rendered = match v {
                Value::UInt(n) => n.to_string(),
                Value::Int(n) => n.to_string(),
                other => serde_json::to_string(&other).expect("stat renders"),
            };
            if VEHICLE_FIELDS.contains(&k.as_str()) {
                vehicle.push((k, rendered));
            } else {
                core.push((k, rendered));
            }
        }
    }
    (core, vehicle)
}

/// Lowercase hex of a byte string.
fn hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// The space a trace event belongs to: syscalls belong to the caller,
/// check-ins to the space checking in, device I/O and the root exit to
/// the root.
fn event_owner(ev: &TraceEvent) -> u32 {
    match ev {
        TraceEvent::Put { caller, .. } | TraceEvent::Get { caller, .. } => *caller,
        TraceEvent::CheckIn { space, .. } => *space,
        // Device I/O, checkpoints, and the exit are root-only syscalls.
        TraceEvent::DevRead { .. }
        | TraceEvent::DevWrite { .. }
        | TraceEvent::Checkpoint { .. }
        | TraceEvent::RootExit { .. } => 0,
    }
}

/// Projects the global event log into per-space streams keyed by
/// lineage path, rewriting every recorded space id into its path.
///
/// The global interleaving of events from *different* spaces depends
/// on the host schedule and is not part of the deterministic contract;
/// each space's own event sequence is. Projection makes the canonical
/// form exactly as strong as the guarantee.
fn project_streams(
    events: &[TraceEvent],
    space_paths: &[(u32, String)],
) -> Vec<(String, Vec<String>)> {
    let paths: BTreeMap<u32, &str> = space_paths
        .iter()
        .map(|(id, p)| (*id, p.as_str()))
        .collect();
    let path_of = |id: u32| -> String {
        paths
            .get(&id)
            .map(|p| p.to_string())
            .unwrap_or_else(|| format!("<unknown:{id}>"))
    };
    let mut streams: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for ev in events {
        let owner = path_of(event_owner(ev));
        let rewritten = rewrite_ids(ev.to_value(), &path_of);
        streams
            .entry(owner)
            .or_default()
            .push(serde_json::to_string(&rewritten).expect("event renders"));
    }
    streams.into_iter().collect()
}

/// Rewrites the id-bearing fields of a serialized event — `caller`,
/// `child_id`, `space`, and the `tree_new_ids` array — from space ids
/// to lineage paths. Ids only occur at the top level of the event
/// object, so the rewrite is shallow.
fn rewrite_ids(v: Value, path_of: &dyn Fn(u32) -> String) -> Value {
    let Value::Object(fields) = v else {
        return v;
    };
    let mapped = fields
        .into_iter()
        .map(|(k, v)| {
            let v = match (k.as_str(), &v) {
                ("caller" | "child_id" | "space", Value::UInt(id)) => {
                    Value::Str(path_of(*id as u32))
                }
                ("tree_new_ids", Value::Array(ids)) => Value::Array(
                    ids.iter()
                        .map(|id| match id {
                            Value::UInt(id) => Value::Str(path_of(*id as u32)),
                            other => other.clone(),
                        })
                        .collect(),
                ),
                _ => v,
            };
            (k, v)
        })
        .collect();
    Value::Object(mapped)
}

/// Re-projects a [`Trace`]'s events (used by tests that want streams
/// without building full artifacts).
pub fn streams_of(trace: &Trace, space_paths: &[(u32, String)]) -> Vec<(String, Vec<String>)> {
    project_streams(&trace.events, space_paths)
}
