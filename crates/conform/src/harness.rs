//! The N-replica runner: executes a scenario repeatedly (optionally
//! under chaotic host load), collects a canonical artifact bundle per
//! replica, and compares every replica byte-for-byte against the
//! first.

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::JoinHandle;

use det_kernel::VmDispatch;

use crate::bundle::{Artifacts, Scope};
use crate::diff::{Divergence, compare};
use crate::scenario::{Scenario, ScenarioConfig, registry};

/// Background host load that thrashes the OS scheduler while replicas
/// run, shaking out wakeup races and schedule-dependent behaviour.
/// Threads stop and join on drop.
pub struct ChaosLoad {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ChaosLoad {
    /// Starts `n` spin/yield threads.
    pub fn start(n: usize) -> ChaosLoad {
        let stop = Arc::new(AtomicBool::new(false));
        let threads = (0..n)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        ChaosLoad { stop, threads }
    }
}

impl Drop for ChaosLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Harness parameters.
#[derive(Clone, Copy, Debug)]
pub struct ConformConfig {
    /// Replicas per scenario per dispatch mode (first is the
    /// baseline). CI runs 3; nightly runs 10.
    pub replicas: usize,
    /// Run background chaos load while replicas execute.
    pub chaos: bool,
}

impl Default for ConformConfig {
    fn default() -> ConformConfig {
        ConformConfig {
            replicas: 3,
            chaos: true,
        }
    }
}

/// The result of conforming one scenario under one dispatch mode.
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Dispatch mode the replicas ran under.
    pub dispatch: VmDispatch,
    /// Replicas executed (stops early on the first divergence).
    pub replicas_run: usize,
    /// The diverging replica index (baseline is replica 0) and the
    /// localized divergence, if any replica failed to conform.
    pub divergence: Option<(usize, Divergence)>,
}

impl ScenarioReport {
    /// True when every replica's bundle was byte-identical.
    pub fn conforms(&self) -> bool {
        self.divergence.is_none()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        match &self.divergence {
            None => format!(
                "PASS {} [{:?}] x{}",
                self.scenario, self.dispatch, self.replicas_run
            ),
            Some((r, d)) => format!(
                "DIVERGED {} [{:?}] replica {} vs 0: {} at byte {}",
                self.scenario,
                self.dispatch,
                r,
                d.category.name(),
                d.offset
            ),
        }
    }

    /// The full report text for a divergence (empty when conforming).
    pub fn report(&self) -> String {
        match &self.divergence {
            None => String::new(),
            Some((r, d)) => d.report(self.scenario, "replica 0", &format!("replica {r}")),
        }
    }
}

/// Runs `replicas` copies of a scenario under one dispatch mode and
/// compares each bundle byte-for-byte against replica 0.
pub fn conform_scenario(
    sc: &Scenario,
    dispatch: VmDispatch,
    cfg: &ConformConfig,
) -> ScenarioReport {
    let _chaos = cfg.chaos.then(|| ChaosLoad::start(3));
    let run_cfg = ScenarioConfig {
        dispatch,
        trace: true,
    };
    let collect = || Artifacts::collect(sc.name, dispatch, &(sc.run)(&run_cfg));
    let baseline = collect();
    let mut replicas_run = 1;
    for r in 1..cfg.replicas.max(1) {
        let replica = collect();
        replicas_run += 1;
        if let Some(d) = compare(&baseline, &replica, Scope::Full) {
            return ScenarioReport {
                scenario: sc.name,
                dispatch,
                replicas_run,
                divergence: Some((r, d)),
            };
        }
    }
    ScenarioReport {
        scenario: sc.name,
        dispatch,
        replicas_run,
        divergence: None,
    }
}

/// Runs a scenario once under each dispatch mode and compares the
/// bundles in [`Scope::CrossDispatch`] (vehicle counters and trace
/// check-in boundaries excluded — everything else must match).
pub fn cross_dispatch_check(sc: &Scenario) -> Option<Divergence> {
    let run = |dispatch| {
        Artifacts::collect(
            sc.name,
            dispatch,
            &(sc.run)(&ScenarioConfig {
                dispatch,
                trace: true,
            }),
        )
    };
    let inline = run(VmDispatch::Inline);
    let threaded = run(VmDispatch::Threaded);
    compare(&inline, &threaded, Scope::CrossDispatch)
}

/// Conforms every registered scenario under both dispatch modes.
pub fn conform_all(cfg: &ConformConfig) -> Vec<ScenarioReport> {
    let mut reports = Vec::new();
    for sc in registry() {
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            reports.push(conform_scenario(&sc, dispatch, cfg));
        }
    }
    reports
}
