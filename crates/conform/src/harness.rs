//! The N-replica runner: executes a scenario repeatedly (optionally
//! under chaotic host load), collects a canonical artifact bundle per
//! replica, and compares every replica byte-for-byte against the
//! first.

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::JoinHandle;

use det_kernel::{
    Checkpoint, FaultPlan, Trace, TraceEvent, VmDispatch, latest_restorable_boundary,
};

use crate::bundle::{Artifacts, Scope};
use crate::diff::{Divergence, compare};
use crate::scenario::{Scenario, ScenarioConfig, registry};

/// Background host load that thrashes the OS scheduler while replicas
/// run, shaking out wakeup races and schedule-dependent behaviour.
/// Threads stop and join on drop.
pub struct ChaosLoad {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ChaosLoad {
    /// Starts `n` spin/yield threads.
    pub fn start(n: usize) -> ChaosLoad {
        let stop = Arc::new(AtomicBool::new(false));
        let threads = (0..n)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        ChaosLoad { stop, threads }
    }
}

impl Drop for ChaosLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Harness parameters.
#[derive(Clone, Debug)]
pub struct ConformConfig {
    /// Replicas per scenario per dispatch mode (first is the
    /// baseline). CI runs 3; nightly runs 10.
    pub replicas: usize,
    /// Run background chaos load while replicas execute.
    pub chaos: bool,
    /// Deterministic faults injected into every replica (empty = run
    /// clean). Faulted replicas must *still* conform to each other:
    /// an injected fault is a deterministic input, not noise.
    pub faults: FaultPlan,
}

impl Default for ConformConfig {
    fn default() -> ConformConfig {
        ConformConfig {
            replicas: 3,
            chaos: true,
            faults: FaultPlan::default(),
        }
    }
}

/// The result of conforming one scenario under one dispatch mode.
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Dispatch mode the replicas ran under.
    pub dispatch: VmDispatch,
    /// Replicas executed (stops early on the first divergence).
    pub replicas_run: usize,
    /// The diverging replica index (baseline is replica 0) and the
    /// localized divergence, if any replica failed to conform.
    pub divergence: Option<(usize, Divergence)>,
}

impl ScenarioReport {
    /// True when every replica's bundle was byte-identical.
    pub fn conforms(&self) -> bool {
        self.divergence.is_none()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        match &self.divergence {
            None => format!(
                "PASS {} [{:?}] x{}",
                self.scenario, self.dispatch, self.replicas_run
            ),
            Some((r, d)) => format!(
                "DIVERGED {} [{:?}] replica {} vs 0: {} at byte {}",
                self.scenario,
                self.dispatch,
                r,
                d.category.name(),
                d.offset
            ),
        }
    }

    /// The full report text for a divergence (empty when conforming).
    pub fn report(&self) -> String {
        match &self.divergence {
            None => String::new(),
            Some((r, d)) => d.report(self.scenario, "replica 0", &format!("replica {r}")),
        }
    }
}

/// Runs `replicas` copies of a scenario under one dispatch mode and
/// compares each bundle byte-for-byte against replica 0.
pub fn conform_scenario(
    sc: &Scenario,
    dispatch: VmDispatch,
    cfg: &ConformConfig,
) -> ScenarioReport {
    let _chaos = cfg.chaos.then(|| ChaosLoad::start(3));
    let run_cfg = ScenarioConfig {
        dispatch,
        trace: true,
        faults: cfg.faults.clone(),
    };
    let collect = || Artifacts::collect(sc.name, dispatch, &(sc.run)(&run_cfg));
    let baseline = collect();
    let mut replicas_run = 1;
    for r in 1..cfg.replicas.max(1) {
        let replica = collect();
        replicas_run += 1;
        if let Some(d) = compare(&baseline, &replica, Scope::Full) {
            return ScenarioReport {
                scenario: sc.name,
                dispatch,
                replicas_run,
                divergence: Some((r, d)),
            };
        }
    }
    ScenarioReport {
        scenario: sc.name,
        dispatch,
        replicas_run,
        divergence: None,
    }
}

/// Runs a scenario once under each dispatch mode and compares the
/// bundles in [`Scope::CrossDispatch`] (vehicle counters and trace
/// check-in boundaries excluded — everything else must match).
pub fn cross_dispatch_check(sc: &Scenario) -> Option<Divergence> {
    let run = |dispatch| {
        Artifacts::collect(
            sc.name,
            dispatch,
            &(sc.run)(&ScenarioConfig::traced(dispatch)),
        )
    };
    let inline = run(VmDispatch::Inline);
    let threaded = run(VmDispatch::Threaded);
    compare(&inline, &threaded, Scope::CrossDispatch)
}

/// Conforms every registered scenario under both dispatch modes.
pub fn conform_all(cfg: &ConformConfig) -> Vec<ScenarioReport> {
    let mut reports = Vec::new();
    for sc in registry() {
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            reports.push(conform_scenario(&sc, dispatch, cfg));
        }
    }
    reports
}

// ---------------------------------------------------------------------
// Crash-recovery conformance.
// ---------------------------------------------------------------------

/// The result of one crash-recovery check: oracle run, injected kill,
/// checkpoint restore, suffix resume, bundle comparison.
pub struct RecoveryReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Dispatch mode of both the oracle and the crashed run.
    pub dispatch: VmDispatch,
    /// Root syscall ordinal the kernel was killed at.
    pub kill_at: u64,
    /// Trace-event boundary the recovery restored from.
    pub boundary: usize,
    /// Total events in the oracle trace.
    pub trace_len: usize,
    /// A structural failure (kill did not fire, checkpoint rejected,
    /// resume errored) — distinct from a localized divergence.
    pub error: Option<String>,
    /// The localized divergence between the recovered bundle and the
    /// uninterrupted run's, if any.
    pub divergence: Option<Divergence>,
}

impl RecoveryReport {
    /// True when recovery reproduced the uninterrupted run exactly.
    pub fn conforms(&self) -> bool {
        self.error.is_none() && self.divergence.is_none()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let tag = format!(
            "{} [{:?}] kill@{} restore@{}/{}",
            self.scenario, self.dispatch, self.kill_at, self.boundary, self.trace_len
        );
        match (&self.error, &self.divergence) {
            (Some(e), _) => format!("ERROR {tag}: {e}"),
            (None, Some(d)) => {
                format!("DIVERGED {tag}: {} at byte {}", d.category.name(), d.offset)
            }
            (None, None) => format!("PASS {tag}"),
        }
    }

    /// The full report text (empty when conforming).
    pub fn report(&self) -> String {
        match (&self.error, &self.divergence) {
            (Some(e), _) => format!("{}\n{e}\n", self.summary()),
            (None, Some(d)) => d.report(self.scenario, "uninterrupted", "recovered"),
            (None, None) => String::new(),
        }
    }
}

/// Counts the *root* space's syscalls in a recorded trace — the same
/// ordinal sequence the fault engine's per-space syscall counter
/// produces for lineage path `/`. A fused `PutGet` is one syscall (it
/// records a fused `Put` + `Get` pair; the pair is counted at its
/// `Put` half).
pub fn root_syscalls(trace: &Trace) -> u64 {
    trace
        .events
        .iter()
        .filter(|ev| match ev {
            TraceEvent::Put { caller, .. } => *caller == 0,
            TraceEvent::Get { caller, fused, .. } => *caller == 0 && !fused,
            TraceEvent::DevRead { .. }
            | TraceEvent::DevWrite { .. }
            | TraceEvent::Checkpoint { .. } => true,
            _ => false,
        })
        .count() as u64
}

/// The oracle-trace event index at which the root's `nth` syscall
/// (0-based, in [`root_syscalls`] numbering) was recorded —
/// approximately where a kill at that ordinal cuts the run.
fn root_syscall_event_index(trace: &Trace, nth: u64) -> usize {
    let mut seen = 0u64;
    for (i, ev) in trace.events.iter().enumerate() {
        let is_root_syscall = match ev {
            TraceEvent::Put { caller, .. } => *caller == 0,
            TraceEvent::Get { caller, fused, .. } => *caller == 0 && !fused,
            TraceEvent::DevRead { .. }
            | TraceEvent::DevWrite { .. }
            | TraceEvent::Checkpoint { .. } => true,
            _ => false,
        };
        if is_root_syscall {
            if seen == nth {
                return i;
            }
            seen += 1;
        }
    }
    trace.events.len()
}

/// Runs the crash-recovery conformance check for one scenario under
/// one dispatch mode:
///
/// 1. an uninterrupted **oracle** run is recorded and bundled;
/// 2. a second run is **killed** by an injected fault at root syscall
///    `kill_at` (default: the midpoint), and its crash log is checked
///    to be a replayable trace prefix;
/// 3. a checkpoint is captured at the latest restorable boundary at
///    or before the kill point, round-tripped through its byte
///    encoding (digest verified), **restored**, and resumed over the
///    oracle trace's suffix;
/// 4. the recovered bundle must be byte-identical ([`Scope::Full`])
///    to the oracle's.
pub fn crash_recovery_check(
    sc: &Scenario,
    dispatch: VmDispatch,
    kill_at: Option<u64>,
) -> RecoveryReport {
    let mut report = RecoveryReport {
        scenario: sc.name,
        dispatch,
        kill_at: 0,
        boundary: 0,
        trace_len: 0,
        error: None,
        divergence: None,
    };
    fn fail(r: &mut RecoveryReport, msg: String) {
        r.error = Some(msg);
    }

    // 1. Oracle.
    let oracle = (sc.run)(&ScenarioConfig::traced(dispatch));
    let baseline = Artifacts::collect(sc.name, dispatch, &oracle);
    let Some(trace) = oracle.trace else {
        fail(&mut report, "scenario records no trace".to_string());
        return report;
    };
    report.trace_len = trace.events.len();

    // 2. Kill a replica at a root syscall that provably exists.
    let total = root_syscalls(&trace);
    if total == 0 {
        fail(&mut report, "root made no syscalls to kill at".to_string());
        return report;
    }
    let kill = kill_at.unwrap_or(total / 2).min(total - 1);
    report.kill_at = kill;
    let crashed = (sc.run)(&ScenarioConfig {
        dispatch,
        trace: true,
        faults: FaultPlan::kill_at_syscall(kill),
    });
    if crashed.outcome.exit.is_ok() {
        fail(
            &mut report,
            format!(
                "kill at root syscall {kill} did not take the run down \
                 (exit {:?})",
                crashed.outcome.exit
            ),
        );
        return report;
    }
    // The crash log must itself be a structurally valid trace prefix:
    // a crash truncates history, it never corrupts it.
    if let Some(crash_log) = &crashed.trace {
        if let Err(e) = crash_log.replay_prefix() {
            fail(&mut report, format!("crash log does not replay: {e:?}"));
            return report;
        }
    }

    // 3. Restore from the latest restorable boundary at the kill.
    let cut = root_syscall_event_index(&trace, kill);
    let boundary = latest_restorable_boundary(&trace, cut);
    report.boundary = boundary;
    let ckpt = match Checkpoint::capture(&trace, boundary) {
        Ok(c) => c,
        Err(e) => {
            fail(&mut report, format!("checkpoint capture failed: {e:?}"));
            return report;
        }
    };
    // Round-trip through the byte encoding — the form a real recovery
    // loads from disk — so the digest and version checks are on-path.
    let ckpt = match Checkpoint::from_bytes(&ckpt.to_bytes()) {
        Ok(c) => c,
        Err(e) => {
            fail(&mut report, format!("checkpoint bytes rejected: {e:?}"));
            return report;
        }
    };
    let resumed = ckpt
        .restore()
        .and_then(|r| r.resume(&trace.events[boundary..]));
    let out = match resumed {
        Ok(o) => o,
        Err(e) => {
            fail(&mut report, format!("restore/resume failed: {e:?}"));
            return report;
        }
    };

    // 4. Byte-identical bundle or a localized divergence.
    let recovered = Artifacts::from_recovery(sc.name, dispatch, &out, &trace);
    report.divergence = compare(&baseline, &recovered, Scope::Full);
    report
}

/// Runs crash-recovery conformance for every traceable registered
/// scenario under both dispatch modes.
pub fn recover_all(kill_at: Option<u64>) -> Vec<RecoveryReport> {
    let mut reports = Vec::new();
    for sc in registry() {
        if !sc.traceable {
            continue;
        }
        for dispatch in [VmDispatch::Inline, VmDispatch::Threaded] {
            reports.push(crash_recovery_check(&sc, dispatch, kill_at));
        }
    }
    reports
}
