//! The scenario registry: every example and workload as a
//! library-callable fixture.
//!
//! A [`Scenario`] is a named, deterministic computation that the
//! conformance harness can run any number of times under any
//! [`VmDispatch`] and host load, producing a [`det_kernel::RunOutcome`]
//! (and, when requested, a syscall-level [`det_kernel::Trace`]). The
//! bodies mirror the repository's `examples/` and the det-workloads
//! benchmarks at test-sized parameters; anything the examples print is
//! routed through the console device so it lands in the artifact
//! bundle instead of bypassing the kernel via host stdout.

use det_kernel::{
    CopySpec, DeviceId, FaultPlan, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec,
    Region, Regs, RunOutcome, StopReason, Trace, TraceSink, VmDispatch,
};
use det_memory::Perm;
use det_runtime::proc::{ProgramRegistry, run_process_tree};
use det_runtime::threads::ThreadGroup;
use det_runtime::{run_deterministic, shell};
use det_workloads::{Mode, blackscholes, dist, fft, lu, matmult, md5, qsort, sharded};

/// How the harness wants a scenario executed.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Execution-vehicle policy for VM spaces.
    pub dispatch: VmDispatch,
    /// Record a syscall trace (ignored for untraceable scenarios).
    pub trace: bool,
    /// Deterministic faults to inject (empty = run clean).
    pub faults: FaultPlan,
}

impl ScenarioConfig {
    /// A clean traced run under the given dispatch mode.
    pub fn traced(dispatch: VmDispatch) -> ScenarioConfig {
        ScenarioConfig {
            dispatch,
            trace: true,
            faults: FaultPlan::default(),
        }
    }
}

/// One execution of a scenario.
pub struct ScenarioRun {
    /// The run's outcome (exit, clocks, stats, outputs, artifacts).
    pub outcome: RunOutcome,
    /// The syscall trace, when recording was requested and supported.
    pub trace: Option<Trace>,
}

/// A registered conformance fixture.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Unique name (stable across runs; keys CI reports).
    pub name: &'static str,
    /// False for scenarios that cannot record a trace (e.g. cluster
    /// runs, whose migration hooks are host-driven).
    pub traceable: bool,
    /// Runs the scenario under the given configuration.
    pub run: fn(&ScenarioConfig) -> ScenarioRun,
}

/// Builds a kernel configuration (and optional sink) for a scenario
/// and wraps the outcome.
fn run_scenario(
    cfg: &ScenarioConfig,
    traceable: bool,
    f: impl FnOnce(KernelConfig) -> RunOutcome,
) -> ScenarioRun {
    let sink = if cfg.trace && traceable {
        Some(TraceSink::new())
    } else {
        None
    };
    let mut b = KernelConfig::builder()
        .vm_dispatch(cfg.dispatch)
        .faults(cfg.faults.clone());
    if let Some(s) = &sink {
        b = b.trace(s.clone());
    }
    let outcome = f(b.build());
    ScenarioRun {
        outcome,
        trace: sink.and_then(|s| s.collect()),
    }
}

// ---------------------------------------------------------------------
// Example-derived scenarios.
// ---------------------------------------------------------------------

/// `examples/quickstart.rs`: race-free swap, then a *detected*
/// write/write conflict.
fn quickstart_swap(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let shared = Region::new(0x1000, 0x2000);
        let (x, y) = (0x1000u64, 0x1008u64);
        Kernel::new(kc).run(move |ctx| {
            ctx.mem_mut().map_zero(shared, Perm::RW)?;
            ctx.mem_mut().write_u64(x, 1)?;
            ctx.mem_mut().write_u64(y, 2)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        let v = c.mem().read_u64(y)?;
                        c.mem_mut().write_u64(x, v)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(shared))
                    .snap()
                    .start(),
            )?;
            ctx.put(
                1,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        let v = c.mem().read_u64(x)?;
                        c.mem_mut().write_u64(y, v)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(shared))
                    .snap()
                    .start(),
            )?;
            ctx.get(0, GetSpec::new().merge(shared))?;
            ctx.get(1, GetSpec::new().merge(shared))?;
            let line = format!(
                "swap: x = {}, y = {}\n",
                ctx.mem().read_u64(x)?,
                ctx.mem().read_u64(y)?
            );
            ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            // Checkpoint mark: a crash past here recovers from this
            // rendezvous boundary instead of replaying from scratch.
            ctx.checkpoint()?;
            for i in 0..2u64 {
                ctx.put(
                    10 + i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            c.mem_mut().write_u64(0x1010, 100 + i)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(shared))
                        .snap()
                        .start(),
                )?;
            }
            ctx.get(10, GetSpec::new().merge(shared))?;
            match ctx.get(11, GetSpec::new().merge(shared)) {
                Err(KernelError::Conflict(c)) => {
                    let line = format!(
                        "conflict at 0x{:x}: child {} vs sibling {}\n",
                        c.addr, c.child, c.parent
                    );
                    ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
                }
                other => panic!("expected a conflict, got {other:?}"),
            }
            Ok(0)
        })
    })
}

/// `examples/actors.rs` at test size: the Figure 1 lock-step actor
/// simulation.
fn actors_grid(cfg: &ScenarioConfig) -> ScenarioRun {
    const NACTORS: u64 = 8;
    const STEPS: usize = 4;
    const SHARED: Region = Region {
        start: 0x1000_0000,
        end: 0x1000_0000 + 0x1000,
    };
    fn slot(i: u64) -> u64 {
        SHARED.start + (i % NACTORS) * 8
    }
    run_scenario(cfg, true, |kc| {
        run_deterministic(kc, |ctx| {
            ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
            for i in 0..NACTORS {
                ctx.mem_mut().write_u64(slot(i), i * i % 97)?;
            }
            for time in 0..STEPS {
                let mut group = ThreadGroup::new(ctx, SHARED, 0);
                for i in 0..NACTORS {
                    group.fork(i, move |c| {
                        let left = c.mem().read_u64(slot(i + NACTORS - 1))?;
                        let right = c.mem().read_u64(slot(i + 1))?;
                        let me = c.mem().read_u64(slot(i))?;
                        c.mem_mut()
                            .write_u64(slot(i), (left + right + me) % 1_000_003)?;
                        c.charge(250)?;
                        Ok(0)
                    })?;
                }
                for i in 0..NACTORS {
                    group.join(i)?;
                }
                let sample: Vec<u64> = (0..4)
                    .map(|i| ctx.mem().read_u64(slot(i)).unwrap())
                    .collect();
                let line = format!("t={time}: actors[0..4] = {sample:?}\n");
                ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            }
            Ok((ctx.mem().content_digest().value() & 0x7fff_ffff) as i32)
        })
    })
}

/// `examples/vm_sandbox.rs`: an untrusted VM guest preempted at exact
/// instruction counts.
fn vm_sandbox(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let image = det_vm::assemble(det_vm::corpus::FIB_PREEMPT).expect("assembles");
        let code = Region::new(0, 0x1000);
        Kernel::new(kc).run(move |ctx| {
            ctx.mem_mut().map_zero(code, Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(code))
                    .regs(Regs::at_entry(0))
                    .start_limited(1_000),
            )?;
            for quantum in 1..=3 {
                let r = ctx.get(0, GetSpec::new().regs())?;
                assert_eq!(r.stop, StopReason::LimitReached);
                let regs = r.regs.expect("requested");
                let line = format!(
                    "quantum {quantum}: r5={} fib={}\n",
                    regs.gpr[5], regs.gpr[3]
                );
                ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
                ctx.put(0, PutSpec::new().start_limited(1_000))?;
            }
            let r = ctx.get(0, GetSpec::new().regs())?;
            let line = format!("quantum 4: r5={}\n", r.regs.expect("requested").gpr[5]);
            ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            Ok(0)
        })
    })
}

/// Two VM children streaming counter values to the parent through a
/// `Ret` loop (exercises the inline-vs-threaded dispatch paths
/// symmetrically).
fn vm_counter_stream(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let image = det_vm::assemble(det_vm::corpus::COUNTER_STREAM).expect("assembles");
        Kernel::new(kc).run(move |ctx| {
            ctx.mem_mut().map_zero(Region::new(0, 0x3000), Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            for i in 0..2u64 {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::Vm)
                        .copy(CopySpec::mirror(Region::new(0, 0x3000)))
                        .regs(Regs::at_entry(0))
                        .start(),
                )?;
            }
            for i in 0..2u64 {
                loop {
                    let r = ctx.get(
                        i,
                        GetSpec::new().copy(CopySpec {
                            src: Region::new(0x2000, 0x3000),
                            dst: 0x8000 + i * 0x1000,
                        }),
                    )?;
                    match r.stop {
                        StopReason::Ret => ctx.put(i, PutSpec::new().start())?,
                        StopReason::Halted => break,
                        other => panic!("unexpected stop {other:?}"),
                    };
                }
            }
            Ok((ctx.mem().content_digest().value() & 0x7fff_ffff) as i32)
        })
    })
}

/// `examples/parallel_make.rs`: forked compiler processes, private
/// file-system replicas, deterministic `wait()`.
fn parallel_make(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let tasks = [("lexer.o", 6u64), ("parser.o", 2), ("emit.o", 4)];
        run_process_tree(kc, ProgramRegistry::new(), move |p| {
            let mut running = Vec::new();
            for &(name, ms) in &tasks[..2] {
                let pid = p.fork(move |c| {
                    c.charge(ms * 1_000_000)?;
                    let fd = c.open_write(&format!("obj/{name}"))?;
                    c.write(fd, format!("compiled {name} in {ms}ms").as_bytes())?;
                    Ok(0)
                })?;
                running.push(pid);
                p.print(&format!("started compile of {name} ({ms} ms)\n"))?;
            }
            let (first, _) = p.wait()?;
            p.print(&format!("wait() returned pid {}\n", first.0))?;
            let (name, ms) = tasks[2];
            p.fork(move |c| {
                c.charge(ms * 1_000_000)?;
                let fd = c.open_write(&format!("obj/{name}"))?;
                c.write(fd, format!("compiled {name} in {ms}ms").as_bytes())?;
                Ok(0)
            })?;
            p.print(&format!("started compile of {name} ({ms} ms)\n"))?;
            while p.has_children() {
                p.wait()?;
            }
            for f in p.fs().list("obj/") {
                let fd = p.open_read(&f)?;
                let data = p.read_to_end(fd)?;
                p.print(&format!("{f}: {}\n", String::from_utf8_lossy(&data)))?;
            }
            Ok(0)
        })
    })
}

/// `examples/shell_demo.rs`: the scripted shell with a pipeline,
/// redirection, and an exec'd user program.
fn shell_pipeline(cfg: &ScenarioConfig) -> ScenarioRun {
    const SCRIPT: &str = "
echo the quick brown fox > corpus.txt
echo jumps over the lazy dog >> corpus.txt
cat corpus.txt | wc > stats.txt
cat stats.txt
ls
upper corpus.txt
";
    run_scenario(cfg, true, |kc| {
        let mut reg = ProgramRegistry::new();
        reg.register("upper", |p, args| {
            let path = args.first().cloned().unwrap_or_default();
            let fd = p.open_read(&path)?;
            let data = p.read_to_end(fd)?;
            let upper: Vec<u8> = data.iter().map(|b| b.to_ascii_uppercase()).collect();
            p.write(1, &upper)?;
            Ok(0)
        });
        run_process_tree(kc, reg, |p| shell::run_script(p, SCRIPT))
    })
}

/// `tests/determinism.rs`'s rendezvous storm at test size: children
/// driven through many park/resume roundtrips including the fused
/// `PutGet` exchange.
fn rendezvous_storm(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let region = Region::new(0x1000, 0x5000);
        Kernel::new(kc).run(move |ctx| {
            ctx.mem_mut().map_zero(region, Perm::RW)?;
            const N: u64 = 4;
            const ROUNDS: u64 = 6;
            for i in 0..N {
                ctx.put(
                    i,
                    PutSpec::new()
                        .program(Program::native(move |c| {
                            for round in 0..ROUNDS {
                                c.mem_mut().write_u64(0x2000 + i * 8, round * N + i)?;
                                c.ret(round)?;
                            }
                            Ok(i as i32)
                        }))
                        .copy(CopySpec::mirror(region))
                        .snap()
                        .start(),
                )?;
            }
            for round in 0..ROUNDS {
                for i in 0..N {
                    let r = if round == 0 {
                        ctx.get(i, GetSpec::new().merge(region))?
                    } else {
                        ctx.put_get(
                            i,
                            PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                            GetSpec::new().merge(region),
                        )?
                    };
                    assert_eq!(r.stop, StopReason::Ret);
                }
                // One checkpoint mark per round: recovery restores the
                // latest completed round instead of replaying them all.
                ctx.checkpoint()?;
            }
            for i in 0..N {
                let r = ctx.put_get(
                    i,
                    PutSpec::new().copy(CopySpec::mirror(region)).snap().start(),
                    GetSpec::new().merge(region),
                )?;
                assert_eq!((r.stop, r.code), (StopReason::Halted, i));
            }
            let digest = ctx.mem().content_digest().value();
            let line = format!("storm digest: {digest:#x}\n");
            ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            Ok(0)
        })
    })
}

/// Root-only device I/O: host-pushed console input plus the
/// synthesized clock and entropy sources, echoed back out.
fn device_io(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let k = Kernel::new(kc);
        k.push_input(DeviceId::ConsoleIn, b"determinator\n".to_vec());
        k.run(|ctx| {
            let line = ctx.dev_read(DeviceId::ConsoleIn)?.unwrap_or_default();
            ctx.dev_write(DeviceId::ConsoleOut, b"echo: ")?;
            ctx.dev_write(DeviceId::ConsoleOut, &line)?;
            // Checkpoint mark between the echo and the clock/entropy
            // loop: recovery re-feeds only the suffix's device inputs.
            ctx.checkpoint()?;
            for _ in 0..3 {
                let clock = ctx.dev_read(DeviceId::Clock)?.unwrap_or_default();
                let rand = ctx.dev_read(DeviceId::Random)?.unwrap_or_default();
                let line = format!(
                    "clock={:02x?} random={:02x?}\n",
                    &clock[..clock.len().min(8)],
                    &rand[..rand.len().min(8)]
                );
                ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            }
            let empty = ctx.dev_read(DeviceId::ConsoleIn)?;
            assert_eq!(empty, None, "input queue drained");
            Ok(0)
        })
    })
}

// ---------------------------------------------------------------------
// Workload-derived scenarios (det-workloads at test sizes).
// ---------------------------------------------------------------------

/// md5 brute-force search (fork/join tree).
fn wl_md5(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| md5::outcome(kc, md5::Md5Config::quick(3)))
}

/// Blocked matrix multiply.
fn wl_matmult(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        matmult::outcome(kc, matmult::MatmultConfig { threads: 3, n: 24 })
    })
}

/// Recursive fork/join quicksort.
fn wl_qsort(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        qsort::outcome(kc, qsort::QsortConfig { depth: 2, n: 512 })
    })
}

/// Iterative radix-2 FFT.
fn wl_fft(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        fft::outcome(
            kc,
            fft::FftConfig {
                threads: 3,
                log2n: 7,
            },
        )
    })
}

/// LU decomposition (contiguous row blocks).
fn wl_lu(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        lu::outcome(
            kc,
            lu::LuConfig {
                threads: 2,
                n: 16,
                layout: lu::Layout::Contiguous,
            },
        )
    })
}

/// blackscholes under the deterministic scheduler.
fn wl_blackscholes(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        blackscholes::outcome(
            kc,
            Mode::Determinator,
            blackscholes::BsConfig {
                threads: 2,
                options: 512,
                quantum_ns: 100_000,
            },
        )
    })
}

/// The corpus quicksort (`det_vm::corpus::QSORT_SORT`) as a VM child:
/// LCG-fill, iterative in-place sort with an explicit range stack,
/// sortedness sweep, halt. The branchy, data-dependent guest the
/// static analyzer's soundness gate leans on — running it here keeps
/// the conformance suite and the gate exercising the same image.
fn wl_vm_qsort(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, true, |kc| {
        let image = det_vm::assemble(det_vm::corpus::QSORT_SORT).expect("assembles");
        let guest = Region::new(0, 0x10000);
        Kernel::new(kc).run(move |ctx| {
            ctx.mem_mut().map_zero(guest, Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(guest))
                    .regs(Regs::at_entry(0))
                    .snap()
                    .start(),
            )?;
            let r = ctx.get(0, GetSpec::new().merge(guest))?;
            assert_eq!(r.stop, StopReason::Halted);
            let sorted = ctx.mem().read_u64(0x8800)?;
            assert_eq!(sorted, 1, "guest's sortedness sweep failed");
            let (first, last) = (ctx.mem().read_u64(0x8000)?, ctx.mem().read_u64(0x81f8)?);
            assert!(first <= last, "array not sorted at the endpoints");
            let line = format!("qsort: sorted=1 a[0]={first:#x} a[63]={last:#x}\n");
            ctx.dev_write(DeviceId::ConsoleOut, line.as_bytes())?;
            Ok((ctx.mem().content_digest().value() & 0x7fff_ffff) as i32)
        })
    })
}

/// md5-tree on a simulated 4-node cluster. Untraceable: cluster
/// migration hooks are host-driven and incompatible with recording.
fn dist_md5_tree(cfg: &ScenarioConfig) -> ScenarioRun {
    run_scenario(cfg, false, |kc| {
        dist::md5_tree_outcome(
            kc,
            dist::DistConfig {
                nodes: 4,
                size: 2_000,
                tcp_like: false,
            },
        )
    })
}

// ---------------------------------------------------------------------
// Real-thread shard-cluster scenarios.
// ---------------------------------------------------------------------

/// Wraps a `det_workloads::sharded` workload (real OS-thread shard
/// cluster, `det_cluster::ClusterSpec`) as a scenario. The migration
/// hooks are host-driven, so no syscall trace can be recorded; the
/// replica-compared outcome is the root kernel's with the
/// cluster-wide aggregate statistics swapped in (their vehicle fields
/// still land in the harness's quarantined `[stats-vehicle]` section)
/// and the dispatch-invariant `[cluster]`/`[jobs]` bundle sections
/// appended to the console stream, so every traffic counter and
/// per-job artifact participates in the byte comparison.
fn cluster_scenario(
    cfg: &ScenarioConfig,
    nodes: u16,
    size: u64,
    run: fn(sharded::ShardedConfig) -> sharded::ShardedResult,
) -> ScenarioRun {
    let r = run(sharded::ShardedConfig {
        nodes,
        shards: 3,
        size,
        dispatch: cfg.dispatch,
        faults: cfg.faults.clone(),
    });
    let sections = r.outcome.cluster_sections();
    let stats = r.outcome.stats.clone();
    let mut outcome = r.outcome.root;
    outcome.stats = stats;
    outcome
        .outputs
        .entry(DeviceId::ConsoleOut)
        .or_default()
        .extend_from_slice(&sections);
    ScenarioRun {
        outcome,
        trace: None,
    }
}

/// Remote fork fan-out: one md5-scanning job per logical node, pulled
/// onto its home shard by leaf migration, joined and folded at the
/// root.
fn cluster_fork_fanout(cfg: &ScenarioConfig) -> ScenarioRun {
    cluster_scenario(cfg, 4, 800, sharded::md5_scan)
}

/// Cross-shard migration storm: rounds of fork/join against every
/// non-root node, each job running a det-vm child inside its own job
/// kernel — migration traffic dominates and the dispatch vehicle is
/// exercised on every shard.
fn cluster_migration_storm(cfg: &ScenarioConfig) -> ScenarioRun {
    cluster_scenario(cfg, 4, 3, sharded::migration_storm)
}

/// Footprint-hinted migration: the root statically analyzes each
/// job's VM kernel (entry registers resolving its slot pointer) and
/// forks with the proven page set as the leaf-pull prefetch hint. The
/// replica comparison covers the `[cluster]` traffic counters, so a
/// hint that drifted across dispatch modes or replicas would surface
/// as a byte diff.
fn cluster_vm_prefetch(cfg: &ScenarioConfig) -> ScenarioRun {
    cluster_scenario(cfg, 4, 1_600, |c| sharded::vm_prefetch(c, true))
}

/// All registered scenarios, in a fixed order.
pub fn registry() -> Vec<Scenario> {
    fn s(name: &'static str, traceable: bool, run: fn(&ScenarioConfig) -> ScenarioRun) -> Scenario {
        Scenario {
            name,
            traceable,
            run,
        }
    }
    vec![
        s("quickstart_swap", true, quickstart_swap),
        s("actors_grid", true, actors_grid),
        s("vm_sandbox", true, vm_sandbox),
        s("vm_counter_stream", true, vm_counter_stream),
        s("parallel_make", true, parallel_make),
        s("shell_pipeline", true, shell_pipeline),
        s("rendezvous_storm", true, rendezvous_storm),
        s("device_io", true, device_io),
        s("wl_md5", true, wl_md5),
        s("wl_matmult", true, wl_matmult),
        s("wl_qsort", true, wl_qsort),
        s("wl_fft", true, wl_fft),
        s("wl_lu", true, wl_lu),
        s("wl_blackscholes", true, wl_blackscholes),
        s("wl_vm_qsort", true, wl_vm_qsort),
        s("dist_md5_tree", false, dist_md5_tree),
        s("cluster_fork_fanout", false, cluster_fork_fanout),
        s("cluster_migration_storm", false, cluster_migration_storm),
        s("cluster_vm_prefetch", false, cluster_vm_prefetch),
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}
