//! The conformance driver: runs registered scenarios as N replicas,
//! compares artifact bundles byte-for-byte, and writes divergence
//! reports.
//!
//! ```sh
//! conform --replicas 3                  # CI gate
//! conform --replicas 10 --chaos         # nightly
//! conform --scenario wl_md5 --dispatch inline
//! conform --cross-dispatch              # Inline vs Threaded equality
//! conform --recover                     # kill + restore + compare
//! conform --recover --kill-at 7         # kill at root syscall 7
//! conform --fault fail@device           # replicas under injected faults
//! conform --list
//! ```
//!
//! Exit codes: 0 on full conformance, **2 on any divergence or
//! recovery failure** (the CI gate keys on this), 64 on usage errors.
//! With `--report-dir DIR` (created if missing) each divergence report
//! is also written to `DIR/<scenario>-<dispatch>.txt`.

use std::process::ExitCode;

use det_conform::{
    ConformConfig, ScenarioReport, conform_scenario, crash_recovery_check, cross_dispatch_check,
    registry,
};
use det_kernel::{FaultPlan, VmDispatch};

struct Args {
    replicas: usize,
    chaos: bool,
    dispatches: Vec<VmDispatch>,
    scenarios: Vec<String>,
    report_dir: Option<String>,
    cross_dispatch: bool,
    recover: bool,
    kill_at: Option<u64>,
    faults: FaultPlan,
    list: bool,
}

/// Usage errors exit 64 (EX_USAGE), distinct from the divergence
/// gate's exit 2: a CI job must never mistake a typo for a pass *or*
/// for a nondeterminism bug.
fn usage() -> ! {
    eprintln!(
        "usage: conform [--replicas N] [--chaos|--no-chaos] \
         [--dispatch inline|threaded|both] [--scenario NAME]... \
         [--report-dir DIR] [--cross-dispatch] \
         [--recover] [--kill-at N] [--fault SPEC]... [--list]\n\
         fault SPEC: <kill|panic|fail>@<syscall|device|trace|alloc>\
         [:path=/..][:n=N][:vt=PS]"
    );
    std::process::exit(64)
}

fn parse_args() -> Args {
    let mut args = Args {
        replicas: 3,
        chaos: false,
        dispatches: vec![VmDispatch::Inline, VmDispatch::Threaded],
        scenarios: Vec::new(),
        report_dir: None,
        cross_dispatch: false,
        recover: false,
        kill_at: None,
        faults: FaultPlan::default(),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--replicas" => {
                args.replicas = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chaos" => args.chaos = true,
            "--no-chaos" => args.chaos = false,
            "--dispatch" => {
                args.dispatches = match it.next().as_deref() {
                    Some("inline") => vec![VmDispatch::Inline],
                    Some("threaded") => vec![VmDispatch::Threaded],
                    Some("both") => vec![VmDispatch::Inline, VmDispatch::Threaded],
                    _ => usage(),
                };
            }
            "--scenario" => match it.next() {
                Some(name) => args.scenarios.push(name),
                None => usage(),
            },
            "--report-dir" => args.report_dir = it.next().or_else(|| usage()),
            "--cross-dispatch" => args.cross_dispatch = true,
            "--recover" => args.recover = true,
            "--kill-at" => {
                args.kill_at = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fault" => match it.next().as_deref().map(FaultPlan::parse) {
                Some(Ok(f)) => args.faults = args.faults.clone().with(f),
                Some(Err(e)) => {
                    eprintln!("bad --fault spec: {e}");
                    usage()
                }
                None => usage(),
            },
            "--list" => args.list = true,
            _ => usage(),
        }
    }
    args
}

fn write_report(dir: &Option<String>, name: &str, text: &str) {
    let Some(dir) = dir else { return };
    let path = format!("{dir}/{name}.txt");
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    // Create the report directory up front: CI uploads it whether or
    // not anything diverged, and an absent path fails the upload step.
    if let Some(dir) = &args.report_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --report-dir {dir}: {e}");
            return ExitCode::from(64);
        }
    }
    let all = registry();
    if args.list {
        for sc in &all {
            println!(
                "{}{}",
                sc.name,
                if sc.traceable { "" } else { " (untraceable)" }
            );
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<_> = if args.scenarios.is_empty() {
        all
    } else {
        args.scenarios
            .iter()
            .map(|n| {
                det_conform::find(n).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {n}");
                    std::process::exit(64)
                })
            })
            .collect()
    };

    let cfg = ConformConfig {
        replicas: args.replicas,
        chaos: args.chaos,
        faults: args.faults.clone(),
    };
    let mut failed = false;

    if args.recover || args.kill_at.is_some() {
        for sc in &selected {
            if !sc.traceable {
                println!("SKIP {} (untraceable)", sc.name);
                continue;
            }
            for &dispatch in &args.dispatches {
                let r = crash_recovery_check(sc, dispatch, args.kill_at);
                println!("{}", r.summary());
                if !r.conforms() {
                    failed = true;
                    let report = r.report();
                    eprint!("{report}");
                    write_report(
                        &args.report_dir,
                        &format!("{}-{:?}-recovery", sc.name, dispatch),
                        &report,
                    );
                }
            }
        }
    } else if args.cross_dispatch {
        for sc in &selected {
            match cross_dispatch_check(sc) {
                None => println!("PASS {} [Inline == Threaded]", sc.name),
                Some(d) => {
                    failed = true;
                    let report = d.report(sc.name, "inline", "threaded");
                    eprint!("{report}");
                    write_report(&args.report_dir, &format!("{}-cross", sc.name), &report);
                }
            }
        }
    } else {
        for sc in &selected {
            for &dispatch in &args.dispatches {
                let r: ScenarioReport = conform_scenario(sc, dispatch, &cfg);
                println!("{}", r.summary());
                if !r.conforms() {
                    failed = true;
                    let report = r.report();
                    eprint!("{report}");
                    write_report(
                        &args.report_dir,
                        &format!("{}-{:?}", sc.name, dispatch),
                        &report,
                    );
                }
            }
        }
    }

    if failed {
        // Exit 2: the divergence gate. CI treats this as "determinism
        // or recovery broken", never as an infrastructure failure.
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
