//! The conformance driver: runs registered scenarios as N replicas,
//! compares artifact bundles byte-for-byte, and writes divergence
//! reports.
//!
//! ```sh
//! conform --replicas 3                  # CI gate
//! conform --replicas 10 --chaos         # nightly
//! conform --scenario wl_md5 --dispatch inline
//! conform --cross-dispatch              # Inline vs Threaded equality
//! conform --list
//! ```
//!
//! Exits nonzero on any divergence; with `--report-dir DIR` each
//! divergence report is also written to
//! `DIR/<scenario>-<dispatch>.txt`.

use std::process::ExitCode;

use det_conform::{
    ConformConfig, ScenarioReport, conform_scenario, cross_dispatch_check, registry,
};
use det_kernel::VmDispatch;

struct Args {
    replicas: usize,
    chaos: bool,
    dispatches: Vec<VmDispatch>,
    scenarios: Vec<String>,
    report_dir: Option<String>,
    cross_dispatch: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: conform [--replicas N] [--chaos|--no-chaos] \
         [--dispatch inline|threaded|both] [--scenario NAME]... \
         [--report-dir DIR] [--cross-dispatch] [--list]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        replicas: 3,
        chaos: false,
        dispatches: vec![VmDispatch::Inline, VmDispatch::Threaded],
        scenarios: Vec::new(),
        report_dir: None,
        cross_dispatch: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--replicas" => {
                args.replicas = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chaos" => args.chaos = true,
            "--no-chaos" => args.chaos = false,
            "--dispatch" => {
                args.dispatches = match it.next().as_deref() {
                    Some("inline") => vec![VmDispatch::Inline],
                    Some("threaded") => vec![VmDispatch::Threaded],
                    Some("both") => vec![VmDispatch::Inline, VmDispatch::Threaded],
                    _ => usage(),
                };
            }
            "--scenario" => match it.next() {
                Some(name) => args.scenarios.push(name),
                None => usage(),
            },
            "--report-dir" => args.report_dir = it.next().or_else(|| usage()),
            "--cross-dispatch" => args.cross_dispatch = true,
            "--list" => args.list = true,
            _ => usage(),
        }
    }
    args
}

fn write_report(dir: &Option<String>, name: &str, text: &str) {
    let Some(dir) = dir else { return };
    if std::fs::create_dir_all(dir).is_ok() {
        let path = format!("{dir}/{name}.txt");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let all = registry();
    if args.list {
        for sc in &all {
            println!(
                "{}{}",
                sc.name,
                if sc.traceable { "" } else { " (untraceable)" }
            );
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<_> = if args.scenarios.is_empty() {
        all
    } else {
        args.scenarios
            .iter()
            .map(|n| {
                det_conform::find(n).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {n}");
                    std::process::exit(2)
                })
            })
            .collect()
    };

    let cfg = ConformConfig {
        replicas: args.replicas,
        chaos: args.chaos,
    };
    let mut failed = false;

    if args.cross_dispatch {
        for sc in &selected {
            match cross_dispatch_check(sc) {
                None => println!("PASS {} [Inline == Threaded]", sc.name),
                Some(d) => {
                    failed = true;
                    let report = d.report(sc.name, "inline", "threaded");
                    eprint!("{report}");
                    write_report(&args.report_dir, &format!("{}-cross", sc.name), &report);
                }
            }
        }
    } else {
        for sc in &selected {
            for &dispatch in &args.dispatches {
                let r: ScenarioReport = conform_scenario(sc, dispatch, &cfg);
                println!("{}", r.summary());
                if !r.conforms() {
                    failed = true;
                    let report = r.report();
                    eprint!("{report}");
                    write_report(
                        &args.report_dir,
                        &format!("{}-{:?}", sc.name, dispatch),
                        &report,
                    );
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
