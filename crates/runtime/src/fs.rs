//! The logically shared, physically replicated file system (§4.2–4.3).
//!
//! Every process holds a complete replica of the file system. `fork`
//! serializes the parent's replica into the child's address-space
//! image; processes then work entirely on their private replicas,
//! which may diverge. When the parent collects a child (`wait` or an
//! I/O rendezvous), it deserializes the child's image from a scratch
//! region and *reconciles* with file versioning [Parker et al. 1983]:
//!
//! * a file changed on one side propagates to the other;
//! * regular files changed on both sides **conflict** — one copy is
//!   kept, the file is poisoned, and later `open`s fail (§4.2);
//! * *append-only* files (console, logs) merge by exchanging the
//!   suffixes each side appended, so concurrent logging never
//!   conflicts and every replica accumulates all writes (§4.3).
//!
//! File data uses [`bytes::Bytes`], so replicas share contents
//! copy-on-write exactly as the kernel shares pages.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::error::{Result, RtError};

/// The console input special file (append-only).
pub const CONSOLE_IN: &str = ".dev/console-in";
/// The console output special file (append-only).
pub const CONSOLE_OUT: &str = ".dev/console-out";

/// One file in a replica.
#[derive(Clone, Debug, PartialEq)]
pub struct File {
    /// Contents.
    pub data: Bytes,
    /// Version counter, bumped on every mutation in this replica.
    pub version: u64,
    /// The version this replica inherited at fork (used by the
    /// parent's reconciliation to detect "changed since fork").
    pub base_version: u64,
    /// Data length at fork (append-only merge needs to know which
    /// suffix is new).
    pub base_len: u64,
    /// Append-only files reconcile by suffix exchange.
    pub append_only: bool,
    /// Set when an unsynchronized concurrent write was detected;
    /// `open` then fails until the file is removed.
    pub conflict: bool,
    /// Tombstone: the file was deleted in this replica.
    pub deleted: bool,
}

impl File {
    fn new(append_only: bool) -> File {
        File {
            data: Bytes::new(),
            version: 1,
            base_version: 0,
            base_len: 0,
            append_only,
            conflict: false,
            deleted: false,
        }
    }

    /// True if this replica modified the file since fork.
    fn changed(&self) -> bool {
        self.version != self.base_version
    }
}

/// A file-system replica.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileSys {
    files: BTreeMap<String, File>,
}

/// Summary of one reconciliation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconcileStats {
    /// Files taken from the child.
    pub taken_from_child: u64,
    /// Files kept from the parent (child unchanged).
    pub kept: u64,
    /// Append-only files whose suffixes were exchanged.
    pub appended: u64,
    /// New conflicts flagged.
    pub conflicts: u64,
}

impl FileSys {
    /// Returns an empty file system with the console special files.
    pub fn with_console() -> FileSys {
        let mut fs = FileSys::default();
        fs.files.insert(CONSOLE_IN.into(), File::new(true));
        fs.files.insert(CONSOLE_OUT.into(), File::new(true));
        fs
    }

    /// Looks a file up (tombstones and missing both yield `None`).
    pub fn lookup(&self, path: &str) -> Option<&File> {
        self.files.get(path).filter(|f| !f.deleted)
    }

    /// Creates or truncates a regular file.
    pub fn create(&mut self, path: &str, append_only: bool) -> Result<()> {
        match self.files.get_mut(path) {
            Some(f) if f.conflict => Err(RtError::Conflicted(path.into())),
            Some(f) => {
                f.data = Bytes::new();
                f.deleted = false;
                f.append_only = append_only;
                f.version += 1;
                Ok(())
            }
            None => {
                self.files.insert(path.into(), File::new(append_only));
                Ok(())
            }
        }
    }

    /// Reads the whole file.
    pub fn read(&self, path: &str) -> Result<Bytes> {
        let f = self
            .files
            .get(path)
            .filter(|f| !f.deleted)
            .ok_or_else(|| RtError::NotFound(path.into()))?;
        if f.conflict {
            return Err(RtError::Conflicted(path.into()));
        }
        Ok(f.data.clone())
    }

    /// Overwrites `data` at byte `offset`, extending the file if
    /// needed (zero-filling any gap).
    pub fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let f = self
            .files
            .get_mut(path)
            .filter(|f| !f.deleted)
            .ok_or_else(|| RtError::NotFound(path.into()))?;
        if f.conflict {
            return Err(RtError::Conflicted(path.into()));
        }
        if f.append_only && offset != f.data.len() as u64 {
            return Err(RtError::BadMode("append-only file requires appending"));
        }
        let mut buf = f.data.to_vec();
        let end = offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[offset as usize..end].copy_from_slice(data);
        f.data = Bytes::from(buf);
        f.version += 1;
        Ok(())
    }

    /// Appends to a file.
    pub fn append(&mut self, path: &str, data: &[u8]) -> Result<()> {
        let len = self
            .files
            .get(path)
            .filter(|f| !f.deleted)
            .ok_or_else(|| RtError::NotFound(path.into()))?
            .data
            .len() as u64;
        self.write_at(path, len, data)
    }

    /// Deletes a file (leaves a tombstone so the deletion reconciles).
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let f = self
            .files
            .get_mut(path)
            .filter(|f| !f.deleted)
            .ok_or_else(|| RtError::NotFound(path.into()))?;
        f.deleted = true;
        f.conflict = false;
        f.data = Bytes::new();
        f.version += 1;
        Ok(())
    }

    /// Lists live paths with the given prefix, in sorted order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .iter()
            .filter(|(p, f)| !f.deleted && p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// True if the file exists and carries a conflict flag.
    pub fn is_conflicted(&self, path: &str) -> bool {
        self.files.get(path).map(|f| f.conflict).unwrap_or(false)
    }

    /// Prepares the image a freshly forked child inherits: every
    /// file's `base_version`/`base_len` snapshot to its current state.
    pub fn fork_image(&self) -> FileSys {
        let mut child = self.clone();
        for f in child.files.values_mut() {
            f.base_version = f.version;
            f.base_len = f.data.len() as u64;
        }
        child
    }

    /// Reconciles a collected child's replica into this one (§4.2).
    pub fn reconcile(&mut self, child: &FileSys) -> ReconcileStats {
        let mut stats = ReconcileStats::default();
        for (path, cf) in &child.files {
            if !cf.changed() {
                stats.kept += 1;
                continue;
            }
            match self.files.get_mut(path) {
                None => {
                    // Child created it. The file did not exist at *this*
                    // replica's own fork point either, so it must stay
                    // marked as changed (base 0) for the next level of
                    // reconciliation — grandchild creations propagate
                    // all the way up the process tree.
                    let mut nf = cf.clone();
                    nf.base_version = 0;
                    nf.base_len = 0;
                    self.files.insert(path.clone(), nf);
                    stats.taken_from_child += 1;
                }
                Some(pf) => {
                    let parent_changed = pf.version != cf.base_version;
                    if cf.append_only && pf.append_only {
                        // Append-only: splice the child's new suffix
                        // onto the parent's copy (§4.3). The parent's
                        // own appends are already in pf.
                        let suffix = &cf.data[cf.base_len as usize..];
                        if !suffix.is_empty() {
                            let mut buf = pf.data.to_vec();
                            buf.extend_from_slice(suffix);
                            pf.data = Bytes::from(buf);
                            pf.version += 1;
                            stats.appended += 1;
                        } else {
                            stats.kept += 1;
                        }
                    } else if !parent_changed {
                        // Only the child changed: take its copy.
                        pf.data = cf.data.clone();
                        pf.deleted = cf.deleted;
                        pf.conflict = cf.conflict;
                        pf.append_only = cf.append_only;
                        pf.version += 1;
                        stats.taken_from_child += 1;
                    } else {
                        // Both changed: conflict. Keep the parent's
                        // copy, poison the file (§4.2).
                        pf.conflict = true;
                        pf.version += 1;
                        stats.conflicts += 1;
                    }
                }
            }
        }
        stats
    }

    /// Serializes the replica to bytes (deterministic layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.files.len() as u64).to_le_bytes());
        for (path, f) in &self.files {
            put_str(&mut out, path);
            out.extend_from_slice(&f.version.to_le_bytes());
            out.extend_from_slice(&f.base_version.to_le_bytes());
            out.extend_from_slice(&f.base_len.to_le_bytes());
            out.push(f.append_only as u8);
            out.push(f.conflict as u8);
            out.push(f.deleted as u8);
            out.extend_from_slice(&(f.data.len() as u64).to_le_bytes());
            out.extend_from_slice(&f.data);
        }
        out
    }

    /// Deserializes a replica.
    pub fn from_bytes(bytes: &[u8]) -> Result<FileSys> {
        let mut rd = Reader { b: bytes, at: 0 };
        if rd.u64()? != MAGIC {
            return Err(RtError::FsImageCorrupt("bad magic"));
        }
        let n = rd.u64()?;
        let mut files = BTreeMap::new();
        for _ in 0..n {
            let path = rd.string()?;
            let version = rd.u64()?;
            let base_version = rd.u64()?;
            let base_len = rd.u64()?;
            let append_only = rd.u8()? != 0;
            let conflict = rd.u8()? != 0;
            let deleted = rd.u8()? != 0;
            let len = rd.u64()? as usize;
            let data = Bytes::copy_from_slice(rd.take(len)?);
            files.insert(
                path,
                File {
                    data,
                    version,
                    base_version,
                    base_len,
                    append_only,
                    conflict,
                    deleted,
                },
            );
        }
        Ok(FileSys { files })
    }
}

const MAGIC: u64 = 0x4445_545f_4653_0001; // "DET_FS" v1.

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.b.len() {
            return Err(RtError::FsImageCorrupt("truncated image"));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u64()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| RtError::FsImageCorrupt("non-utf8 path"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write_roundtrip() {
        let mut fs = FileSys::default();
        fs.create("a.txt", false).unwrap();
        fs.write_at("a.txt", 0, b"hello").unwrap();
        assert_eq!(&fs.read("a.txt").unwrap()[..], b"hello");
        fs.write_at("a.txt", 3, b"LO!").unwrap();
        assert_eq!(&fs.read("a.txt").unwrap()[..], b"helLO!");
        // Gap writes zero-fill.
        fs.write_at("a.txt", 8, b"x").unwrap();
        assert_eq!(&fs.read("a.txt").unwrap()[..], b"helLO!\0\0x");
    }

    #[test]
    fn unlink_leaves_tombstone_that_reconciles() {
        let mut parent = FileSys::default();
        parent.create("tmp", false).unwrap();
        let mut child = parent.fork_image();
        child.unlink("tmp").unwrap();
        assert!(child.read("tmp").is_err());
        parent.reconcile(&child);
        assert!(parent.lookup("tmp").is_none());
    }

    #[test]
    fn child_only_changes_propagate() {
        let mut parent = FileSys::default();
        parent.create("obj/a.o", false).unwrap();
        let mut child = parent.fork_image();
        child.write_at("obj/a.o", 0, b"compiled").unwrap();
        child.create("obj/new.o", false).unwrap();
        child.write_at("obj/new.o", 0, b"fresh").unwrap();
        let stats = parent.reconcile(&child);
        assert_eq!(&parent.read("obj/a.o").unwrap()[..], b"compiled");
        assert_eq!(&parent.read("obj/new.o").unwrap()[..], b"fresh");
        assert_eq!(stats.taken_from_child, 2);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn parent_changes_survive_unchanged_child() {
        let mut parent = FileSys::default();
        parent.create("f", false).unwrap();
        let child = parent.fork_image();
        parent.write_at("f", 0, b"parent").unwrap();
        parent.reconcile(&child);
        assert_eq!(&parent.read("f").unwrap()[..], b"parent");
    }

    #[test]
    fn both_changed_conflicts_and_poisons_open() {
        let mut parent = FileSys::default();
        parent.create("f", false).unwrap();
        let mut child = parent.fork_image();
        parent.write_at("f", 0, b"P").unwrap();
        child.write_at("f", 0, b"C").unwrap();
        let stats = parent.reconcile(&child);
        assert_eq!(stats.conflicts, 1);
        assert!(parent.is_conflicted("f"));
        assert!(matches!(parent.read("f"), Err(RtError::Conflicted(_))));
        // Removal clears the conflict; recreation works.
        parent.unlink("f").unwrap();
        parent.create("f", false).unwrap();
        assert!(parent.read("f").is_ok());
    }

    #[test]
    fn two_siblings_same_file_conflict_at_second_reconcile() {
        let mut parent = FileSys::default();
        parent.create("out", false).unwrap();
        let mut c1 = parent.fork_image();
        let mut c2 = parent.fork_image();
        c1.write_at("out", 0, b"one").unwrap();
        c2.write_at("out", 0, b"two").unwrap();
        assert_eq!(parent.reconcile(&c1).conflicts, 0);
        assert_eq!(parent.reconcile(&c2).conflicts, 1);
        assert!(parent.is_conflicted("out"));
    }

    #[test]
    fn append_only_merges_suffixes_without_conflict() {
        let mut parent = FileSys::with_console();
        parent.append(CONSOLE_OUT, b"boot\n").unwrap();
        let mut c1 = parent.fork_image();
        let mut c2 = parent.fork_image();
        c1.append(CONSOLE_OUT, b"child1\n").unwrap();
        c2.append(CONSOLE_OUT, b"child2\n").unwrap();
        parent.append(CONSOLE_OUT, b"parent\n").unwrap();
        let s1 = parent.reconcile(&c1);
        let s2 = parent.reconcile(&c2);
        assert_eq!((s1.conflicts, s2.conflicts), (0, 0));
        let out = parent.read(CONSOLE_OUT).unwrap();
        let text = std::str::from_utf8(&out).unwrap();
        // All four lines present; parent order deterministic.
        assert_eq!(text, "boot\nparent\nchild1\nchild2\n");
    }

    #[test]
    fn append_only_rejects_random_access() {
        let mut fs = FileSys::with_console();
        // Appending at the current end is fine (offset 0 of empty).
        fs.write_at(CONSOLE_OUT, 0, b"line").unwrap();
        // Rewriting earlier bytes is not.
        assert!(matches!(
            fs.write_at(CONSOLE_OUT, 0, b"x"),
            Err(RtError::BadMode(_))
        ));
    }

    #[test]
    fn nested_fork_levels_accumulate_appends() {
        // Grandchild appends propagate through two reconciliations.
        let mut root = FileSys::with_console();
        let mut mid = root.fork_image();
        let mut leaf = mid.fork_image();
        leaf.append(CONSOLE_OUT, b"leaf\n").unwrap();
        mid.reconcile(&leaf);
        mid.append(CONSOLE_OUT, b"mid\n").unwrap();
        root.reconcile(&mid);
        assert_eq!(&root.read(CONSOLE_OUT).unwrap()[..], b"leaf\nmid\n");
    }

    #[test]
    fn serialization_roundtrip_preserves_everything() {
        let mut fs = FileSys::with_console();
        fs.create("x/y/z", false).unwrap();
        fs.write_at("x/y/z", 0, &[0u8, 1, 255, 3]).unwrap();
        fs.append(CONSOLE_OUT, b"log line").unwrap();
        fs.create("gone", false).unwrap();
        fs.unlink("gone").unwrap();
        let bytes = fs.to_bytes();
        let back = FileSys::from_bytes(&bytes).unwrap();
        assert_eq!(fs, back);
        // Determinism: same fs serializes to the same bytes.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn corrupt_images_rejected() {
        assert!(FileSys::from_bytes(&[1, 2, 3]).is_err());
        let mut bytes = FileSys::default().to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            FileSys::from_bytes(&bytes),
            Err(RtError::FsImageCorrupt("bad magic"))
        ));
        // Truncation detected.
        let mut fs = FileSys::default();
        fs.create("f", false).unwrap();
        fs.write_at("f", 0, b"data").unwrap();
        let good = fs.to_bytes();
        assert!(FileSys::from_bytes(&good[..good.len() - 2]).is_err());
    }

    #[test]
    fn list_filters_prefix_and_tombstones() {
        let mut fs = FileSys::default();
        for p in ["a/1", "a/2", "b/1"] {
            fs.create(p, false).unwrap();
        }
        fs.unlink("a/2").unwrap();
        assert_eq!(fs.list("a/"), vec!["a/1".to_string()]);
        assert_eq!(fs.list("").len(), 2);
    }
}
