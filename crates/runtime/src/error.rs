//! Runtime (user-level) errors.

use det_kernel::{KernelError, TrapKind};

/// Errors surfaced by the Unix-emulation runtime.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum RtError {
    /// Underlying kernel error.
    Kernel(KernelError),
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (exclusive create).
    Exists(String),
    /// The file carries a conflict flag from an unsynchronized
    /// concurrent write (§4.2); it must be removed and regenerated.
    Conflicted(String),
    /// Bad file descriptor.
    BadFd(usize),
    /// Descriptor opened without the needed mode.
    BadMode(&'static str),
    /// No such process.
    NoChild(u32),
    /// A child process stopped with a trap.
    ChildTrapped(TrapKind),
    /// The serialized file system outgrew its address-space region
    /// (the paper's §4.2 size limitation).
    FsImageOverflow {
        /// Bytes required.
        need: u64,
        /// Bytes available.
        cap: u64,
    },
    /// Malformed file-system image bytes.
    FsImageCorrupt(&'static str),
    /// `exec` of an unregistered program.
    NoSuchProgram(String),
    /// Invalid argument.
    Invalid(&'static str),
}

impl From<KernelError> for RtError {
    fn from(e: KernelError) -> RtError {
        RtError::Kernel(e)
    }
}

impl From<det_memory::MemError> for RtError {
    fn from(e: det_memory::MemError) -> RtError {
        RtError::Kernel(KernelError::Mem(e))
    }
}

impl From<RtError> for KernelError {
    fn from(e: RtError) -> KernelError {
        e.into_kernel()
    }
}

impl RtError {
    /// Converts to the kernel error a native program returns, so traps
    /// propagate with their original cause where possible.
    pub fn into_kernel(self) -> KernelError {
        match self {
            RtError::Kernel(e) => e,
            RtError::NotFound(_) => KernelError::InvalidSpec("file not found"),
            RtError::Exists(_) => KernelError::InvalidSpec("file exists"),
            RtError::Conflicted(_) => KernelError::InvalidSpec("file conflicted"),
            RtError::BadFd(_) => KernelError::InvalidSpec("bad file descriptor"),
            RtError::BadMode(m) => KernelError::InvalidSpec(m),
            RtError::NoChild(_) => KernelError::InvalidSpec("no such child"),
            RtError::ChildTrapped(_) => KernelError::InvalidSpec("child trapped"),
            RtError::FsImageOverflow { .. } => KernelError::InvalidSpec("fs image overflow"),
            RtError::FsImageCorrupt(m) => KernelError::InvalidSpec(m),
            RtError::NoSuchProgram(_) => KernelError::InvalidSpec("no such program"),
            RtError::Invalid(m) => KernelError::InvalidSpec(m),
        }
    }
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Kernel(e) => write!(f, "kernel: {e}"),
            RtError::NotFound(p) => write!(f, "not found: {p}"),
            RtError::Exists(p) => write!(f, "already exists: {p}"),
            RtError::Conflicted(p) => write!(f, "conflicted file: {p}"),
            RtError::BadFd(fd) => write!(f, "bad fd {fd}"),
            RtError::BadMode(m) => write!(f, "bad mode: {m}"),
            RtError::NoChild(pid) => write!(f, "no child with pid {pid}"),
            RtError::ChildTrapped(t) => write!(f, "child trapped: {t}"),
            RtError::FsImageOverflow { need, cap } => {
                write!(f, "fs image needs {need} bytes, region holds {cap}")
            }
            RtError::FsImageCorrupt(m) => write!(f, "corrupt fs image: {m}"),
            RtError::NoSuchProgram(p) => write!(f, "no such program: {p}"),
            RtError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let k: RtError = KernelError::NoSnapshot.into();
        assert_eq!(k, RtError::Kernel(KernelError::NoSnapshot));
        assert_eq!(k.into_kernel(), KernelError::NoSnapshot);
        let m: RtError = det_memory::MemError::Unmapped { addr: 4 }.into();
        assert!(matches!(m, RtError::Kernel(KernelError::Mem(_))));
    }

    #[test]
    fn display() {
        assert!(RtError::NotFound("a/b".into()).to_string().contains("a/b"));
        assert!(
            RtError::FsImageOverflow { need: 10, cap: 5 }
                .to_string()
                .contains("10")
        );
    }
}
