//! Determinator's user-level runtime (§4): familiar abstractions
//! rebuilt, race-free, on the three-syscall kernel.
//!
//! Everything here runs in user space on top of
//! [`det_kernel`]: bugs in this crate cannot compromise the kernel's
//! determinism guarantee, and applications are free to replace any of
//! it (§1).
//!
//! * [`proc`] — Unix processes: `fork`/`exec`/`wait` with
//!   process-local PID namespaces (§4.1), file descriptors, and the
//!   parent-mediated console I/O protocol (§4.3).
//! * [`fs`] — the logically shared file system: a replica per
//!   process, reconciled with file versioning at synchronization
//!   points; append-only merge for console/log files (§4.2–4.3).
//! * [`threads`] — shared-memory threads in the private workspace
//!   model: fork/join and barriers via `Snap`/`Merge` (§4.4).
//! * [`dsched`] — a deterministic scheduler emulating mutex/condvar
//!   APIs with quantum preemption and mutex ownership stealing (§4.5).
//! * [`shell`] — a scripted shell with redirection and pipelines (§5).
//!
//! # Examples
//!
//! The paper's Figure 1 pattern — fork a thread per actor, update in
//! place, join, with no data races by construction:
//!
//! ```
//! use det_kernel::KernelConfig;
//! use det_memory::{Perm, Region};
//! use det_runtime::threads::ThreadGroup;
//!
//! let shared = Region::new(0x10000, 0x11000);
//! let out = det_runtime::run_deterministic(KernelConfig::default(), move |ctx| {
//!     ctx.mem_mut().map_zero(shared, Perm::RW)?;
//!     let mut group = ThreadGroup::new(ctx, shared, 0);
//!     for i in 0..4u64 {
//!         group.fork(i, move |c| {
//!             // Each thread updates its own actor slot "in place".
//!             c.mem_mut().write_u64(0x10000 + i * 8, (i + 1) * 11)?;
//!             Ok(0)
//!         })?;
//!     }
//!     for i in 0..4u64 {
//!         group.join(i)?;
//!     }
//!     assert_eq!(ctx.mem().read_u64(0x10018)?, 44);
//!     Ok(0)
//! });
//! assert_eq!(out.exit, Ok(0));
//! ```

pub mod dsched;
pub mod error;
pub mod fs;
pub mod layout;
pub mod proc;
pub mod shell;
pub mod threads;

pub use error::{Result, RtError};
pub use fs::{FileSys, ReconcileStats};
pub use proc::{ExitStatus, Pid, Proc, ProgramRegistry, run_process_tree, run_process_tree_on};
pub use threads::{JoinResult, ThreadGroup, barrier, thread_id};

/// Runs a root program that uses the runtime's [`Result`] type on a
/// fresh kernel, bridging runtime errors to kernel traps at the
/// boundary.
pub fn run_deterministic<F>(config: det_kernel::KernelConfig, root: F) -> det_kernel::RunOutcome
where
    F: FnOnce(&mut det_kernel::SpaceCtx) -> Result<i32>,
{
    det_kernel::Kernel::new(config).run(|ctx| root(ctx).map_err(RtError::into_kernel))
}
