//! Deterministic scheduling of nondeterministic legacy thread APIs
//! (§4.5).
//!
//! For code written against mutexes and condition variables, the
//! runtime emulates a conventional shared-memory multiprocessor on an
//! *artificial, deterministic time base*: the master space never runs
//! application code; it quantizes each thread's execution with the
//! kernel's work limits, merges each thread's shared-memory writes at
//! quantum boundaries (**last-writer-wins**, so data races resolve
//! repeatably-but-arbitrarily as on real hardware — not as conflicts),
//! and totally orders all synchronization operations.
//!
//! Mutexes follow the paper's *ownership* protocol: a mutex is always
//! owned by some thread; the owner locks and unlocks it without
//! scheduler interaction by flipping its word in the shared *mailbox*
//! page; any other thread must invoke the scheduler (`Ret` with a
//! request code), which **steals** the mutex at a quantum boundary if
//! it is unlocked, or enqueues the thread if it is not.
//!
//! Writes propagate only at quantum ends, so the memory model is weak
//! consistency with synchronization operations totally ordered
//! (DMP-B-style), and the whole schedule is a deterministic function
//! of the program and the quantum size.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use det_kernel::{
    ChildNum, ConflictPolicy, CopySpec, GetSpec, KernelError, Program, PutSpec, Region, Regs,
    SpaceCtx, StopReason,
};

use crate::error::{Result, RtError};
use crate::layout;

/// `Ret` code: thread requests a mutex it does not own.
pub const REQ_LOCK: u64 = 0xD001;
/// `Ret` code: thread waits on a condition variable (r3 = mutex,
/// r4 = condvar); the mutex is released atomically.
pub const REQ_WAIT: u64 = 0xD002;
/// `Ret` code: signal one waiter of condvar r4.
pub const REQ_SIGNAL: u64 = 0xD003;
/// `Ret` code: wake all waiters of condvar r4.
pub const REQ_BROADCAST: u64 = 0xD004;
/// `Ret` code: voluntary yield to the scheduler.
pub const REQ_YIELD: u64 = 0xD005;

/// Maximum mutex id (one u64 word each in the mailbox page).
pub const MAX_MUTEXES: u64 = layout::DSCHED_MAILBOX_SIZE / 8;

#[derive(Clone, Debug)]
struct MutexRec {
    owner: u64,
    locked: bool,
    waiters: VecDeque<u64>,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum TState {
    Runnable,
    /// Parked in the scheduler waiting for a mutex.
    BlockedOnMutex(u64),
    /// Parked on a condition variable.
    BlockedOnCond(u64, u64),
    Finished(i32),
}

/// The master-side deterministic scheduler.
pub struct DSched<'c> {
    ctx: &'c mut SpaceCtx,
    shared: Region,
    quantum_ns: u64,
    base_child: ChildNum,
    threads: BTreeMap<u64, TState>,
    mutexes: BTreeMap<u64, MutexRec>,
    cond_waiters: BTreeMap<u64, VecDeque<u64>>,
}

impl<'c> DSched<'c> {
    /// Creates a scheduler whose threads share `region`; quanta are
    /// `quantum_ns` of virtual work (the paper's default corresponds
    /// to 10 M instructions ≈ 10 ms at 1 GIPS).
    ///
    /// Maps the mailbox page into the master if absent.
    pub fn new(
        ctx: &'c mut SpaceCtx,
        region: Region,
        quantum_ns: u64,
        base_child: ChildNum,
    ) -> Result<DSched<'c>> {
        if ctx.mem().perm_at(layout::DSCHED_MAILBOX_BASE).is_none() {
            ctx.mem_mut()
                .map_zero(layout::dsched_mailbox_region(), det_memory::Perm::RW)?;
        }
        Ok(DSched {
            ctx,
            shared: region,
            quantum_ns,
            base_child,
            threads: BTreeMap::new(),
            mutexes: BTreeMap::new(),
            cond_waiters: BTreeMap::new(),
        })
    }

    /// Registers thread `t` with body `f` (pthread_create analogue).
    pub fn spawn<F>(&mut self, t: u64, f: F) -> Result<()>
    where
        F: FnOnce(&mut SpaceCtx) -> std::result::Result<i32, KernelError> + Send + 'static,
    {
        let mut regs = Regs::default();
        regs.gpr[2] = t;
        self.ctx.put(
            self.base_child + t,
            PutSpec::new().program(Program::native(f)).regs(regs),
        )?;
        self.threads.insert(t, TState::Runnable);
        Ok(())
    }

    /// Runs all registered threads to completion under deterministic
    /// scheduling; returns `(thread, exit_code)` pairs (pthread_join
    /// analogue). Errors with a deadlock diagnosis if every live
    /// thread is blocked.
    pub fn run(&mut self) -> Result<Vec<(u64, i32)>> {
        loop {
            let runnable: Vec<u64> = self
                .threads
                .iter()
                .filter(|(_, s)| matches!(s, TState::Runnable))
                .map(|(&t, _)| t)
                .collect();
            if runnable.is_empty() {
                let live_blocked = self
                    .threads
                    .values()
                    .any(|s| matches!(s, TState::BlockedOnMutex(_) | TState::BlockedOnCond(..)));
                if live_blocked {
                    return Err(RtError::Invalid("deterministic scheduler deadlock"));
                }
                return Ok(self
                    .threads
                    .iter()
                    .map(|(&t, s)| match s {
                        TState::Finished(c) => (t, *c),
                        _ => unreachable!("all threads finished"),
                    })
                    .collect());
            }
            if let [t] = runnable[..] {
                // One runnable thread (the common tail when everyone
                // else is blocked on a mutex or condvar): its quantum
                // dispatch and collection fuse into a single `PutGet`
                // rendezvous — there is no concurrency to preserve.
                let child = self.base_child + t;
                self.ctx
                    .put(child, PutSpec::new().copy(CopySpec::mirror(self.shared)))?;
                let r = self.ctx.put_get(
                    child,
                    PutSpec::new()
                        .copy(CopySpec::mirror(layout::dsched_mailbox_region()))
                        .snap()
                        .start_limited(self.quantum_ns),
                    GetSpec::new()
                        .regs()
                        .merge(self.shared)
                        .merge_policy(ConflictPolicy::ChildWins),
                )?;
                self.collect_quantum_result(t, r)?;
            } else {
                // Dispatch every runnable thread for one quantum; they
                // run concurrently (real threads), synchronized only
                // at the collection rendezvous below.
                for &t in &runnable {
                    let child = self.base_child + t;
                    // Install the master's current shared image +
                    // mailbox, snapshot, and hand out one quantum.
                    self.ctx
                        .put(child, PutSpec::new().copy(CopySpec::mirror(self.shared)))?;
                    self.ctx.put(
                        child,
                        PutSpec::new()
                            .copy(CopySpec::mirror(layout::dsched_mailbox_region()))
                            .snap()
                            .start_limited(self.quantum_ns),
                    )?;
                }
                // Collect in deterministic (sorted) order.
                for &t in &runnable {
                    self.collect_quantum(t)?;
                }
            }
            // Quantum-boundary mutex stealing and handoff.
            self.process_transfers();
        }
    }

    fn collect_quantum(&mut self, t: u64) -> Result<()> {
        let child = self.base_child + t;
        let r = self.ctx.get(
            child,
            GetSpec::new()
                .regs()
                .merge(self.shared)
                .merge_policy(ConflictPolicy::ChildWins),
        )?;
        self.collect_quantum_result(t, r)
    }

    /// Folds in an already-collected quantum result (shared-region
    /// merge done by the caller's `Get` or fused `PutGet`).
    fn collect_quantum_result(&mut self, t: u64, r: det_kernel::GetResult) -> Result<()> {
        let child = self.base_child + t;
        // Also fold in the mailbox page (owner lock/unlock bits).
        self.ctx.get(
            child,
            GetSpec::new()
                .merge(layout::dsched_mailbox_region())
                .merge_policy(ConflictPolicy::ChildWins),
        )?;
        // Refresh master's view of mutexes this thread owns.
        let owned: Vec<u64> = self
            .mutexes
            .iter()
            .filter(|(_, m)| m.owner == t)
            .map(|(&id, _)| id)
            .collect();
        for m in owned {
            let word = self
                .ctx
                .mem()
                .read_u64(layout::DSCHED_MAILBOX_BASE + m * 8)?;
            if word >> 1 == t + 1 {
                self.mutexes.get_mut(&m).expect("owned").locked = word & 1 == 1;
            }
        }
        let regs = r.regs.expect("requested");
        match r.stop {
            StopReason::LimitReached => { /* Still runnable. */ }
            StopReason::Halted => {
                self.threads.insert(t, TState::Finished(r.code as i32));
            }
            StopReason::Trap(k) => return Err(RtError::ChildTrapped(k)),
            StopReason::Ret => self.handle_request(t, r.code, regs)?,
            StopReason::Unstarted => return Err(RtError::Invalid("unstarted thread collected")),
        }
        Ok(())
    }

    fn handle_request(&mut self, t: u64, code: u64, regs: Regs) -> Result<()> {
        match code {
            REQ_LOCK => {
                let m = regs.gpr[3];
                self.request_lock(t, m)?;
            }
            REQ_WAIT => {
                let m = regs.gpr[3];
                let cv = regs.gpr[4];
                // Atomically release the mutex and sleep on cv.
                if let Some(rec) = self.mutexes.get_mut(&m) {
                    if rec.owner == t {
                        rec.locked = false;
                    }
                }
                self.cond_waiters.entry(cv).or_default().push_back(t);
                self.threads.insert(t, TState::BlockedOnCond(m, cv));
            }
            REQ_SIGNAL => {
                let cv = regs.gpr[4];
                self.wake_waiters(cv, 1)?;
                self.threads.insert(t, TState::Runnable);
            }
            REQ_BROADCAST => {
                let cv = regs.gpr[4];
                self.wake_waiters(cv, usize::MAX)?;
                self.threads.insert(t, TState::Runnable);
            }
            REQ_YIELD => {
                self.threads.insert(t, TState::Runnable);
            }
            other => {
                return Err(RtError::Invalid(match other {
                    0 => "thread ret without request code",
                    _ => "unknown scheduler request",
                }));
            }
        }
        Ok(())
    }

    fn request_lock(&mut self, t: u64, m: u64) -> Result<()> {
        if m >= MAX_MUTEXES {
            return Err(RtError::Invalid("mutex id out of range"));
        }
        let rec = self.mutexes.entry(m).or_insert(MutexRec {
            owner: t,
            locked: false,
            waiters: VecDeque::new(),
        });
        if rec.owner == t || !rec.locked {
            // Grant (possibly stealing an unlocked mutex).
            rec.owner = t;
            rec.locked = true;
            self.write_mailbox(m)?;
            self.threads.insert(t, TState::Runnable);
        } else {
            rec.waiters.push_back(t);
            self.threads.insert(t, TState::BlockedOnMutex(m));
        }
        Ok(())
    }

    fn wake_waiters(&mut self, cv: u64, n: usize) -> Result<()> {
        let woken: Vec<u64> = match self.cond_waiters.get_mut(&cv) {
            None => return Ok(()),
            Some(q) => {
                let count = n.min(q.len());
                q.drain(..count).collect()
            }
        };
        for w in woken {
            // The woken thread must re-acquire its mutex before
            // returning from wait(): route it through the lock queue.
            let m = match self.threads.get(&w) {
                Some(TState::BlockedOnCond(m, _)) => *m,
                _ => continue,
            };
            self.request_lock(w, m)?;
        }
        Ok(())
    }

    /// Transfers unlocked mutexes with queued waiters at a quantum
    /// boundary (the paper's stealing point).
    fn process_transfers(&mut self) {
        let ids: Vec<u64> = self.mutexes.keys().copied().collect();
        for m in ids {
            let rec = self.mutexes.get_mut(&m).expect("exists");
            if rec.locked || rec.waiters.is_empty() {
                continue;
            }
            let w = rec.waiters.pop_front().expect("nonempty");
            rec.owner = w;
            rec.locked = true;
            let _ = self.write_mailbox(m);
            self.threads.insert(w, TState::Runnable);
        }
    }

    fn write_mailbox(&mut self, m: u64) -> Result<()> {
        let rec = &self.mutexes[&m];
        let word = ((rec.owner + 1) << 1) | rec.locked as u64;
        self.ctx
            .mem_mut()
            .write_u64(layout::DSCHED_MAILBOX_BASE + m * 8, word)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Thread-side API (inside dsched-managed threads).
// ---------------------------------------------------------------------

/// Thread side: this thread's id.
pub fn self_id(ctx: &SpaceCtx) -> u64 {
    ctx.regs().gpr[2]
}

/// Thread side: lock mutex `m` (pthread_mutex_lock analogue).
///
/// Owner fast path: flips the mailbox bit with no scheduler
/// interaction. Otherwise invokes the scheduler and blocks until
/// ownership is granted.
pub fn mutex_lock(ctx: &mut SpaceCtx, m: u64) -> std::result::Result<(), KernelError> {
    let me = self_id(ctx);
    let addr = layout::DSCHED_MAILBOX_BASE + m * 8;
    let word = ctx.mem().read_u64(addr)?;
    if word >> 1 == me + 1 && word & 1 == 0 {
        return ctx.mem_mut().write_u64(addr, word | 1).map_err(Into::into);
    }
    ctx.regs_mut().gpr[3] = m;
    ctx.ret(REQ_LOCK)
}

/// Thread side: unlock mutex `m`. Only the owner may unlock; the
/// mutex *stays owned* by this thread until another thread steals it
/// at a quantum boundary (§4.5).
pub fn mutex_unlock(ctx: &mut SpaceCtx, m: u64) -> std::result::Result<(), KernelError> {
    let me = self_id(ctx);
    let addr = layout::DSCHED_MAILBOX_BASE + m * 8;
    let word = ctx.mem().read_u64(addr)?;
    if word >> 1 != me + 1 {
        return Err(KernelError::InvalidSpec("unlock of unowned mutex"));
    }
    ctx.mem_mut().write_u64(addr, word & !1).map_err(Into::into)
}

/// Thread side: wait on condvar `cv`, releasing mutex `m` atomically;
/// on return the mutex is re-acquired.
pub fn cond_wait(ctx: &mut SpaceCtx, m: u64, cv: u64) -> std::result::Result<(), KernelError> {
    // Clear our local lock bit first (the master releases ownership).
    let me = self_id(ctx);
    let addr = layout::DSCHED_MAILBOX_BASE + m * 8;
    let word = ctx.mem().read_u64(addr)?;
    if word >> 1 == me + 1 {
        ctx.mem_mut().write_u64(addr, word & !1)?;
    }
    ctx.regs_mut().gpr[3] = m;
    ctx.regs_mut().gpr[4] = cv;
    ctx.ret(REQ_WAIT)
}

/// Thread side: wake one waiter of `cv`.
pub fn cond_signal(ctx: &mut SpaceCtx, cv: u64) -> std::result::Result<(), KernelError> {
    ctx.regs_mut().gpr[4] = cv;
    ctx.ret(REQ_SIGNAL)
}

/// Thread side: wake all waiters of `cv`.
pub fn cond_broadcast(ctx: &mut SpaceCtx, cv: u64) -> std::result::Result<(), KernelError> {
    ctx.regs_mut().gpr[4] = cv;
    ctx.ret(REQ_BROADCAST)
}

/// Thread side: yield the rest of this quantum.
pub fn sched_yield(ctx: &mut SpaceCtx) -> std::result::Result<(), KernelError> {
    ctx.ret(REQ_YIELD)
}
