//! Unix process emulation: `fork`/`exec`/`wait` and file descriptors
//! (§4.1), plus the I/O rendezvous protocol (§4.3).
//!
//! A *process* is a space whose program runs under a [`Proc`] wrapper
//! holding process-local runtime state: the file-system replica, the
//! descriptor table, and a **process-local PID namespace** — PIDs are
//! meaningless outside the process that issued them, eliminating the
//! shared-namespace nondeterminism of global PIDs (§2.4).
//!
//! `wait()` (wait for "any" child) deterministically collects the
//! *earliest-forked* uncollected child, not the first to finish —
//! the paper's deliberate trade-off that Figure 4 illustrates.
//!
//! I/O protocol: a child needing console input appends nothing itself;
//! it serializes its file system, `Ret`s with [`IoRequest::NeedInput`],
//! and its parent — inside `wait`/`waitpid` — reconciles, feeds any
//! new input, and resumes it transparently.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use det_kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region, RunOutcome, SpaceCtx,
    StopReason, TrapKind,
};

use crate::error::{Result, RtError};
use crate::fs::{CONSOLE_IN, CONSOLE_OUT, FileSys};
use crate::layout;

/// Process identifier, local to the issuing process (§2.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Exit status of a collected child.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ExitStatus {
    /// Clean exit with a code.
    Exited(i32),
    /// Terminated by a trap.
    Trapped(TrapKind),
}

/// Why a child process returned control without exiting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoRequest {
    /// Needs console input.
    NeedInput,
    /// Requests an immediate output flush (`fsync`).
    Flush,
}

const RET_EXIT_BASE: u64 = 0x100;
const RET_NEED_INPUT: u64 = 1;
const RET_FLUSH: u64 = 2;

/// A program executable by a process: named in the [`ProgramRegistry`]
/// and invocable via [`Proc::exec`] or the shell.
pub type ProcProgram = Arc<dyn Fn(&mut Proc<'_>, &[String]) -> Result<i32> + Send + Sync>;

/// The "binary store": a name → program map playing the role of
/// executable files. (The paper loads ELF images from the file system;
/// our native programs are host closures, so the registry is the
/// analogous host-side store. VM-code binaries could live in the file
/// system directly.)
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    programs: BTreeMap<String, ProcProgram>,
}

impl ProgramRegistry {
    /// Returns an empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Registers a program under `name`.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut Proc<'_>, &[String]) -> Result<i32> + Send + Sync + 'static,
    {
        self.programs.insert(name.to_string(), Arc::new(f));
    }

    /// Looks a program up.
    pub fn get(&self, name: &str) -> Option<ProcProgram> {
        self.programs.get(name).cloned()
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.programs.keys().cloned().collect();
        v.sort();
        v
    }
}

/// An open-file description.
#[derive(Clone, Debug)]
struct OpenFile {
    path: String,
    pos: u64,
    readable: bool,
    writable: bool,
    append: bool,
}

/// Records of a forked, not-yet-collected child.
struct ChildRec {
    pid: Pid,
    child_num: u64,
    collected: bool,
}

/// A process: the user-level view of a space running under the
/// process runtime.
pub struct Proc<'a> {
    ctx: &'a mut SpaceCtx,
    fs: FileSys,
    fds: Vec<Option<OpenFile>>,
    registry: Arc<ProgramRegistry>,
    children: Vec<ChildRec>,
    pids: BTreeMap<Pid, usize>,
    next_pid: u32,
    free_child_nums: VecDeque<u64>,
    next_child_num: u64,
    /// Console-out bytes already pushed to the kernel device (root) or
    /// already visible at fork time (non-root).
    console_flushed: u64,
}

impl<'a> Proc<'a> {
    fn new(ctx: &'a mut SpaceCtx, fs: FileSys, registry: Arc<ProgramRegistry>) -> Proc<'a> {
        let mut p = Proc {
            ctx,
            fs,
            fds: Vec::new(),
            registry,
            children: Vec::new(),
            pids: BTreeMap::new(),
            next_pid: 2,
            free_child_nums: VecDeque::new(),
            next_child_num: 0,
            console_flushed: 0,
        };
        // Descriptors 0/1 are the console, as in Unix.
        p.fds.push(Some(OpenFile {
            path: CONSOLE_IN.into(),
            pos: 0,
            readable: true,
            writable: false,
            append: false,
        }));
        p.fds.push(Some(OpenFile {
            path: CONSOLE_OUT.into(),
            pos: 0,
            readable: false,
            writable: true,
            append: true,
        }));
        p
    }

    /// The underlying kernel context (for charges and advanced use).
    pub fn ctx(&mut self) -> &mut SpaceCtx {
        self.ctx
    }

    /// Declares compute work on the virtual clock.
    pub fn charge(&mut self, ns: u64) -> Result<()> {
        self.ctx.charge(ns).map_err(RtError::from)
    }

    /// Direct access to this process's file-system replica.
    pub fn fs(&self) -> &FileSys {
        &self.fs
    }

    /// Mutable access to the replica (for tools and tests).
    pub fn fs_mut(&mut self) -> &mut FileSys {
        &mut self.fs
    }

    // ------------------------------------------------------------------
    // File API
    // ------------------------------------------------------------------

    /// Opens `path`. `create` makes the file if missing; `trunc`
    /// empties it; `append` positions writes at the end.
    pub fn open(
        &mut self,
        path: &str,
        readable: bool,
        writable: bool,
        create: bool,
        trunc: bool,
        append: bool,
    ) -> Result<usize> {
        if self.fs.is_conflicted(path) {
            return Err(RtError::Conflicted(path.into()));
        }
        match self.fs.lookup(path) {
            Some(_) if trunc && writable => self.fs.create(path, false)?,
            Some(_) => {}
            None if create => self.fs.create(path, false)?,
            None => return Err(RtError::NotFound(path.into())),
        }
        let pos = if append {
            self.fs.read(path)?.len() as u64
        } else {
            0
        };
        let of = OpenFile {
            path: path.to_string(),
            pos,
            readable,
            writable,
            append,
        };
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(of);
                return Ok(i);
            }
        }
        self.fds.push(Some(of));
        Ok(self.fds.len() - 1)
    }

    /// Opens for reading.
    pub fn open_read(&mut self, path: &str) -> Result<usize> {
        self.open(path, true, false, false, false, false)
    }

    /// Creates/truncates for writing.
    pub fn open_write(&mut self, path: &str) -> Result<usize> {
        self.open(path, false, true, true, true, false)
    }

    /// Duplicates descriptor `src` onto `dst` (closing what `dst`
    /// held), Unix `dup2` style — how the shell wires redirections.
    pub fn dup2(&mut self, src: usize, dst: usize) -> Result<()> {
        let of = self
            .fds
            .get(src)
            .and_then(|o| o.as_ref())
            .ok_or(RtError::BadFd(src))?
            .clone();
        while self.fds.len() <= dst {
            self.fds.push(None);
        }
        self.fds[dst] = Some(of);
        Ok(())
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: usize) -> Result<()> {
        let slot = self.fds.get_mut(fd).ok_or(RtError::BadFd(fd))?;
        if slot.take().is_none() {
            return Err(RtError::BadFd(fd));
        }
        Ok(())
    }

    /// Reads up to `buf.len()` bytes; 0 means end-of-file (regular
    /// files) — on the console it means "wait for input", which blocks
    /// through the parent I/O rendezvous.
    pub fn read(&mut self, fd: usize, buf: &mut [u8]) -> Result<usize> {
        loop {
            let of = self
                .fds
                .get(fd)
                .and_then(|o| o.as_ref())
                .ok_or(RtError::BadFd(fd))?
                .clone();
            if !of.readable {
                return Err(RtError::BadMode("fd not readable"));
            }
            let data = self.fs.read(&of.path)?;
            let avail = data.len() as u64 - of.pos.min(data.len() as u64);
            if avail > 0 {
                let n = (buf.len() as u64).min(avail) as usize;
                let start = of.pos as usize;
                buf[..n].copy_from_slice(&data[start..start + n]);
                self.fds[fd].as_mut().expect("checked").pos += n as u64;
                self.charge_io(n as u64)?;
                return Ok(n);
            }
            if of.path != CONSOLE_IN {
                return Ok(0); // Regular EOF.
            }
            // Console with no data: rendezvous with the parent for
            // more input (§4.3). The root asks the kernel device.
            if self.ctx.is_root() {
                match self.ctx.dev_read(det_kernel::DeviceId::ConsoleIn)? {
                    Some(bytes) => {
                        self.fs.append(CONSOLE_IN, &bytes)?;
                        continue;
                    }
                    None => return Ok(0), // No more input exists.
                }
            }
            self.sync_with_parent(RET_NEED_INPUT)?;
        }
    }

    /// Reads the whole remaining contents of `fd`.
    pub fn read_to_end(&mut self, fd: usize) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = self.read(fd, &mut chunk)?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&chunk[..n]);
        }
    }

    /// Writes `data` at the descriptor's position.
    pub fn write(&mut self, fd: usize, data: &[u8]) -> Result<usize> {
        let of = self
            .fds
            .get(fd)
            .and_then(|o| o.as_ref())
            .ok_or(RtError::BadFd(fd))?
            .clone();
        if !of.writable {
            return Err(RtError::BadMode("fd not writable"));
        }
        if of.append {
            self.fs.append(&of.path, data)?;
            let len = self.fs.read(&of.path)?.len() as u64;
            self.fds[fd].as_mut().expect("checked").pos = len;
        } else {
            self.fs.write_at(&of.path, of.pos, data)?;
            self.fds[fd].as_mut().expect("checked").pos += data.len() as u64;
        }
        self.charge_io(data.len() as u64)?;
        if of.path == CONSOLE_OUT && self.ctx.is_root() {
            self.flush_console()?;
        }
        Ok(data.len())
    }

    /// Convenience: write a string to stdout (fd 1).
    pub fn print(&mut self, s: &str) -> Result<()> {
        self.write(1, s.as_bytes()).map(|_| ())
    }

    /// Repositions a descriptor.
    pub fn seek(&mut self, fd: usize, pos: u64) -> Result<()> {
        let of = self
            .fds
            .get_mut(fd)
            .and_then(|o| o.as_mut())
            .ok_or(RtError::BadFd(fd))?;
        if of.append {
            return Err(RtError::BadMode("cannot seek append-only fd"));
        }
        of.pos = pos;
        Ok(())
    }

    /// Flushes pending output toward the kernel console: the root
    /// pushes directly; children rendezvous with their parent (§4.3).
    pub fn fsync(&mut self) -> Result<()> {
        if self.ctx.is_root() {
            self.flush_console()
        } else {
            self.sync_with_parent(RET_FLUSH)
        }
    }

    fn charge_io(&mut self, bytes: u64) -> Result<()> {
        // Byte-proportional I/O work keeps file-heavy workloads honest
        // in virtual time (~1 ns per 2 bytes, memcpy-like).
        self.ctx.charge(bytes / 2 + 1).map_err(RtError::from)
    }

    /// Root only: push unflushed console-out bytes to the device.
    fn flush_console(&mut self) -> Result<()> {
        let data = self.fs.read(CONSOLE_OUT)?;
        if (data.len() as u64) > self.console_flushed {
            let new = &data[self.console_flushed as usize..];
            self.ctx.dev_write(det_kernel::DeviceId::ConsoleOut, new)?;
            self.console_flushed = data.len() as u64;
        }
        Ok(())
    }

    /// Serializes this process's fs into its own image region, `Ret`s
    /// with `code`, and re-loads the (parent-updated) image afterward.
    fn sync_with_parent(&mut self, code: u64) -> Result<()> {
        self.store_fs_image(layout::FS_IMAGE_BASE)?;
        self.ctx.ret(code)?;
        self.fs = load_fs_image(self.ctx, layout::FS_IMAGE_BASE)?;
        Ok(())
    }

    fn store_fs_image(&mut self, base: u64) -> Result<()> {
        store_fs_image_raw(self.ctx, &self.fs, base)
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Forks a child process running `f`. Returns its (process-local)
    /// PID immediately; the child runs concurrently.
    pub fn fork<F>(&mut self, f: F) -> Result<Pid>
    where
        F: FnOnce(&mut Proc<'_>) -> Result<i32> + Send + 'static,
    {
        let child_num = self.free_child_nums.pop_front().unwrap_or_else(|| {
            let n = self.next_child_num;
            self.next_child_num += 1;
            n
        });
        let pid = Pid(self.next_pid);
        self.next_pid += 1;

        // Stage the child's inherited replica in our own image region,
        // then virtually copy it into the child (COW: no bytes move
        // until modified). The mirror copy is leaf-congruent (see
        // layout.rs), so the kernel shares whole page-table leaves —
        // the fork costs O(leaves), not O(image pages) (DESIGN.md §5).
        let image = self.fs.fork_image();
        store_fs_image_raw(self.ctx, &image, layout::FS_IMAGE_BASE)?;
        let registry = Arc::clone(&self.registry);
        self.ctx.put(
            child_num,
            PutSpec::new()
                .program(Program::native(move |c| {
                    let fs = match load_fs_image(c, layout::FS_IMAGE_BASE) {
                        Ok(fs) => fs,
                        Err(e) => return Err(e.into_kernel()),
                    };
                    let mut proc = Proc::new(c, fs, registry);
                    proc.console_flushed = proc
                        .fs
                        .read(CONSOLE_OUT)
                        .map(|d| d.len() as u64)
                        .unwrap_or(0);
                    let code = f(&mut proc).map_err(RtError::into_kernel)?;
                    // Publish the final replica for the parent's
                    // reconciliation, then halt.
                    store_fs_image_raw(proc.ctx, &proc.fs, layout::FS_IMAGE_BASE)
                        .map_err(RtError::into_kernel)?;
                    Ok(code)
                }))
                .copy(CopySpec::mirror(layout::fs_image_region()))
                .start(),
        )?;
        self.children.push(ChildRec {
            pid,
            child_num,
            collected: false,
        });
        self.pids.insert(pid, self.children.len() - 1);
        Ok(pid)
    }

    /// Waits for a specific child, servicing its I/O requests
    /// transparently (§4.1, §4.3).
    pub fn waitpid(&mut self, pid: Pid) -> Result<ExitStatus> {
        let idx = *self.pids.get(&pid).ok_or(RtError::NoChild(pid.0))?;
        if self.children[idx].collected {
            return Err(RtError::NoChild(pid.0));
        }
        let child_num = self.children[idx].child_num;
        let collect = || {
            GetSpec::new().copy(CopySpec {
                src: layout::fs_image_region(),
                dst: layout::FS_SCRATCH_BASE,
            })
        };
        let mut r = self.ctx.get(child_num, collect())?;
        let status = loop {
            match r.stop {
                StopReason::Halted => {
                    self.reconcile_child_image()?;
                    break ExitStatus::Exited(r.code as i32);
                }
                StopReason::Trap(t) => {
                    // Trapped before publishing a final image; do not
                    // reconcile (state may be mid-operation).
                    break ExitStatus::Trapped(t);
                }
                StopReason::Ret => {
                    self.reconcile_child_image()?;
                    match r.code {
                        RET_NEED_INPUT => self.feed_child_input()?,
                        RET_FLUSH if self.ctx.is_root() => self.flush_console()?,
                        // Non-root flush: our own later sync propagates.
                        RET_FLUSH => {}
                        other if other >= RET_EXIT_BASE => {}
                        _ => {}
                    }
                    // Hand the child its updated replica, resume it,
                    // and collect its next stop — one fused PutGet
                    // rendezvous per I/O round trip (§4.3).
                    let image = self.fs.fork_image();
                    store_fs_image_raw(self.ctx, &image, layout::FS_IMAGE_BASE)?;
                    r = self.ctx.put_get(
                        child_num,
                        PutSpec::new()
                            .copy(CopySpec::mirror(layout::fs_image_region()))
                            .start(),
                        collect(),
                    )?;
                }
                StopReason::LimitReached => {
                    r = self
                        .ctx
                        .put_get(child_num, PutSpec::new().start(), collect())?;
                }
                StopReason::Unstarted => return Err(RtError::Invalid("child never started")),
            }
        };
        self.children[idx].collected = true;
        self.free_child_nums.push_back(child_num);
        Ok(status)
    }

    /// Waits for "any" child: deterministically the earliest-forked
    /// uncollected one (§4.1 — the Figure 4 semantics).
    pub fn wait(&mut self) -> Result<(Pid, ExitStatus)> {
        let pid = self
            .children
            .iter()
            .find(|c| !c.collected)
            .map(|c| c.pid)
            .ok_or(RtError::Invalid("no children to wait for"))?;
        let status = self.waitpid(pid)?;
        Ok((pid, status))
    }

    /// True if any child remains uncollected.
    pub fn has_children(&self) -> bool {
        self.children.iter().any(|c| !c.collected)
    }

    /// Replaces this process's program image: looks `name` up in the
    /// registry and runs it in place, Unix `exec` style (the PID
    /// namespace, descriptors, and file system carry over, §4.1).
    /// Callers should `return proc.exec(...)` — nothing after it runs
    /// in a real exec.
    pub fn exec(&mut self, name: &str, args: &[String]) -> Result<i32> {
        let prog = self
            .registry
            .get(name)
            .ok_or_else(|| RtError::NoSuchProgram(name.into()))?;
        // Model the exec trampoline's memory replacement cost: the new
        // image replaces the old one page-for-page.
        self.ctx.charge(50_000)?;
        prog(self, args)
    }

    fn reconcile_child_image(&mut self) -> Result<()> {
        let child_fs = load_fs_image_at(self.ctx, layout::FS_SCRATCH_BASE)?;
        self.fs.reconcile(&child_fs);
        if self.ctx.is_root() {
            self.flush_console()?;
        }
        Ok(())
    }

    /// Appends fresh console input (if the root) into the child-visible
    /// replica before resuming an input-starved child.
    fn feed_child_input(&mut self) -> Result<()> {
        if self.ctx.is_root() {
            if let Some(bytes) = self.ctx.dev_read(det_kernel::DeviceId::ConsoleIn)? {
                self.fs.append(CONSOLE_IN, &bytes)?;
            }
        }
        // Non-root parents rely on input already reconciled from their
        // own parents; a full implementation would forward the request
        // upward (§4.3). Our tree-structured tests pre-stage input.
        Ok(())
    }
}

fn store_fs_image_raw(ctx: &mut SpaceCtx, fs: &FileSys, base: u64) -> Result<()> {
    let mut image = fs.to_bytes();
    let total = image.len() as u64 + 8;
    if total > layout::FS_IMAGE_SIZE {
        return Err(RtError::FsImageOverflow {
            need: total,
            cap: layout::FS_IMAGE_SIZE,
        });
    }
    // Map only the pages the image needs, and keep pages that are
    // already mapped: re-staging at every fork/wait rendezvous would
    // otherwise discard their frames and grow the space's dirty
    // write-set by the whole image region each time (and, since the VM
    // fast path arrived, spuriously invalidate the space's cached
    // translations — `map_zero_if_unmapped` over an already-mapped
    // range is a generation no-op). The subsequent write overlays the
    // new image; stale bytes past `total` are unreachable (loads read
    // only the length-prefixed payload) and a deterministic function
    // of prior images.
    let end_page = (base + total + 0xfff) & !0xfff;
    ctx.mem_mut()
        .map_zero_if_unmapped(Region::new(base, end_page), det_memory::Perm::RW)?;
    // Stage header + payload as one write: one range validation, one
    // page-table walk, one generation bump per rendezvous.
    let payload_len = image.len() as u64;
    image.splice(0..0, payload_len.to_le_bytes());
    ctx.mem_mut().write(base, &image)?;
    // Serializing the image costs memcpy-like work.
    ctx.charge(payload_len / 4)?;
    Ok(())
}

fn load_fs_image_at(ctx: &mut SpaceCtx, base: u64) -> Result<FileSys> {
    let len = ctx.mem().read_u64(base)?;
    if len + 8 > layout::FS_IMAGE_SIZE {
        return Err(RtError::FsImageCorrupt("image length out of range"));
    }
    let bytes = ctx.mem().read_vec(base + 8, len as usize)?;
    ctx.charge(len / 4)?;
    FileSys::from_bytes(&bytes)
}

fn load_fs_image(ctx: &mut SpaceCtx, base: u64) -> Result<FileSys> {
    load_fs_image_at(ctx, base)
}

/// Runs a root process under a fresh kernel: the entry point of the
/// process runtime.
///
/// # Examples
///
/// ```
/// use det_runtime::proc::{run_process_tree, ProgramRegistry};
///
/// let out = run_process_tree(
///     det_kernel::KernelConfig::default(),
///     ProgramRegistry::new(),
///     |p| {
///         p.print("hello\n")?;
///         Ok(0)
///     },
/// );
/// assert_eq!(out.exit, Ok(0));
/// assert_eq!(out.console(), b"hello\n");
/// ```
pub fn run_process_tree<F>(config: KernelConfig, registry: ProgramRegistry, root: F) -> RunOutcome
where
    F: FnOnce(&mut Proc<'_>) -> Result<i32> + Send + 'static,
{
    let kernel = Kernel::new(config);
    run_process_tree_on(kernel, registry, root)
}

/// Like [`run_process_tree`] but on a caller-built kernel (e.g., with
/// pushed console input or replay mode).
pub fn run_process_tree_on<F>(kernel: Kernel, registry: ProgramRegistry, root: F) -> RunOutcome
where
    F: FnOnce(&mut Proc<'_>) -> Result<i32> + Send + 'static,
{
    let registry = Arc::new(registry);
    kernel.run(move |ctx| {
        let fs = FileSys::with_console();
        let mut proc = Proc::new(ctx, fs, registry);
        let code = root(&mut proc).map_err(RtError::into_kernel)?;
        proc.flush_console().map_err(RtError::into_kernel)?;
        Ok(code)
    })
}
