//! A scripted Unix-style shell (§5: "a Unix-style shell supporting
//! redirection and both scripted and interactive use").
//!
//! Supports: argument words, `>` / `>>` / `<` redirection, `|`
//! pipelines (staged deterministically through temporary files — the
//! kernel's queues are one-to-one, §2.3), `;` sequencing, comments,
//! and the builtins `echo`, `cat`, `wc`, `cp`, `ls`, `rm`, `true`,
//! `false`. Unknown commands resolve through the
//! [`ProgramRegistry`](crate::proc::ProgramRegistry) and run as child
//! processes via `fork`/`wait` — each in its own file-system replica,
//! reconciled at collection.
//!
//! `ps` is deliberately *not* spawnable: PIDs are process-local
//! (§4.1), so like `cd` in Unix it could only ever be a builtin.

use crate::error::{Result, RtError};
use crate::proc::Proc;

/// One parsed simple command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimpleCmd {
    /// Program name.
    pub prog: String,
    /// Arguments.
    pub args: Vec<String>,
    /// Input redirection path.
    pub stdin: Option<String>,
    /// Output redirection path and whether to append.
    pub stdout: Option<(String, bool)>,
}

/// Parses one line into a pipeline of simple commands.
///
/// # Examples
///
/// ```
/// let p = det_runtime::shell::parse_line("cat in.txt | wc > out.txt").unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p[0].prog, "cat");
/// assert_eq!(p[1].stdout.as_ref().unwrap().0, "out.txt");
/// ```
pub fn parse_line(line: &str) -> Result<Vec<SimpleCmd>> {
    let line = match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    };
    let mut pipeline = Vec::new();
    for seg in line.split('|') {
        let mut words = seg.split_whitespace().peekable();
        let Some(prog) = words.next() else {
            if line.trim().is_empty() {
                return Ok(Vec::new());
            }
            return Err(RtError::Invalid("empty pipeline stage"));
        };
        if matches!(prog, ">" | ">>" | "<") {
            return Err(RtError::Invalid("redirection without a command"));
        }
        let mut cmd = SimpleCmd {
            prog: prog.to_string(),
            args: Vec::new(),
            stdin: None,
            stdout: None,
        };
        while let Some(w) = words.next() {
            match w {
                ">" | ">>" => {
                    let path = words.next().ok_or(RtError::Invalid("missing > target"))?;
                    cmd.stdout = Some((path.to_string(), w == ">>"));
                }
                "<" => {
                    let path = words.next().ok_or(RtError::Invalid("missing < source"))?;
                    cmd.stdin = Some(path.to_string());
                }
                _ => cmd.args.push(w.to_string()),
            }
        }
        pipeline.push(cmd);
    }
    Ok(pipeline)
}

/// Executes a whole script (newline/`;` separated) in `proc`.
/// Returns the exit code of the last command.
pub fn run_script(proc: &mut Proc<'_>, script: &str) -> Result<i32> {
    let mut last = 0;
    for raw in script.lines().flat_map(|l| l.split(';')) {
        let pipeline = parse_line(raw)?;
        if pipeline.is_empty() {
            continue;
        }
        last = run_pipeline(proc, &pipeline)?;
    }
    Ok(last)
}

/// Executes one pipeline; stages are connected through deterministic
/// temporary files and run sequentially in forked children.
pub fn run_pipeline(proc: &mut Proc<'_>, pipeline: &[SimpleCmd]) -> Result<i32> {
    let mut last_code = 0;
    let n = pipeline.len();
    for (i, cmd) in pipeline.iter().enumerate() {
        let stdin = if i == 0 {
            cmd.stdin.clone()
        } else {
            Some(pipe_path(i - 1))
        };
        let stdout = if i + 1 < n {
            Some((pipe_path(i), false))
        } else {
            cmd.stdout.clone()
        };
        last_code = run_one(proc, cmd, stdin.as_deref(), stdout.as_ref())?;
    }
    // Clean intermediate pipe files.
    for i in 0..n.saturating_sub(1) {
        let _ = proc.fs_mut().unlink(&pipe_path(i));
    }
    Ok(last_code)
}

fn pipe_path(i: usize) -> String {
    format!(".pipe/{i}")
}

fn run_one(
    proc: &mut Proc<'_>,
    cmd: &SimpleCmd,
    stdin: Option<&str>,
    stdout: Option<&(String, bool)>,
) -> Result<i32> {
    // Builtins run in-process; everything else forks.
    let name = cmd.prog.clone();
    let args = cmd.args.clone();
    let stdin = stdin.map(str::to_string);
    let stdout = stdout.cloned();
    let pid = proc.fork(move |p| {
        // Wire redirections onto fds 0/1 inside the child.
        if let Some(path) = &stdin {
            let fd = p.open_read(path)?;
            p.dup2(fd, 0)?;
        }
        if let Some((path, append)) = &stdout {
            let fd = p.open(path, false, true, true, !*append, *append)?;
            p.dup2(fd, 1)?;
        }
        match builtin(&name) {
            Some(f) => f(p, &args),
            None => p.exec(&name, &args),
        }
    })?;
    match proc.waitpid(pid)? {
        crate::proc::ExitStatus::Exited(c) => Ok(c),
        crate::proc::ExitStatus::Trapped(t) => Err(RtError::ChildTrapped(t)),
    }
}

type Builtin = fn(&mut Proc<'_>, &[String]) -> Result<i32>;

fn builtin(name: &str) -> Option<Builtin> {
    Some(match name {
        "echo" => bi_echo,
        "cat" => bi_cat,
        "wc" => bi_wc,
        "cp" => bi_cp,
        "ls" => bi_ls,
        "rm" => bi_rm,
        "true" => |_, _| Ok(0),
        "false" => |_, _| Ok(1),
        _ => return None,
    })
}

fn bi_echo(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    let line = args.join(" ");
    p.write(1, line.as_bytes())?;
    p.write(1, b"\n")?;
    Ok(0)
}

fn bi_cat(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    if args.is_empty() {
        let data = p.read_to_end(0)?;
        p.write(1, &data)?;
        return Ok(0);
    }
    for path in args {
        let fd = p.open_read(path)?;
        let data = p.read_to_end(fd)?;
        p.write(1, &data)?;
        p.close(fd)?;
    }
    Ok(0)
}

fn bi_wc(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    let data = if args.is_empty() {
        p.read_to_end(0)?
    } else {
        let fd = p.open_read(&args[0])?;
        let d = p.read_to_end(fd)?;
        p.close(fd)?;
        d
    };
    let lines = data.iter().filter(|&&b| b == b'\n').count();
    let words = data
        .split(|b| b.is_ascii_whitespace())
        .filter(|w| !w.is_empty())
        .count();
    let out = format!("{lines} {words} {}\n", data.len());
    p.write(1, out.as_bytes())?;
    Ok(0)
}

fn bi_cp(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    if args.len() != 2 {
        return Err(RtError::Invalid("cp needs src dst"));
    }
    let fd = p.open_read(&args[0])?;
    let data = p.read_to_end(fd)?;
    p.close(fd)?;
    let out = p.open_write(&args[1])?;
    p.write(out, &data)?;
    p.close(out)?;
    Ok(0)
}

fn bi_ls(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    let prefix = args.first().map(String::as_str).unwrap_or("");
    let listing = p
        .fs()
        .list(prefix)
        .into_iter()
        .filter(|f| !f.starts_with(".dev/") && !f.starts_with(".pipe/"))
        .collect::<Vec<_>>()
        .join("\n");
    p.write(1, listing.as_bytes())?;
    if !listing.is_empty() {
        p.write(1, b"\n")?;
    }
    Ok(0)
}

fn bi_rm(p: &mut Proc<'_>, args: &[String]) -> Result<i32> {
    for path in args {
        p.fs_mut().unlink(path)?;
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_words_and_redirections() {
        let p = parse_line("prog a b < in.txt > out.txt").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].prog, "prog");
        assert_eq!(p[0].args, vec!["a", "b"]);
        assert_eq!(p[0].stdin.as_deref(), Some("in.txt"));
        assert_eq!(p[0].stdout, Some(("out.txt".into(), false)));
    }

    #[test]
    fn parses_append_and_pipeline() {
        let p = parse_line("a | b | c >> log").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[2].stdout, Some(("log".into(), true)));
    }

    #[test]
    fn comments_and_blank_lines() {
        assert!(parse_line("# nothing").unwrap().is_empty());
        assert!(parse_line("   ").unwrap().is_empty());
        let p = parse_line("echo hi # trailing").unwrap();
        assert_eq!(p[0].args, vec!["hi"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_line("a >").is_err());
        assert!(parse_line("a | | b").is_err());
        assert!(parse_line("<").is_err());
    }
}
