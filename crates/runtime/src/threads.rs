//! Shared-memory multithreading in the private workspace model (§4.4).
//!
//! A [`ThreadGroup`] turns a space into the *master* of a set of
//! thread spaces sharing a designated memory region. `fork` copies the
//! shared region into a child with a snapshot (`Put` +
//! `Copy|Snap|Regs|Start`); `join` merges the child's changes back
//! (`Get` + `Merge`). Threads therefore compute "in place" on shared
//! structures with no packing/unpacking — Figure 1's in-line child
//! code — while reads always see the fork-time state and write/write
//! overlaps surface as join-time conflicts instead of silent races.
//!
//! Barriers (§4.4) are a merge-all / redistribute-all cycle driven by
//! the master; children call [`barrier`] between phases.

use det_kernel::{
    ChildNum, CopySpec, GetSpec, KernelError, MergeStats, Program, PutSpec, Region, Regs, SpaceCtx,
    StopReason,
};

use crate::error::{Result, RtError};

/// Child `Ret` code announcing arrival at a barrier.
pub const RET_BARRIER: u64 = 0xBA44;

/// Outcome of joining one thread.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// The thread's exit code.
    pub code: i32,
    /// Merge statistics for its shared-region changes.
    pub merge: Option<MergeStats>,
}

/// Master-side manager of a group of threads sharing `region`.
pub struct ThreadGroup<'c> {
    ctx: &'c mut SpaceCtx,
    region: Region,
    base_child: ChildNum,
}

impl<'c> ThreadGroup<'c> {
    /// Creates a manager for threads sharing `region` (page-aligned).
    ///
    /// `base_child` offsets the child numbers used, letting several
    /// groups (or a process runtime) coexist in one space.
    pub fn new(ctx: &'c mut SpaceCtx, region: Region, base_child: ChildNum) -> ThreadGroup<'c> {
        ThreadGroup {
            ctx,
            region,
            base_child,
        }
    }

    /// The shared region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Forks thread `t` running `f`.
    ///
    /// The child inherits a copy-on-write replica of the shared region
    /// plus a snapshot; `t` is also placed in the child's `r2` so
    /// thread bodies can self-identify (the paper's `thread_fork(i)`).
    pub fn fork<F>(&mut self, t: u64, f: F) -> Result<()>
    where
        F: FnOnce(&mut SpaceCtx) -> std::result::Result<i32, KernelError> + Send + 'static,
    {
        let mut regs = Regs::default();
        regs.gpr[2] = t;
        self.ctx.put(
            self.base_child + t,
            PutSpec::new()
                .program(Program::native(f))
                .regs(regs)
                .copy(CopySpec::mirror(self.region))
                .snap()
                .start(),
        )?;
        Ok(())
    }

    /// Joins thread `t`: merges its shared-region changes and returns
    /// its exit code. A write/write conflict with previously joined
    /// threads (or the master) surfaces here as
    /// [`KernelError::Conflict`] — deterministically, regardless of
    /// execution schedule (§2.2).
    pub fn join(&mut self, t: u64) -> Result<JoinResult> {
        let r = self
            .ctx
            .get(self.base_child + t, GetSpec::new().merge(self.region))?;
        match r.stop {
            StopReason::Halted => Ok(JoinResult {
                code: r.code as i32,
                merge: r.merge,
            }),
            StopReason::Trap(k) => Err(RtError::ChildTrapped(k)),
            other => Err(RtError::Invalid(match other {
                StopReason::Ret => "thread stopped at a barrier; drive it with barrier_cycle",
                _ => "thread in unexpected state",
            })),
        }
    }

    /// Forks a thread per element of `bodies` (thread ids 0..n) and
    /// joins them all: the lock-step pattern of Figure 1.
    pub fn fork_join_all<F>(&mut self, bodies: Vec<F>) -> Result<Vec<JoinResult>>
    where
        F: FnOnce(&mut SpaceCtx) -> std::result::Result<i32, KernelError> + Send + 'static,
    {
        let n = bodies.len() as u64;
        for (t, f) in bodies.into_iter().enumerate() {
            self.fork(t as u64, f)?;
        }
        (0..n).map(|t| self.join(t)).collect()
    }

    /// Runs one barrier cycle over threads `ts` (§4.4): waits for each
    /// to arrive (Ret) or finish (Halt), merges everyone's changes,
    /// then redistributes a fresh shared snapshot to the threads still
    /// running and resumes them.
    ///
    /// Returns the per-thread status: `Some(code)` if the thread
    /// halted, `None` if it passed the barrier and continues.
    pub fn barrier_cycle(&mut self, ts: &[u64]) -> Result<Vec<Option<i32>>> {
        let mut out = Vec::with_capacity(ts.len());
        // Phase 1: collect and merge everyone.
        for &t in ts {
            let r = self
                .ctx
                .get(self.base_child + t, GetSpec::new().merge(self.region))?;
            match r.stop {
                StopReason::Ret if r.code == RET_BARRIER => out.push(None),
                StopReason::Halted => out.push(Some(r.code as i32)),
                StopReason::Trap(k) => return Err(RtError::ChildTrapped(k)),
                _ => return Err(RtError::Invalid("thread in unexpected state at barrier")),
            }
        }
        // Phase 2: redistribute the merged image and resume runners.
        for (&t, status) in ts.iter().zip(&out) {
            if status.is_none() {
                self.ctx.put(
                    self.base_child + t,
                    PutSpec::new()
                        .copy(CopySpec::mirror(self.region))
                        .snap()
                        .start(),
                )?;
            }
        }
        Ok(out)
    }

    /// Drives threads `ts` through barrier cycles until all halt;
    /// returns their exit codes.
    pub fn run_to_completion(&mut self, ts: &[u64]) -> Result<Vec<i32>> {
        let mut done: Vec<Option<i32>> = vec![None; ts.len()];
        loop {
            let live: Vec<u64> = ts
                .iter()
                .copied()
                .zip(&done)
                .filter(|(_, d)| d.is_none())
                .map(|(t, _)| t)
                .collect();
            if live.is_empty() {
                return Ok(done.into_iter().map(|d| d.expect("all halted")).collect());
            }
            if live.len() == 1 {
                // Sole live thread: a barrier over one member has no
                // peers to wait for, so each remaining cycle (merge,
                // redistribute, resume, wait) fuses into one `PutGet`
                // rendezvous — the join tail of an uneven fork tree
                // pays one kernel entry per stage instead of two.
                let t = live[0];
                let code = self.drive_solo(t)?;
                let idx = ts.iter().position(|x| *x == t).expect("member");
                done[idx] = Some(code);
                continue;
            }
            let statuses = self.barrier_cycle(&live)?;
            for (t, s) in live.iter().zip(statuses) {
                if let Some(code) = s {
                    let idx = ts.iter().position(|x| x == t).expect("member");
                    done[idx] = Some(code);
                }
            }
        }
    }

    /// Drives a single thread through its remaining barriers to
    /// completion (the degenerate one-member barrier cycle), fusing
    /// every resume→collect pair into one `PutGet` exchange.
    fn drive_solo(&mut self, t: u64) -> Result<i32> {
        let child = self.base_child + t;
        let mut r = self.ctx.get(child, GetSpec::new().merge(self.region))?;
        loop {
            match r.stop {
                StopReason::Halted => return Ok(r.code as i32),
                StopReason::Ret if r.code == RET_BARRIER => {
                    r = self.ctx.put_get(
                        child,
                        PutSpec::new()
                            .copy(CopySpec::mirror(self.region))
                            .snap()
                            .start(),
                        GetSpec::new().merge(self.region),
                    )?;
                }
                StopReason::Trap(k) => return Err(RtError::ChildTrapped(k)),
                _ => return Err(RtError::Invalid("thread in unexpected state at barrier")),
            }
        }
    }
}

/// Child side: arrive at a barrier and wait for the group (§4.4).
///
/// The caller's subsequent reads see the *merged* state of all threads
/// from before the barrier.
pub fn barrier(ctx: &mut SpaceCtx) -> std::result::Result<(), KernelError> {
    ctx.ret(RET_BARRIER)
}

/// Child side: this thread's id (`r2`, set by [`ThreadGroup::fork`]).
pub fn thread_id(ctx: &SpaceCtx) -> u64 {
    ctx.regs().gpr[2]
}
