//! Address-space layout conventions used by the user-level runtime.
//!
//! The kernel imposes no layout; these constants are the runtime's own
//! conventions (§4), chosen so that process images, file-system
//! replicas, and thread-shared heaps never collide.

use det_memory::Region;

/// Start of the thread-shared data region (heap shared by
/// [`crate::threads::ThreadGroup`] members).
pub const SHARED_BASE: u64 = 0x1000_0000;
/// Default size of the thread-shared region (256 MiB of *address
/// space*; pages materialize copy-on-write as touched).
pub const SHARED_SIZE: u64 = 0x1000_0000;

/// Region where a process's file-system replica image is serialized.
///
/// Base and size are multiples of the page-table leaf span
/// (`det_memory::PAGES_PER_LEAF` pages), so the fork/reconcile copies
/// (`CopySpec::mirror`, and the image→scratch copy whose bases differ
/// by a whole number of leaves) are leaf-congruent and share page
/// tables structurally — O(leaves) per fork, not O(pages); see
/// DESIGN.md §5. The layout test locks this in.
pub const FS_IMAGE_BASE: u64 = 0x4000_0000;
/// Maximum serialized file-system image (64 MiB), the paper's
/// "file system size limited by address space" constraint (§4.2),
/// faithfully reproduced at a smaller scale.
pub const FS_IMAGE_SIZE: u64 = 0x0400_0000;

/// Scratch region a parent uses to stage a child's file-system image
/// during reconciliation (§4.2: "copies the child's file system image
/// into a scratch area in the parent space").
pub const FS_SCRATCH_BASE: u64 = 0x5000_0000;

/// Mailbox page used by deterministic-scheduler threads to publish
/// mutex ownership state (§4.5).
pub const DSCHED_MAILBOX_BASE: u64 = 0x6000_0000;
/// Size of the mailbox region.
pub const DSCHED_MAILBOX_SIZE: u64 = 0x1000;

/// Returns the default thread-shared region.
pub fn shared_region() -> Region {
    Region::sized(SHARED_BASE, SHARED_SIZE)
}

/// Returns the process file-system image region.
pub fn fs_image_region() -> Region {
    Region::sized(FS_IMAGE_BASE, FS_IMAGE_SIZE)
}

/// Returns the parent-side scratch region for a child's image.
pub fn fs_scratch_region() -> Region {
    Region::sized(FS_SCRATCH_BASE, FS_IMAGE_SIZE)
}

/// Returns the dsched mailbox region.
pub fn dsched_mailbox_region() -> Region {
    Region::sized(DSCHED_MAILBOX_BASE, DSCHED_MAILBOX_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_copies_are_leaf_congruent() {
        // The process runtime's hot copies (fs image mirror at fork and
        // rendezvous, image→scratch at reconcile, shared-heap mirror)
        // must stay congruent modulo the page-table leaf span so they
        // take the structural-sharing fast path.
        let leaf_bytes = (det_memory::PAGES_PER_LEAF as u64) << 12;
        for r in [shared_region(), fs_image_region(), fs_scratch_region()] {
            assert_eq!(r.start % leaf_bytes, 0, "{r:?} start not leaf-aligned");
        }
        assert_eq!((FS_SCRATCH_BASE - FS_IMAGE_BASE) % leaf_bytes, 0);
    }

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let regions = [
            shared_region(),
            fs_image_region(),
            fs_scratch_region(),
            dsched_mailbox_region(),
        ];
        for r in &regions {
            r.check_page_aligned().expect("aligned");
        }
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }
}
