//! Integration tests for the user-level runtime: processes, file
//! system reconciliation, threads, deterministic scheduling, shell.

use det_kernel::{DeviceId, Kernel, KernelConfig};
use det_memory::{Perm, Region};
use det_runtime::proc::{ExitStatus, ProgramRegistry, run_process_tree, run_process_tree_on};
use det_runtime::run_deterministic;
use det_runtime::threads::{self, ThreadGroup};
use det_runtime::{RtError, dsched, shell};

// ---------------------------------------------------------------------
// Processes and the file system
// ---------------------------------------------------------------------

#[test]
fn fork_wait_exit_codes() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let a = p.fork(|_| Ok(11))?;
        let b = p.fork(|_| Ok(22))?;
        assert_eq!(p.waitpid(b)?, ExitStatus::Exited(22));
        assert_eq!(p.waitpid(a)?, ExitStatus::Exited(11));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn child_fs_changes_propagate_at_wait() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let pid = p.fork(|c| {
            let fd = c.open_write("build/hello.o")?;
            c.write(fd, b"object code")?;
            c.close(fd)?;
            Ok(0)
        })?;
        p.waitpid(pid)?;
        let fd = p.open_read("build/hello.o")?;
        let data = p.read_to_end(fd)?;
        assert_eq!(data, b"object code");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn parallel_compilers_write_disjoint_objects() {
    // The paper's parallel-make scenario: each child writes its own
    // .o file; the parent's replica accumulates them all.
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let mut pids = Vec::new();
        for i in 0..4 {
            pids.push(p.fork(move |c| {
                let fd = c.open_write(&format!("obj/{i}.o"))?;
                c.write(fd, format!("object {i}").as_bytes())?;
                Ok(0)
            })?);
        }
        for pid in pids {
            assert_eq!(p.waitpid(pid)?, ExitStatus::Exited(0));
        }
        assert_eq!(p.fs().list("obj/").len(), 4);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn concurrent_writes_same_file_flag_conflict() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let a = p.fork(|c| {
            let fd = c.open_write("shared.txt")?;
            c.write(fd, b"from a")?;
            Ok(0)
        })?;
        let b = p.fork(|c| {
            let fd = c.open_write("shared.txt")?;
            c.write(fd, b"from b")?;
            Ok(0)
        })?;
        p.waitpid(a)?;
        p.waitpid(b)?;
        // Conflict detected; open now fails (§4.2).
        assert!(p.fs().is_conflicted("shared.txt"));
        match p.open_read("shared.txt") {
            Err(RtError::Conflicted(_)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn wait_returns_earliest_forked_not_first_done() {
    // Child A (forked first) does much more virtual work than B, yet
    // wait() must return A first (§4.1, Figure 4 semantics).
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let a = p.fork(|c| {
            c.charge(50_000_000)?; // Slow task.
            Ok(1)
        })?;
        let _b = p.fork(|c| {
            c.charge(1_000)?; // Fast task.
            Ok(2)
        })?;
        let (first_pid, st) = p.wait()?;
        assert_eq!(first_pid, a, "wait() must pick the earliest fork");
        assert_eq!(st, ExitStatus::Exited(1));
        let (_, st2) = p.wait()?;
        assert_eq!(st2, ExitStatus::Exited(2));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn console_output_reaches_kernel_device_in_deterministic_order() {
    let run = || {
        run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
            let a = p.fork(|c| {
                c.print("alpha\n")?;
                Ok(0)
            })?;
            let b = p.fork(|c| {
                c.print("beta\n")?;
                Ok(0)
            })?;
            // Collect b first: outputs appear in collection order.
            p.waitpid(b)?;
            p.waitpid(a)?;
            p.print("done\n")?;
            Ok(0)
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first.console_string(), "beta\nalpha\ndone\n");
    // Byte-identical across runs (§4.3).
    assert_eq!(first.console(), second.console());
    assert_eq!(first.vclock_ns, second.vclock_ns);
}

#[test]
fn console_input_via_parent_rendezvous() {
    let kernel = Kernel::new(KernelConfig::default());
    kernel.push_input(DeviceId::ConsoleIn, b"typed line\n".to_vec());
    let out = run_process_tree_on(kernel, ProgramRegistry::new(), |p| {
        let pid = p.fork(|c| {
            // The child's replica has no console data; reading forces
            // an I/O rendezvous through the parent to the root device.
            let mut buf = [0u8; 32];
            let n = c.read(0, &mut buf)?;
            c.write(1, &buf[..n])?;
            Ok(0)
        })?;
        p.waitpid(pid)?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console(), b"typed line\n");
}

#[test]
fn exec_replaces_program_and_keeps_fs() {
    let mut reg = ProgramRegistry::new();
    reg.register("printer", |p, args| {
        let text = args.join(",");
        p.print(&text)?;
        // Exec kept the descriptor table and the replica.
        let fd = p.open_read("before-exec")?;
        let data = p.read_to_end(fd)?;
        p.write(1, &data)?;
        Ok(42)
    });
    let out = run_process_tree(KernelConfig::default(), reg, |p| {
        let pid = p.fork(|c| {
            let fd = c.open_write("before-exec")?;
            c.write(fd, b"!kept")?;
            c.close(fd)?;
            c.exec("printer", &["a".into(), "b".into()])
        })?;
        assert_eq!(p.waitpid(pid)?, ExitStatus::Exited(42));
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console(), b"a,b!kept");
}

#[test]
fn exec_unknown_program_fails() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let pid = p.fork(|c| c.exec("no-such-binary", &[]))?;
        match p.waitpid(pid)? {
            ExitStatus::Trapped(_) => Ok(0),
            other => panic!("expected trap, got {other:?}"),
        }
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn nested_process_trees() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let pid = p.fork(|c| {
            let inner = c.fork(|cc| {
                let fd = cc.open_write("deep/file")?;
                cc.write(fd, b"grandchild")?;
                Ok(7)
            })?;
            assert_eq!(c.waitpid(inner)?, ExitStatus::Exited(7));
            Ok(0)
        })?;
        p.waitpid(pid)?;
        let fd = p.open_read("deep/file")?;
        assert_eq!(p.read_to_end(fd)?, b"grandchild");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn pids_are_process_local() {
    // Two sibling processes each fork children and see their own PID
    // sequences — numerically overlapping, semantically disjoint (§2.4).
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let mk = |tag: &'static str| {
            move |c: &mut det_runtime::Proc<'_>| {
                let inner = c.fork(move |cc| {
                    let fd = cc.open_write(&format!("pids/{tag}"))?;
                    cc.write(fd, b"x")?;
                    Ok(0)
                })?;
                // Both siblings observe the same local pid value.
                assert_eq!(inner.0, 2);
                c.waitpid(inner)?;
                Ok(0)
            }
        };
        let a = p.fork(mk("a"))?;
        let b = p.fork(mk("b"))?;
        p.waitpid(a)?;
        p.waitpid(b)?;
        assert_eq!(p.fs().list("pids/").len(), 2);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn fd_bookkeeping() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        let fd = p.open_write("f")?;
        assert_eq!(fd, 2); // 0/1 are the console.
        p.write(fd, b"abcdef")?;
        p.close(fd)?;
        assert!(matches!(p.write(fd, b"x"), Err(RtError::BadFd(_))));
        // Slot reuse.
        let fd2 = p.open_read("f")?;
        assert_eq!(fd2, 2);
        // Seek + partial reads.
        p.seek(fd2, 3)?;
        let mut buf = [0u8; 2];
        assert_eq!(p.read(fd2, &mut buf)?, 2);
        assert_eq!(&buf, b"de");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

// ---------------------------------------------------------------------
// Threads (private workspace model)
// ---------------------------------------------------------------------

const SHARED: Region = Region {
    start: 0x10000,
    end: 0x20000,
};

#[test]
fn actor_simulation_is_race_free() {
    // Figure 1: each child reads neighbours' *old* state and updates
    // its own actor in place; merges are conflict-free and exact.
    let nactors = 16u64;
    let steps = 4;
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        for i in 0..nactors {
            ctx.mem_mut().write_u64(SHARED.start + i * 8, i)?;
        }
        for _ in 0..steps {
            let mut group = ThreadGroup::new(ctx, SHARED, 0);
            for i in 0..nactors {
                group.fork(i, move |c| {
                    // New state = old left neighbour + old right.
                    let l = c
                        .mem()
                        .read_u64(SHARED.start + ((i + nactors - 1) % nactors) * 8)?;
                    let r = c.mem().read_u64(SHARED.start + ((i + 1) % nactors) * 8)?;
                    c.mem_mut().write_u64(SHARED.start + i * 8, l + r)?;
                    Ok(0)
                })?;
            }
            for i in 0..nactors {
                group.join(i)?;
            }
        }
        // Compare against a sequential golden model.
        let mut golden: Vec<u64> = (0..nactors).collect();
        for _ in 0..steps {
            let old = golden.clone();
            for i in 0..nactors as usize {
                golden[i] = old[(i + nactors as usize - 1) % nactors as usize]
                    + old[(i + 1) % nactors as usize];
            }
        }
        for i in 0..nactors {
            assert_eq!(
                ctx.mem().read_u64(SHARED.start + i * 8)?,
                golden[i as usize],
                "actor {i}"
            );
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn thread_write_write_race_detected() {
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let mut group = ThreadGroup::new(ctx, SHARED, 0);
        for i in 0..2u64 {
            group.fork(i, move |c| {
                c.mem_mut().write_u64(SHARED.start, 1000 + i)?;
                Ok(0)
            })?;
        }
        group.join(0)?;
        match group.join(1) {
            Err(RtError::Kernel(det_kernel::KernelError::Conflict(c))) => {
                assert_eq!(c.addr, SHARED.start);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn barriers_make_stage_results_visible() {
    // Two threads ping-pong through 3 barrier stages, each reading the
    // other's previous-stage output.
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let a = SHARED.start;
        let b = SHARED.start + 8;
        let mut group = ThreadGroup::new(ctx, SHARED, 0);
        for t in 0..2u64 {
            group.fork(t, move |c| {
                let (mine, theirs) = if t == 0 { (a, b) } else { (b, a) };
                c.mem_mut().write_u64(mine, t + 1)?;
                for _ in 0..3 {
                    threads::barrier(c)?;
                    let v = c.mem().read_u64(theirs)?;
                    c.mem_mut().write_u64(mine, v * 2)?;
                }
                Ok(0)
            })?;
        }
        let codes = group.run_to_completion(&[0, 1])?;
        assert_eq!(codes, vec![0, 0]);
        // a starts 1, b starts 2; each stage doubles the other's prior:
        // s1: a=4, b=2 ; s2: a=4,b=8 ; s3: a=16,b=8.
        assert_eq!(ctx.mem().read_u64(a)?, 16);
        assert_eq!(ctx.mem().read_u64(b)?, 8);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

// ---------------------------------------------------------------------
// Deterministic scheduler (§4.5)
// ---------------------------------------------------------------------

#[test]
fn dsched_counter_under_mutex_is_exact() {
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let counter = SHARED.start;
        let mut sched = dsched::DSched::new(ctx, SHARED, 50_000, 100)?;
        for t in 0..4u64 {
            sched.spawn(t, move |c| {
                for _ in 0..10 {
                    dsched::mutex_lock(c, 0)?;
                    let v = c.mem().read_u64(counter)?;
                    c.charge(5_000)?; // Work inside the critical section.
                    c.mem_mut().write_u64(counter, v + 1)?;
                    dsched::mutex_unlock(c, 0)?;
                    c.charge(10_000)?; // Work outside.
                }
                Ok(0)
            })?;
        }
        let codes = sched.run()?;
        assert_eq!(codes.len(), 4);
        assert_eq!(ctx.mem().read_u64(counter)?, 40);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn dsched_is_schedule_deterministic() {
    // Unsynchronized racy writes resolve last-writer-wins — but
    // REPEATABLY: identical final state and virtual time across runs.
    let run = |perturb: bool| {
        run_deterministic(KernelConfig::default(), move |ctx| {
            ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
            let mut sched = dsched::DSched::new(ctx, SHARED, 20_000, 100)?;
            for t in 0..3u64 {
                sched.spawn(t, move |c| {
                    for k in 0..5u64 {
                        if perturb && t == 1 {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        // Racy write to a shared slot.
                        c.mem_mut().write_u64(SHARED.start, t * 100 + k)?;
                        c.charge(7_000)?;
                    }
                    Ok(0)
                })?;
            }
            sched.run()?;
            Ok(ctx.mem().read_u64(SHARED.start)? as i32)
        })
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.exit, b.exit, "racy result must still be repeatable");
    assert_eq!(a.vclock_ns, b.vclock_ns);
}

#[test]
fn dsched_mutex_handoff_to_waiter() {
    // Thread 0 holds the mutex for a long time; thread 1 blocks on it
    // and gets it after the unlock.
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let slot = SHARED.start;
        let mut sched = dsched::DSched::new(ctx, SHARED, 10_000, 100)?;
        sched.spawn(0, move |c| {
            dsched::mutex_lock(c, 3)?;
            c.charge(50_000)?; // Several quanta inside the lock.
            c.mem_mut().write_u64(slot, 1)?;
            dsched::mutex_unlock(c, 3)?;
            Ok(0)
        })?;
        sched.spawn(1, move |c| {
            c.charge(15_000)?; // Arrive second.
            dsched::mutex_lock(c, 3)?;
            // Must observe thread 0's protected write.
            let v = c.mem().read_u64(slot)?;
            dsched::mutex_unlock(c, 3)?;
            Ok(v as i32)
        })?;
        let codes = sched.run()?;
        let t1 = codes.iter().find(|(t, _)| *t == 1).expect("t1").1;
        assert_eq!(t1, 1, "waiter must see the protected write");
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn dsched_deadlock_detected() {
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let mut sched = dsched::DSched::new(ctx, SHARED, 10_000, 100)?;
        for t in 0..2u64 {
            sched.spawn(t, move |c| {
                // Each thread locks its own mutex then the other's.
                let (first, second) = if t == 0 { (0, 1) } else { (1, 0) };
                dsched::mutex_lock(c, first)?;
                c.charge(20_000)?; // Hold across a quantum.
                dsched::mutex_lock(c, second)?;
                dsched::mutex_unlock(c, second)?;
                dsched::mutex_unlock(c, first)?;
                Ok(0)
            })?;
        }
        match sched.run() {
            Err(RtError::Invalid(msg)) => {
                assert!(msg.contains("deadlock"));
                Ok(0)
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    });
    assert_eq!(out.exit, Ok(0));
}

#[test]
fn dsched_condvar_producer_consumer() {
    let out = run_deterministic(KernelConfig::default(), move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        let flag = SHARED.start;
        let data = SHARED.start + 8;
        let mut sched = dsched::DSched::new(ctx, SHARED, 10_000, 100)?;
        // Consumer waits until the producer sets the flag.
        sched.spawn(0, move |c| {
            dsched::mutex_lock(c, 0)?;
            while c.mem().read_u64(flag)? == 0 {
                dsched::cond_wait(c, 0, 9)?;
            }
            let v = c.mem().read_u64(data)?;
            dsched::mutex_unlock(c, 0)?;
            Ok(v as i32)
        })?;
        sched.spawn(1, move |c| {
            c.charge(30_000)?;
            dsched::mutex_lock(c, 0)?;
            c.mem_mut().write_u64(data, 77)?;
            c.mem_mut().write_u64(flag, 1)?;
            dsched::mutex_unlock(c, 0)?;
            dsched::cond_signal(c, 9)?;
            Ok(0)
        })?;
        let codes = sched.run()?;
        let consumer = codes.iter().find(|(t, _)| *t == 0).expect("t0").1;
        assert_eq!(consumer, 77);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}

// ---------------------------------------------------------------------
// Shell
// ---------------------------------------------------------------------

#[test]
fn shell_pipeline_with_redirection() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        shell::run_script(
            p,
            "
            echo one two three > words.txt
            cat words.txt | wc > counts.txt
            cat counts.txt
            ",
        )
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console_string(), "1 3 14\n");
}

#[test]
fn shell_append_and_sequencing() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        shell::run_script(p, "echo a > log ; echo b >> log ; cat log")
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console_string(), "a\nb\n");
}

#[test]
fn shell_runs_registered_programs() {
    let mut reg = ProgramRegistry::new();
    reg.register("rev", |p, _| {
        let data = p.read_to_end(0)?;
        let mut line: Vec<u8> = data.strip_suffix(b"\n").unwrap_or(&data).to_vec();
        line.reverse();
        p.write(1, &line)?;
        p.write(1, b"\n")?;
        Ok(0)
    });
    let out = run_process_tree(KernelConfig::default(), reg, |p| {
        shell::run_script(p, "echo hello | rev")
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console_string(), "olleh\n");
}

#[test]
fn shell_ls_cp_rm() {
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), |p| {
        shell::run_script(
            p,
            "
            echo data > a.txt
            cp a.txt b.txt
            rm a.txt
            ls
            ",
        )
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.console_string(), "b.txt\n");
}

#[test]
fn shell_reruns_byte_identical_with_and_without_redirection() {
    // §4.3: rerunning a parallel computation with and without output
    // redirection yields byte-identical console/log output.
    let script = "
        echo alpha > t1
        echo beta > t2
        cat t1 t2
    ";
    let run = || {
        run_process_tree(KernelConfig::default(), ProgramRegistry::new(), move |p| {
            shell::run_script(p, script)
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.console(), b.console());
    assert_eq!(a.console_string(), "alpha\nbeta\n");
}
