//! Criterion benches of the substrate's *real* performance on this
//! host: the unit costs the virtual-time model parameterizes
//! (page-table COW work, merge diffing throughput, syscall rendezvous,
//! VM interpretation rate). Compare these against
//! `CostModel::calibrated()` to audit the calibration.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use det_kernel::{GetSpec, Kernel, KernelConfig, Program, PutSpec};
use det_memory::{AddressSpace, ConflictPolicy, Perm, Region};
use det_vm::{Cpu, VmExit, assemble};

const MB4: Region = Region {
    start: 0x10000,
    end: 0x10000 + 4 * 1024 * 1024,
};

fn bench_cow_copy(c: &mut Criterion) {
    let mut src = AddressSpace::new();
    src.map_zero(MB4, Perm::RW).unwrap();
    for i in 0..1024u64 {
        src.write_u64(MB4.start + i * 4096, i).unwrap();
    }
    c.bench_function("cow_virtual_copy_4MiB", |b| {
        b.iter(|| {
            let mut dst = AddressSpace::new();
            dst.copy_from(black_box(&src), MB4, MB4.start).unwrap();
            black_box(dst.page_count())
        })
    });
    c.bench_function("snapshot_4MiB", |b| {
        b.iter(|| black_box(src.snapshot().page_count()))
    });
}

fn bench_merge(c: &mut Criterion) {
    // Dirty child: every page touched (worst-case diff volume).
    let mut parent = AddressSpace::new();
    parent.map_zero(MB4, Perm::RW).unwrap();
    let mut child = AddressSpace::new();
    child.copy_from(&parent, MB4, MB4.start).unwrap();
    let snap = child.snapshot();
    for vpn in 0..1024u64 {
        child
            .write_u64(MB4.start + vpn * 4096 + 64, vpn + 1)
            .unwrap();
    }
    c.bench_function("merge_diff_4MiB_all_pages_dirty", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&child, &snap, MB4, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });
    // Clean child: O(1) page skipping.
    let clean = snap.clone();
    c.bench_function("merge_unchanged_4MiB", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&clean, &snap, MB4, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });
}

fn bench_syscall_rendezvous(c: &mut Criterion) {
    c.bench_function("put_get_rendezvous_roundtrip", |b| {
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            Kernel::new(KernelConfig::default()).run(move |ctx| {
                ctx.put(
                    0,
                    PutSpec::new()
                        .program(Program::native(move |cc| {
                            for _ in 0..iters {
                                cc.ret(0)?;
                            }
                            Ok(0)
                        }))
                        .start(),
                )?;
                for _ in 0..iters {
                    ctx.get(0, GetSpec::new())?;
                    ctx.put(0, PutSpec::new().start())?;
                }
                ctx.get(0, GetSpec::new())?;
                Ok(0)
            });
            start.elapsed()
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    let image = assemble(
        "
        ldi r1, 0
    loop:
        addi r1, r1, 1
        addi r2, r1, 3
        xor  r3, r2, r1
        beq r0, r0, loop
        ",
    )
    .unwrap();
    c.bench_function("vm_interpreter_mips", |b| {
        b.iter_custom(|iters| {
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
            mem.write(0, &image.bytes).unwrap();
            let mut cpu = Cpu::new();
            let start = std::time::Instant::now();
            let exit = cpu.run(&mut mem, Some(iters));
            assert_eq!(exit, VmExit::OutOfBudget);
            start.elapsed()
        })
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cow_copy, bench_merge, bench_syscall_rendezvous, bench_vm
}
criterion_main!(substrate);
