//! Criterion benches of the substrate's *real* performance on this
//! host: the unit costs the virtual-time model parameterizes
//! (page-table COW work, merge diffing throughput, syscall rendezvous,
//! VM interpretation rate). Compare these against
//! `CostModel::calibrated()` to audit the calibration.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use det_kernel::{CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec};
use det_memory::{AddressSpace, ConflictPolicy, Perm, Region};
use det_vm::{Cpu, VmExit, assemble};

const MB4: Region = Region {
    start: 0x10000,
    end: 0x10000 + 4 * 1024 * 1024,
};

fn bench_cow_copy(c: &mut Criterion) {
    let mut src = AddressSpace::new();
    src.map_zero(MB4, Perm::RW).unwrap();
    for i in 0..1024u64 {
        src.write_u64(MB4.start + i * 4096, i).unwrap();
    }
    c.bench_function("cow_virtual_copy_4MiB", |b| {
        b.iter(|| {
            let mut dst = AddressSpace::new();
            dst.copy_from(black_box(&src), MB4, MB4.start).unwrap();
            black_box(dst.page_count())
        })
    });
    c.bench_function("snapshot_4MiB", |b| {
        b.iter(|| black_box(src.snapshot().page_count()))
    });
}

/// The structural-clone bench group: the paper's claim that fork and
/// snapshot cost O(pages-touched), not O(pages-mapped) (PAPER.md §3.2,
/// §8), measured on this substrate. With the two-level shared page
/// table a leaf-congruent clone is O(leaves): sharing one `Arc` per
/// `det_memory::PAGES_PER_LEAF` (512) pages.
fn bench_clone(c: &mut Criterion) {
    use det_memory::PAGES_PER_LEAF;
    const LEAF_BYTES: u64 = (PAGES_PER_LEAF * 4096) as u64;
    // A leaf-aligned 4 MiB region (2 whole leaves), fully written.
    let aligned = Region {
        start: 4 * LEAF_BYTES,
        end: 4 * LEAF_BYTES + 4 * 1024 * 1024,
    };
    let mut src = AddressSpace::new();
    src.map_zero(aligned, Perm::RW).unwrap();
    for i in 0..1024u64 {
        src.write_u64(aligned.start + i * 4096, i).unwrap();
    }

    let mut g = c.benchmark_group("clone");
    // Snapshot: clones the root spine only (2 Arc bumps for 4 MiB).
    g.bench_function("snapshot_4MiB_aligned", |b| {
        b.iter(|| black_box(src.snapshot().page_count()))
    });
    // Leaf-congruent virtual copy: zero boundary pages.
    g.bench_function("virtual_copy_4MiB_aligned", |b| {
        b.iter(|| {
            let mut dst = AddressSpace::new();
            let stats = dst
                .copy_from_counted(black_box(&src), aligned, aligned.start)
                .unwrap();
            assert_eq!(stats.leaves_shared, 2);
            black_box(stats)
        })
    });
    // Deep fork chain: 64 generations, each forking from the last and
    // dirtying one page — the cost each generation pays must track the
    // single touched page, not the 1024 mapped ones.
    g.bench_function("deep_fork_chain_64", |b| {
        b.iter(|| {
            let mut gen0 = src.clone();
            for i in 0..64u64 {
                let mut child = AddressSpace::new();
                child.copy_from(&gen0, aligned, aligned.start).unwrap();
                child
                    .write_u64(aligned.start + (i % 1024) * 4096, i)
                    .unwrap();
                gen0 = child;
            }
            black_box(gen0.page_count())
        })
    });
    // 64-way fan-out: the fork half of the paper's fork/join pattern at
    // high fan-out, each child touching one private page.
    g.bench_function("fanout_64_children", |b| {
        b.iter(|| {
            let children: Vec<AddressSpace> = (0..64u64)
                .map(|i| {
                    let mut ch = AddressSpace::new();
                    ch.copy_from(&src, aligned, aligned.start).unwrap();
                    ch.write_u64(aligned.start + i * 4096, i + 1).unwrap();
                    ch
                })
                .collect();
            black_box(children.len())
        })
    });
    g.finish();
}

/// Builds a 4 MiB parent, a forked child with snapshot, and applies
/// `dirty` to the child (the fork idiom of PAPER.md §3.2: virtual copy
/// plus reference snapshot).
fn fork_4mib(dirty: impl Fn(&mut AddressSpace)) -> (AddressSpace, AddressSpace, AddressSpace) {
    let mut parent = AddressSpace::new();
    parent.map_zero(MB4, Perm::RW).unwrap();
    let mut child = AddressSpace::new();
    child.copy_from(&parent, MB4, MB4.start).unwrap();
    let snap = child.snapshot();
    dirty(&mut child);
    (parent, child, snap)
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");

    // Sparse-dirty: 16 of 1024 pages touched — the fork/join common
    // case the dirty write-set exists for.
    let (parent, child, snap) = fork_4mib(|ch| {
        for i in 0..16u64 {
            ch.write_u64(MB4.start + i * 64 * 4096 + 64, i + 1).unwrap();
        }
    });
    g.bench_function("sparse_dirty_16_of_1024", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&child, &snap, MB4, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });
    // The naive oracle on the same inputs: the pre-optimization engine.
    g.bench_function("sparse_dirty_16_of_1024_reference", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                det_memory::reference::merge_from_reference(
                    &mut p,
                    &child,
                    &snap,
                    MB4,
                    ConflictPolicy::Strict,
                )
                .unwrap(),
            )
        })
    });

    // Dense-dirty: every page touched (worst-case diff volume).
    let (parent, child, snap) = fork_4mib(|ch| {
        for vpn in 0..1024u64 {
            ch.write_u64(MB4.start + vpn * 4096 + 64, vpn + 1).unwrap();
        }
    });
    g.bench_function("dense_dirty_1024_of_1024", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&child, &snap, MB4, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });

    // Conflict-early: both sides wrote the first page; the scan must
    // stop at the lowest conflicting address instead of diffing the
    // remaining 1023 dirty pages.
    let (parent, child, snap) = fork_4mib(|ch| {
        for vpn in 0..1024u64 {
            ch.write_u64(MB4.start + vpn * 4096 + 64, vpn + 1).unwrap();
        }
    });
    let mut parent = parent;
    parent.write_u64(MB4.start + 64, 0xDEAD).unwrap();
    g.bench_function("conflict_early_first_page", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            let (stats, conflict) = p
                .try_merge_from(&child, &snap, MB4, ConflictPolicy::Strict)
                .unwrap();
            assert!(conflict.is_some());
            black_box(stats)
        })
    });

    // Zero-page: the child mapped 1024 fresh zero pages it never
    // wrote — dirty candidates that still alias the global zero frame
    // and merge with no byte work.
    let (parent, child, snap) = fork_4mib(|ch| {
        ch.map_zero(
            Region {
                start: MB4.end,
                end: MB4.end + 4 * 1024 * 1024,
            },
            Perm::RW,
        )
        .unwrap();
    });
    let wide = Region {
        start: MB4.start,
        end: MB4.end + 4 * 1024 * 1024,
    };
    g.bench_function("zero_page_1024_mapped_unwritten", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&child, &snap, wide, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });

    // Clean child: empty dirty set, O(dirty)=O(0) page examination.
    let (parent, child, snap) = fork_4mib(|_| {});
    g.bench_function("unchanged_0_of_1024", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            black_box(
                p.merge_from(&child, &snap, MB4, ConflictPolicy::Strict)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// The rendezvous bench group: the put/get/park hot path under the
/// targeted-wakeup engine (DESIGN.md §6).
///
/// The headline `put_get_rendezvous_roundtrip` keeps its PR 1 name so
/// the trajectory stays comparable (PR 4 baseline on the build host:
/// ~7.7 µs/roundtrip, notify-all engine, native child). Since PR 5 it
/// drives a VM child — the mode in which the kernel enforces
/// determinism on arbitrary code — which the engine executes *inline*
/// on the waiting parent, so a roundtrip pays zero host context
/// switches. The threaded/native variants below keep the
/// context-switch-bound paths measured.
fn bench_syscall_rendezvous(c: &mut Criterion) {
    use det_kernel::{Regs, VmDispatch};
    use det_memory::Perm;

    // Two VM instructions per rendezvous roundtrip.
    const RET_LOOP: &str = "
    loop:
        sys 0
        beq r0, r0, loop
    ";
    let code = Region::new(0, 0x1000);
    let image = assemble(RET_LOOP).unwrap();
    let vm_child =
        move |image: &det_vm::Image, ctx: &mut det_kernel::SpaceCtx| -> det_kernel::Result<()> {
            ctx.mem_mut().map_zero(code, Perm::RW)?;
            ctx.mem_mut().write(0, &image.bytes)?;
            ctx.put(
                0,
                PutSpec::new()
                    .program(Program::Vm)
                    .copy(CopySpec::mirror(code))
                    .regs(Regs::at_entry(0))
                    .start(),
            )?;
            Ok(())
        };

    {
        let image = image.clone();
        c.bench_function("put_get_rendezvous_roundtrip", move |b| {
            b.iter_custom(|iters| {
                let image = image.clone();
                let start = std::time::Instant::now();
                Kernel::new(KernelConfig::default()).run(move |ctx| {
                    vm_child(&image, ctx)?;
                    for _ in 0..iters {
                        ctx.get(0, GetSpec::new())?;
                        ctx.put(0, PutSpec::new().start())?;
                    }
                    ctx.get(0, GetSpec::new())?;
                    Ok(0)
                });
                start.elapsed()
            })
        });
    }

    let mut g = c.benchmark_group("rendezvous");
    // The fused exchange: one kernel entry per roundtrip.
    {
        let image = image.clone();
        g.bench_function("vm_fused_put_get", move |b| {
            b.iter_custom(|iters| {
                let image = image.clone();
                let start = std::time::Instant::now();
                Kernel::new(KernelConfig::default()).run(move |ctx| {
                    vm_child(&image, ctx)?;
                    ctx.get(0, GetSpec::new())?;
                    for _ in 0..iters {
                        ctx.put_get(0, PutSpec::new().start(), GetSpec::new())?;
                    }
                    Ok(0)
                });
                start.elapsed()
            })
        });
    }
    // The same roundtrip with the VM child on its own host thread:
    // what every rendezvous cost before inline dispatch, minus the
    // old engine's broadcast wakeups.
    {
        let image = image.clone();
        g.bench_function("vm_threaded_roundtrip", move |b| {
            b.iter_custom(|iters| {
                let image = image.clone();
                let start = std::time::Instant::now();
                Kernel::new(
                    KernelConfig::builder()
                        .vm_dispatch(VmDispatch::Threaded)
                        .build(),
                )
                .run(move |ctx| {
                    vm_child(&image, ctx)?;
                    for _ in 0..iters {
                        ctx.get(0, GetSpec::new())?;
                        ctx.put(0, PutSpec::new().start())?;
                    }
                    ctx.get(0, GetSpec::new())?;
                    Ok(0)
                });
                start.elapsed()
            })
        });
    }
    // Native-closure child (the pre-PR 5 headline shape): park/wake
    // context switches bound this one.
    g.bench_function("native_thread_roundtrip", |b| {
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            Kernel::new(KernelConfig::default()).run(move |ctx| {
                ctx.put(
                    0,
                    PutSpec::new()
                        .program(Program::native(move |cc| {
                            for _ in 0..iters {
                                cc.ret(0)?;
                            }
                            Ok(0)
                        }))
                        .start(),
                )?;
                for _ in 0..iters {
                    ctx.get(0, GetSpec::new())?;
                    ctx.put(0, PutSpec::new().start())?;
                }
                ctx.get(0, GetSpec::new())?;
                Ok(0)
            });
            start.elapsed()
        })
    });
    // Parked bystanders must be invisible: with targeted wakeups a
    // roundtrip wakes only its own participants, so this must track
    // the bystander-free number (the notify-all engine woke every
    // parked space per event).
    {
        let image = image.clone();
        g.bench_function("vm_roundtrip_8_parked_bystanders", move |b| {
            b.iter_custom(|iters| {
                let image = image.clone();
                let start = std::time::Instant::now();
                Kernel::new(KernelConfig::default()).run(move |ctx| {
                    for i in 1..=8u64 {
                        ctx.put(
                            i,
                            PutSpec::new()
                                .program(Program::native(|cc| {
                                    cc.ret(0)?;
                                    Ok(0)
                                }))
                                .start(),
                        )?;
                        ctx.get(i, GetSpec::new())?;
                    }
                    vm_child(&image, ctx)?;
                    for _ in 0..iters {
                        ctx.get(0, GetSpec::new())?;
                        ctx.put(0, PutSpec::new().start())?;
                    }
                    ctx.get(0, GetSpec::new())?;
                    Ok(0)
                });
                start.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let image = assemble(det_bench::vmwork::ALU_LOOP).unwrap();
    // The headline number, same name since PR 1 so the trajectory is
    // comparable across PRs (PR 2 baseline on the original build host:
    // ~16 ns/iter; the software TLB + icache target is ≥5× that).
    c.bench_function("vm_interpreter_mips", |b| {
        b.iter_custom(|iters| {
            let mut mem = AddressSpace::new();
            mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
            mem.write(0, &image.bytes).unwrap();
            let mut cpu = Cpu::new();
            let start = std::time::Instant::now();
            let exit = cpu.run(&mut mem, Some(iters));
            assert_eq!(exit, VmExit::OutOfBudget);
            start.elapsed()
        })
    });

    let mut g = c.benchmark_group("vm");
    // TLB-hit vs TLB-miss microbenches: the same interpreter, a loop
    // whose working set fits the TLB vs one built to alias every probe
    // to the same set with different pages.
    let hit_loop = "
        li r5, 0x8000
    loop:
        ldd r1, [r5+0]
        ldd r2, [r5+8]
        beq r0, r0, loop
    ";
    for (name, src, fast) in [
        ("tlb_hit_loads", hit_loop, true),
        (
            "tlb_miss_stride_loads",
            det_bench::vmwork::TLB_MISS_STRIDE,
            true,
        ),
        ("slow_path_reference", hit_loop, false),
    ] {
        let image = assemble(src).unwrap();
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let (mut cpu, mut mem) = det_bench::vmwork::sandbox("nop");
                mem.write(0, &image.bytes).unwrap();
                cpu.fast_path = fast;
                let start = std::time::Instant::now();
                let exit = cpu.run(&mut mem, Some(iters));
                assert_eq!(exit, VmExit::OutOfBudget);
                start.elapsed()
            })
        });
    }
    // Per-workload throughput: the paper kernels in VM code.
    for k in det_bench::vmwork::KERNELS {
        let image = assemble(k.src).unwrap();
        g.bench_function(format!("{}_kernel", k.name), |b| {
            b.iter_custom(|iters| {
                let (mut cpu, mut mem) = det_bench::vmwork::sandbox("nop");
                mem.write(0, &image.bytes).unwrap();
                let start = std::time::Instant::now();
                let exit = cpu.run(&mut mem, Some(iters));
                assert_eq!(exit, VmExit::OutOfBudget);
                start.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cow_copy, bench_clone, bench_merge, bench_syscall_rendezvous, bench_vm
}
criterion_main!(substrate);
