//! Criterion benches wrapping each figure's workload at a reduced
//! size: one bench per figure/table of PAPER.md §6, measuring the real time the
//! simulation substrate takes to regenerate it. The virtual-time
//! series themselves come from `cargo run -p det-bench --bin report`.

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use det_workloads::Mode;
use det_workloads::blackscholes::{self, BsConfig};
use det_workloads::dist::{self, DistConfig};
use det_workloads::fft::{self, FftConfig};
use det_workloads::lu::{self, Layout, LuConfig};
use det_workloads::matmult::{self, MatmultConfig};
use det_workloads::md5::{self, Md5Config};
use det_workloads::qsort::{self, QsortConfig};

fn fig7_fig8_benchmarks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8");
    g.bench_function("md5_det_4t", |b| {
        b.iter(|| black_box(md5::run(Mode::Determinator, Md5Config::quick(4)).vclock_ns))
    });
    g.bench_function("md5_baseline_4t", |b| {
        b.iter(|| black_box(md5::run(Mode::Baseline, Md5Config::quick(4)).vclock_ns))
    });
    g.bench_function("matmult_det_4t", |b| {
        b.iter(|| {
            black_box(
                matmult::run(Mode::Determinator, MatmultConfig { threads: 4, n: 64 }).vclock_ns,
            )
        })
    });
    g.bench_function("qsort_det_4t", |b| {
        b.iter(|| {
            black_box(
                qsort::run(
                    Mode::Determinator,
                    QsortConfig {
                        depth: 2,
                        n: 16_384,
                    },
                )
                .vclock_ns,
            )
        })
    });
    g.bench_function("blackscholes_dsched_4t", |b| {
        b.iter(|| black_box(blackscholes::run(Mode::Determinator, BsConfig::quick(4)).vclock_ns))
    });
    g.bench_function("fft_det_4t", |b| {
        b.iter(|| {
            black_box(
                fft::run(
                    Mode::Determinator,
                    FftConfig {
                        threads: 4,
                        log2n: 10,
                    },
                )
                .vclock_ns,
            )
        })
    });
    g.bench_function("lu_cont_det_4t", |b| {
        b.iter(|| {
            black_box(
                lu::run(
                    Mode::Determinator,
                    LuConfig {
                        threads: 4,
                        n: 64,
                        layout: Layout::Contiguous,
                    },
                )
                .vclock_ns,
            )
        })
    });
    g.finish();
}

fn fig9_fig10_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_fig10");
    for n in [32usize, 128] {
        g.bench_function(format!("fig9_matmult_n{n}"), |b| {
            b.iter(|| {
                black_box(
                    matmult::run(Mode::Determinator, MatmultConfig { threads: 4, n }).vclock_ns,
                )
            })
        });
    }
    for n in [4096usize, 65_536] {
        g.bench_function(format!("fig10_qsort_n{n}"), |b| {
            b.iter(|| {
                black_box(qsort::run(Mode::Determinator, QsortConfig { depth: 2, n }).vclock_ns)
            })
        });
    }
    g.finish();
}

fn fig11_fig12_distributed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_fig12");
    let cfg = DistConfig {
        nodes: 8,
        size: 4_000,
        tcp_like: false,
    };
    g.bench_function("md5_circuit_8n", |b| {
        b.iter(|| black_box(dist::md5_circuit(cfg).vclock_ns))
    });
    g.bench_function("md5_tree_8n", |b| {
        b.iter(|| black_box(dist::md5_tree(cfg).vclock_ns))
    });
    g.bench_function("matmult_tree_8n", |b| {
        b.iter(|| {
            black_box(
                dist::matmult_tree(DistConfig {
                    nodes: 8,
                    size: 64,
                    tcp_like: false,
                })
                .vclock_ns,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig7_fig8_benchmarks, fig9_fig10_sweeps, fig11_fig12_distributed
}
criterion_main!(figures);
