//! Regenerates the paper's figures and tables in virtual time.
//!
//! ```text
//! cargo run --release -p det-bench --bin report -- all        # quick scale
//! cargo run --release -p det-bench --bin report -- all --full # paper scale
//! cargo run --release -p det-bench --bin report -- fig7 fig11
//! ```

use det_bench::{
    Scale, analyze_cost, analyze_prefetch, clone_table, fig4, fig7, fig8, fig9, fig10, fig11,
    fig12, quantum_ablation, rendezvous_table, scaling, table3, vm_mips,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = wanted.is_empty() || wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    println!(
        "# Determinator reproduction report ({})\n",
        if scale == Scale::Full {
            "full scale"
        } else {
            "quick scale"
        }
    );
    if want("fig4") {
        print!("{}", fig4().to_markdown());
    }
    if want("fig7") {
        print!("{}", fig7(scale).to_markdown());
    }
    if want("fig8") {
        print!("{}", fig8(scale).to_markdown());
    }
    if want("fig9") {
        print!("{}", fig9(scale).to_markdown());
    }
    if want("fig10") {
        print!("{}", fig10(scale).to_markdown());
    }
    if want("fig11") {
        print!("{}", fig11(scale).to_markdown());
    }
    if want("fig12") {
        print!("{}", fig12(scale).to_markdown());
    }
    if want("quantum") {
        print!("{}", quantum_ablation(scale).to_markdown());
    }
    if want("vmmips") {
        print!("{}", vm_mips(scale).to_markdown());
    }
    if want("clone") {
        print!("{}", clone_table(scale).to_markdown());
    }
    if want("rendezvous") {
        print!("{}", rendezvous_table(scale).to_markdown());
    }
    if want("scaling") {
        print!("{}", scaling(scale).to_markdown());
    }
    if want("analyze") {
        print!("{}", analyze_cost(scale).to_markdown());
        print!("{}", analyze_prefetch(scale).to_markdown());
    }
    if want("table3") {
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| std::path::PathBuf::from(d).join("../.."))
            .unwrap_or_else(|_| ".".into());
        print!("{}", table3(&root).to_markdown());
    }
}
