//! VM-coded workload kernels: the inner loops of the paper's
//! benchmarks (fft, matmult, md5) hand-written in det-vm assembly, so
//! the interpreter's real throughput — MIPS on this host — can be
//! measured per workload shape rather than only on the synthetic ALU
//! loop. Used by the `vm` bench group (benches/substrate.rs) and the
//! report binary's per-workload MIPS table.
//!
//! Each kernel initializes its own data in VM code and then loops
//! forever over a working set that fits the software TLB, the shape of
//! every paper workload's steady state; the harness bounds execution
//! with the instruction budget. Throughput is wall-clock (indicative);
//! the cache-hit statistics reported alongside are exact and
//! deterministic.

use std::time::Instant;

use det_memory::{AddressSpace, Perm, Region};
use det_vm::{Cpu, CpuCacheStats, VmExit, assemble};

/// A named VM assembly kernel.
pub struct VmKernel {
    /// Short name (matches the workload crate's module names).
    pub name: &'static str,
    /// Assembly source; must loop indefinitely.
    pub src: &'static str,
}

/// The synthetic ALU loop `vm_interpreter_mips` has always measured:
/// pure fetch/decode/dispatch, no data memory.
pub const ALU_LOOP: &str = "
    ldi r1, 0
loop:
    addi r1, r1, 1
    addi r2, r1, 3
    xor  r3, r2, r1
    beq r0, r0, loop
";

/// fft: the butterfly — two f64 loads, add/sub/scale, two stores,
/// marching a pair of pointers across a 2 KiB array.
const FFT_SRC: &str = "
    li   r5, 0x8000        ; a[]
    li   r6, 0x8400        ; b[]
    ldi  r1, 3
    cvtif r10, r1          ; twiddle-ish scale 3.0
init:
    addi r1, r1, 1
    cvtif r2, r1
    std  r2, [r5+0]
    std  r2, [r6+0]
    addi r5, r5, 8
    addi r6, r6, 8
    slti r3, r1, 131
    bne  r3, r0, init
    li   r5, 0x8000
    li   r6, 0x8400
outer:
    ldi  r7, 128           ; butterflies per pass
pass:
    ldd  r2, [r5+0]        ; x = a[i]
    ldd  r3, [r6+0]        ; y = b[i]
    fmul r4, r3, r10       ; t = y * w
    fadd r8, r2, r4        ; a' = x + t
    fsub r9, r2, r4        ; b' = x - t
    std  r8, [r5+0]
    std  r9, [r6+0]
    addi r5, r5, 8
    addi r6, r6, 8
    addi r7, r7, -1
    bne  r7, r0, pass
    li   r5, 0x8000
    li   r6, 0x8400
    beq  r0, r0, outer
";

/// matmult: the dot-product inner loop — two f64 loads, fused
/// multiply-accumulate, one store per row.
const MATMULT_SRC: &str = "
    li   r5, 0x8000        ; row of A
    li   r6, 0x8800        ; column of B
    ldi  r1, 0
init:
    addi r1, r1, 1
    cvtif r2, r1
    std  r2, [r5+0]
    std  r2, [r6+0]
    addi r5, r5, 8
    addi r6, r6, 8
    slti r3, r1, 256
    bne  r3, r0, init
outer:
    li   r5, 0x8000
    li   r6, 0x8800
    ldi  r7, 256           ; k loop
    ldi  r9, 0
    cvtif r9, r9           ; acc = 0.0
dot:
    ldd  r2, [r5+0]        ; A[i][k]
    ldd  r3, [r6+0]        ; B[k][j]
    fmul r4, r2, r3
    fadd r9, r9, r4        ; acc += A*B
    addi r5, r5, 8
    addi r6, r6, 8
    addi r7, r7, -1
    bne  r7, r0, dot
    li   r5, 0x9000
    std  r9, [r5+0]        ; C[i][j] = acc
    beq  r0, r0, outer
";

/// md5: the round function's shape — load a word, mix with rotates
/// (shl/shr/or), adds and xors against round constants, store back.
const MD5_SRC: &str = "
    li   r5, 0x8000        ; 64-word block
    ldi  r1, 0
init:
    addi r1, r1, 1
    muli r2, r1, 0x61d
    stw  r2, [r5+0]
    addi r5, r5, 4
    slti r3, r1, 64
    bne  r3, r0, init
    li   r10, 0x67452301   ; state a
    li   r11, 0xefcdab89   ; state b
outer:
    li   r5, 0x8000
    ldi  r7, 64
round:
    ldw  r2, [r5+0]        ; m = block[i]
    add  r3, r10, r2       ; a + m
    li   r4, 0x5a827999
    add  r3, r3, r4        ; + k
    shli r8, r3, 7         ; rotl 7
    shri r9, r3, 57
    or   r3, r8, r9
    xor  r3, r3, r11       ; mix with b
    add  r10, r11, r3      ; rotate state
    or   r11, r3, r0
    stw  r3, [r5+0]        ; write the lane back
    addi r5, r5, 4
    addi r7, r7, -1
    bne  r7, r0, round
    beq  r0, r0, outer
";

/// The paper-workload kernels measured by the MIPS table and benches.
pub const KERNELS: &[VmKernel] = &[
    VmKernel {
        name: "fft",
        src: FFT_SRC,
    },
    VmKernel {
        name: "matmult",
        src: MATMULT_SRC,
    },
    VmKernel {
        name: "md5",
        src: MD5_SRC,
    },
];

/// A TLB-hostile load loop: alternating accesses 64 pages apart map to
/// the same direct-mapped TLB index with different tags, so every load
/// misses — the miss-path microbench.
pub const TLB_MISS_STRIDE: &str = "
    li   r5, 0x100000
    li   r6, 0x140000      ; +64 pages: same TLB set, different page
loop:
    ldd  r1, [r5+0]
    ldd  r2, [r6+0]
    beq  r0, r0, loop
";

/// Result of one measured kernel run.
pub struct KernelRun {
    /// Instructions retired.
    pub insns: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// The CPU's cache counters over the run.
    pub stats: CpuCacheStats,
}

impl KernelRun {
    /// Million instructions per second.
    pub fn mips(&self) -> f64 {
        self.insns as f64 * 1e3 / self.wall_ns.max(1) as f64
    }

    /// Nanoseconds per instruction.
    pub fn ns_per_insn(&self) -> f64 {
        self.wall_ns as f64 / self.insns.max(1) as f64
    }
}

/// Builds the standard kernel sandbox: 16 pages of code + the data
/// window the kernels use (plus the stride bench's far pages).
pub fn sandbox(src: &str) -> (Cpu, AddressSpace) {
    let image = assemble(src).expect("kernel assembles");
    let mut mem = AddressSpace::new();
    mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
    mem.map_zero(Region::new(0x100000, 0x180000), Perm::RW)
        .unwrap();
    mem.write(0, &image.bytes).unwrap();
    (Cpu::new(), mem)
}

/// Runs `src` for `budget` instructions (after a warm-up quarter) and
/// reports throughput + cache stats. `fast` selects the TLB/icache
/// path or the pre-TLB reference interpreter.
pub fn run_kernel(src: &str, budget: u64, fast: bool) -> KernelRun {
    let (mut cpu, mut mem) = sandbox(src);
    if !fast {
        cpu.fast_path = false;
    }
    assert_eq!(cpu.run(&mut mem, Some(budget / 4)), VmExit::OutOfBudget);
    let mark = cpu.cache_stats;
    let start = Instant::now();
    assert_eq!(cpu.run(&mut mem, Some(budget)), VmExit::OutOfBudget);
    let wall_ns = start.elapsed().as_nanos() as u64;
    KernelRun {
        insns: budget,
        wall_ns,
        stats: cpu.cache_stats.since(&mark),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kernel assembles, runs indefinitely, and (except the
    /// deliberately hostile stride loop) keeps the TLB hot.
    #[test]
    fn kernels_run_and_stay_hot() {
        for k in KERNELS {
            let run = run_kernel(k.src, 200_000, true);
            assert!(
                run.stats.hit_rate() > 0.99,
                "{}: hit rate {}",
                k.name,
                run.stats.hit_rate()
            );
        }
        let alu = run_kernel(ALU_LOOP, 100_000, true);
        assert!(alu.stats.hit_rate() > 0.999);
    }

    /// The stride loop really does defeat the direct-mapped TLB: every
    /// load walks the page table.
    #[test]
    fn stride_loop_misses() {
        let run = run_kernel(TLB_MISS_STRIDE, 90_000, true);
        // 1 load per 1.5 instructions (ldd, ldd, beq), every one a
        // fill: walk count tracks the load count.
        assert!(
            run.stats.tlb_read_fills > run.insns / 4,
            "fills {} of {} insns",
            run.stats.tlb_read_fills,
            run.insns
        );
    }
}
