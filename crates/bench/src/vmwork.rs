//! VM-coded workload kernels: the inner loops of the paper's
//! benchmarks (fft, matmult, md5) hand-written in det-vm assembly, so
//! the interpreter's real throughput — MIPS on this host — can be
//! measured per workload shape rather than only on the synthetic ALU
//! loop. Used by the `vm` bench group (benches/substrate.rs) and the
//! report binary's per-workload MIPS table.
//!
//! Each kernel initializes its own data in VM code and then loops
//! forever over a working set that fits the software TLB, the shape of
//! every paper workload's steady state; the harness bounds execution
//! with the instruction budget. Throughput is wall-clock (indicative);
//! the cache-hit statistics reported alongside are exact and
//! deterministic.

use std::time::Instant;

use det_memory::{AddressSpace, Perm, Region};
use det_vm::{Cpu, CpuCacheStats, VmExit, assemble};

/// A named VM assembly kernel.
pub struct VmKernel {
    /// Short name (matches the workload crate's module names).
    pub name: &'static str,
    /// Assembly source; must loop indefinitely.
    pub src: &'static str,
}

/// The synthetic ALU loop and the TLB-hostile stride loop, re-exported
/// from the registered corpus so existing bench call sites keep their
/// names.
pub use det_vm::corpus::{ALU_LOOP, TLB_MISS_STRIDE};

/// The paper-workload kernels measured by the MIPS table and benches.
/// Sources live in [`det_vm::corpus`] so the conformance registry and
/// the static analyzer's soundness gate exercise the same programs.
pub const KERNELS: &[VmKernel] = &[
    VmKernel {
        name: "fft",
        src: det_vm::corpus::FFT_KERNEL,
    },
    VmKernel {
        name: "matmult",
        src: det_vm::corpus::MATMULT_KERNEL,
    },
    VmKernel {
        name: "md5",
        src: det_vm::corpus::MD5_KERNEL,
    },
    VmKernel {
        name: "qsort",
        src: det_vm::corpus::QSORT_KERNEL,
    },
];

/// Result of one measured kernel run.
pub struct KernelRun {
    /// Instructions retired.
    pub insns: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// The CPU's cache counters over the run.
    pub stats: CpuCacheStats,
}

impl KernelRun {
    /// Million instructions per second.
    pub fn mips(&self) -> f64 {
        self.insns as f64 * 1e3 / self.wall_ns.max(1) as f64
    }

    /// Nanoseconds per instruction.
    pub fn ns_per_insn(&self) -> f64 {
        self.wall_ns as f64 / self.insns.max(1) as f64
    }
}

/// Builds the standard kernel sandbox: 16 pages of code + the data
/// window the kernels use (plus the stride bench's far pages).
pub fn sandbox(src: &str) -> (Cpu, AddressSpace) {
    let image = assemble(src).expect("kernel assembles");
    let mut mem = AddressSpace::new();
    mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
    mem.map_zero(Region::new(0x100000, 0x180000), Perm::RW)
        .unwrap();
    mem.write(0, &image.bytes).unwrap();
    (Cpu::new(), mem)
}

/// Runs `src` for `budget` instructions (after a warm-up quarter) and
/// reports throughput + cache stats. `fast` selects the TLB/icache
/// path or the pre-TLB reference interpreter.
pub fn run_kernel(src: &str, budget: u64, fast: bool) -> KernelRun {
    let (mut cpu, mut mem) = sandbox(src);
    if !fast {
        cpu.fast_path = false;
    }
    assert_eq!(cpu.run(&mut mem, Some(budget / 4)), VmExit::OutOfBudget);
    let mark = cpu.cache_stats;
    let start = Instant::now();
    assert_eq!(cpu.run(&mut mem, Some(budget)), VmExit::OutOfBudget);
    let wall_ns = start.elapsed().as_nanos() as u64;
    KernelRun {
        insns: budget,
        wall_ns,
        stats: cpu.cache_stats.since(&mark),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kernel assembles, runs indefinitely, and (except the
    /// deliberately hostile stride loop) keeps the TLB hot.
    #[test]
    fn kernels_run_and_stay_hot() {
        for k in KERNELS {
            let run = run_kernel(k.src, 200_000, true);
            assert!(
                run.stats.hit_rate() > 0.99,
                "{}: hit rate {}",
                k.name,
                run.stats.hit_rate()
            );
        }
        let alu = run_kernel(ALU_LOOP, 100_000, true);
        assert!(alu.stats.hit_rate() > 0.999);
    }

    /// The stride loop really does defeat the direct-mapped TLB: every
    /// load walks the page table.
    #[test]
    fn stride_loop_misses() {
        let run = run_kernel(TLB_MISS_STRIDE, 90_000, true);
        // 1 load per 1.5 instructions (ldd, ldd, beq), every one a
        // fill: walk count tracks the load count.
        assert!(
            run.stats.tlb_read_fills > run.insns / 4,
            "fills {} of {} insns",
            run.stats.tlb_read_fills,
            run.insns
        );
    }
}
