//! Figure/table regeneration harness for the paper's evaluation (PAPER.md §6).
//!
//! Each `fig*` function computes one figure's series in virtual time
//! and returns printable rows; the `report` binary drives them. The
//! Criterion benches (in `benches/`) measure the *real* throughput of
//! the substrate on the host, validating the cost-model calibration.

use det_workloads::blackscholes::{self, BsConfig};
use det_workloads::dist::{self, DistConfig};
use det_workloads::fft::{self, FftConfig};
use det_workloads::lu::{self, Layout, LuConfig};
use det_workloads::matmult::{self, MatmultConfig};
use det_workloads::md5::{self, Md5Config};
use det_workloads::qsort::{self, QsortConfig};
use det_workloads::{Mode, speedup};

pub mod vmwork;

/// One printable table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table id and caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("\n### {}\n\n", self.title);
        out += &format!("| {} |\n", self.headers.join(" | "));
        out += &format!("|{}\n", "---|".repeat(self.headers.len()));
        for row in &self.rows {
            out += &format!("| {} |\n", row.join(" | "));
        }
        out
    }
}

/// Problem scale for report runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Seconds-per-figure sizes for CI and quick checks.
    Quick,
    /// Paper-comparable sizes (minutes).
    Full,
}

fn thread_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 12],
    }
}

/// The seven single-node benchmarks at given thread count and scale.
/// Returns (name, det_ns, base_ns).
fn bench_pair(name: &str, threads: usize, scale: Scale) -> (u64, u64) {
    let run = |mode: Mode| -> u64 {
        match (name, scale) {
            ("md5", Scale::Quick) => md5::run(mode, Md5Config::quick(threads)).vclock_ns,
            ("md5", Scale::Full) => {
                md5::run(
                    mode,
                    Md5Config {
                        threads,
                        keyspace: 200_000,
                        target: 173_210,
                    },
                )
                .vclock_ns
            }
            ("matmult", Scale::Quick) => {
                matmult::run(mode, MatmultConfig { threads, n: 128 }).vclock_ns
            }
            ("matmult", Scale::Full) => {
                matmult::run(mode, MatmultConfig { threads, n: 512 }).vclock_ns
            }
            ("qsort", Scale::Quick) => {
                qsort::run(
                    mode,
                    QsortConfig {
                        depth: threads.next_power_of_two().trailing_zeros(),
                        n: 65_536,
                    },
                )
                .vclock_ns
            }
            ("qsort", Scale::Full) => {
                qsort::run(
                    mode,
                    QsortConfig {
                        depth: threads.next_power_of_two().trailing_zeros(),
                        n: 1 << 20,
                    },
                )
                .vclock_ns
            }
            ("blackscholes", Scale::Quick) => {
                blackscholes::run(
                    mode,
                    BsConfig {
                        threads,
                        options: 16_384,
                        quantum_ns: 1_000_000,
                    },
                )
                .vclock_ns
            }
            ("blackscholes", Scale::Full) => {
                blackscholes::run(
                    mode,
                    BsConfig {
                        threads,
                        options: 65_536,
                        quantum_ns: blackscholes::PAPER_QUANTUM_NS,
                    },
                )
                .vclock_ns
            }
            ("fft", Scale::Quick) => fft::run(mode, FftConfig { threads, log2n: 13 }).vclock_ns,
            ("fft", Scale::Full) => fft::run(mode, FftConfig { threads, log2n: 16 }).vclock_ns,
            ("lu_cont", Scale::Quick) => {
                lu::run(
                    mode,
                    LuConfig {
                        threads,
                        n: 128,
                        layout: Layout::Contiguous,
                    },
                )
                .vclock_ns
            }
            ("lu_cont", Scale::Full) => {
                lu::run(
                    mode,
                    LuConfig {
                        threads,
                        n: 320,
                        layout: Layout::Contiguous,
                    },
                )
                .vclock_ns
            }
            ("lu_noncont", Scale::Quick) => {
                lu::run(
                    mode,
                    LuConfig {
                        threads,
                        n: 128,
                        layout: Layout::NonContiguous,
                    },
                )
                .vclock_ns
            }
            ("lu_noncont", Scale::Full) => {
                lu::run(
                    mode,
                    LuConfig {
                        threads,
                        n: 320,
                        layout: Layout::NonContiguous,
                    },
                )
                .vclock_ns
            }
            _ => unreachable!("unknown benchmark {name}"),
        }
    };
    (run(Mode::Determinator), run(Mode::Baseline))
}

/// All Figure 7/8 benchmark names.
pub const BENCHMARKS: &[&str] = &[
    "md5",
    "matmult",
    "qsort",
    "blackscholes",
    "fft",
    "lu_cont",
    "lu_noncont",
];

/// Figure 7: Determinator performance relative to the conventional
/// baseline (1.0 = parity, higher = Determinator faster).
pub fn fig7(scale: Scale) -> Table {
    let threads = thread_counts(scale);
    let mut rows = Vec::new();
    for &name in BENCHMARKS {
        let mut row = vec![name.to_string()];
        for &t in &threads {
            let (d, b) = bench_pair(name, t, scale);
            row.push(format!("{:.2}", b as f64 / d as f64));
        }
        rows.push(row);
    }
    let mut headers = vec!["benchmark".into()];
    headers.extend(threads.iter().map(|t| format!("{t} cpus")));
    Table {
        title: "Figure 7 — speed relative to the nondeterministic baseline (1.0 = parity)".into(),
        headers,
        rows,
    }
}

/// Figure 8: parallel speedup over Determinator's own 1-CPU run.
pub fn fig8(scale: Scale) -> Table {
    let threads = thread_counts(scale);
    let mut rows = Vec::new();
    for &name in BENCHMARKS {
        let (base, _) = bench_pair(name, 1, scale);
        let mut row = vec![name.to_string()];
        for &t in &threads {
            let (d, _) = bench_pair(name, t, scale);
            row.push(format!("{:.2}", speedup(base, d)));
        }
        rows.push(row);
    }
    let mut headers = vec!["benchmark".into()];
    headers.extend(threads.iter().map(|t| format!("{t} cpus")));
    Table {
        title: "Figure 8 — Determinator speedup over its own single-CPU run".into(),
        headers,
        rows,
    }
}

/// Figure 9: matmult baseline-relative speed vs matrix size.
pub fn fig9(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64, 128, 256],
        Scale::Full => vec![16, 32, 64, 128, 256, 512, 1024],
    };
    let rows = sizes
        .iter()
        .map(|&n| {
            let cfg = MatmultConfig { threads: 8, n };
            let d = matmult::run(Mode::Determinator, cfg).vclock_ns;
            let b = matmult::run(Mode::Baseline, cfg).vclock_ns;
            vec![n.to_string(), format!("{:.2}", b as f64 / d as f64)]
        })
        .collect();
    Table {
        title: "Figure 9 — matmult relative speed vs matrix size (8 threads)".into(),
        headers: vec!["N".into(), "relative speed".into()],
        rows,
    }
}

/// Figure 10: qsort baseline-relative speed vs array size.
pub fn fig10(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18],
        Scale::Full => vec![
            1 << 10,
            1 << 12,
            1 << 14,
            1 << 16,
            1 << 18,
            1 << 20,
            1 << 22,
        ],
    };
    let rows = sizes
        .iter()
        .map(|&n| {
            let cfg = QsortConfig { depth: 3, n };
            let d = qsort::run(Mode::Determinator, cfg).vclock_ns;
            let b = qsort::run(Mode::Baseline, cfg).vclock_ns;
            vec![n.to_string(), format!("{:.2}", b as f64 / d as f64)]
        })
        .collect();
    Table {
        title: "Figure 10 — qsort relative speed vs array size (depth-3 fork tree)".into(),
        headers: vec!["elements".into(), "relative speed".into()],
        rows,
    }
}

fn node_counts(scale: Scale) -> Vec<u16> {
    match scale {
        Scale::Quick => vec![1, 2, 4, 8, 16],
        Scale::Full => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Figure 11: distributed speedup over 1-node execution (log-log in
/// the paper; we print the series).
pub fn fig11(scale: Scale) -> Table {
    let nodes = node_counts(scale);
    let md5_size = match scale {
        Scale::Quick => 40_000,
        Scale::Full => 400_000,
    };
    let mm_size = match scale {
        Scale::Quick => 256,
        Scale::Full => 512,
    };
    let circuit1 = dist::md5_circuit(DistConfig {
        nodes: 1,
        size: md5_size,
        tcp_like: false,
    })
    .vclock_ns;
    let tree1 = dist::md5_tree(DistConfig {
        nodes: 1,
        size: md5_size,
        tcp_like: false,
    })
    .vclock_ns;
    let mm1 = dist::matmult_tree(DistConfig {
        nodes: 1,
        size: mm_size,
        tcp_like: false,
    })
    .vclock_ns;
    let mut rows = Vec::new();
    for &k in &nodes {
        let c = dist::md5_circuit(DistConfig {
            nodes: k,
            size: md5_size,
            tcp_like: false,
        })
        .vclock_ns;
        let t = dist::md5_tree(DistConfig {
            nodes: k,
            size: md5_size,
            tcp_like: false,
        })
        .vclock_ns;
        let m = dist::matmult_tree(DistConfig {
            nodes: k,
            size: mm_size,
            tcp_like: false,
        })
        .vclock_ns;
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", speedup(circuit1, c)),
            format!("{:.2}", speedup(tree1, t)),
            format!("{:.2}", speedup(mm1, m)),
        ]);
    }
    Table {
        title: "Figure 11 — distributed speedup over 1-node run".into(),
        headers: vec![
            "nodes".into(),
            "md5-circuit".into(),
            "md5-tree".into(),
            "matmult-tree".into(),
        ],
        rows,
    }
}

/// Figure 12: deterministic shared-memory benchmarks vs
/// message-passing equivalents, plus the TCP-like ablation.
pub fn fig12(scale: Scale) -> Table {
    let nodes = node_counts(scale);
    let md5_size = match scale {
        Scale::Quick => 40_000,
        Scale::Full => 400_000,
    };
    let mm_size = match scale {
        Scale::Quick => 256,
        Scale::Full => 512,
    };
    let mut rows = Vec::new();
    for &k in &nodes {
        let cfg = DistConfig {
            nodes: k,
            size: md5_size,
            tcp_like: false,
        };
        let det_md5 = dist::md5_tree(cfg).vclock_ns;
        let mp_md5 = dist::mp_md5_ns(cfg);
        let det_md5_tcp = dist::md5_tree(DistConfig {
            tcp_like: true,
            ..cfg
        })
        .vclock_ns;
        let mm_cfg = DistConfig {
            nodes: k,
            size: mm_size,
            tcp_like: false,
        };
        let det_mm = dist::matmult_tree(mm_cfg).vclock_ns;
        let mp_mm = dist::mp_matmult_ns(mm_cfg);
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", mp_md5 as f64 / det_md5 as f64),
            format!("{:.2}", mp_mm as f64 / det_mm as f64),
            format!(
                "{:+.2}%",
                (det_md5_tcp as f64 / det_md5 as f64 - 1.0) * 100.0
            ),
        ]);
    }
    Table {
        title:
            "Figure 12 — Determinator shared-memory speed relative to message-passing equivalents \
             (>1.0 = Determinator faster), with TCP-like RTT ablation"
                .into(),
        headers: vec![
            "nodes".into(),
            "md5 det/mp".into(),
            "matmult det/mp".into(),
            "TCP ablation".into(),
        ],
        rows,
    }
}

/// The blackscholes quantum ablation (PAPER.md §6.2's fixed ~35 % cost at the
/// 10 M-instruction quantum, falling with larger quanta).
pub fn quantum_ablation(scale: Scale) -> Table {
    let options = match scale {
        Scale::Quick => 16_384,
        Scale::Full => 65_536,
    };
    let base = blackscholes::run(
        Mode::Baseline,
        BsConfig {
            threads: 4,
            options,
            quantum_ns: 0,
        },
    )
    .vclock_ns as f64;
    let quanta: &[u64] = &[100_000, 300_000, 1_000_000, 3_000_000, 10_000_000];
    let rows = quanta
        .iter()
        .map(|&q| {
            let d = blackscholes::run(
                Mode::Determinator,
                BsConfig {
                    threads: 4,
                    options,
                    quantum_ns: q,
                },
            )
            .vclock_ns as f64;
            vec![
                format!("{:.1} ms", q as f64 / 1e6),
                format!("{:+.1}%", (d / base - 1.0) * 100.0),
            ]
        })
        .collect();
    Table {
        title: "Quantum ablation — blackscholes dsched overhead vs quantum size (PAPER.md §6.2)"
            .into(),
        headers: vec!["quantum".into(), "overhead vs pthreads".into()],
        rows,
    }
}

/// Figure 4: the parallel-make scheduling scenario. Three tasks of 6,
/// 2 and 4 virtual ms with a 2-worker quota: Unix `wait()` (first
/// completion) packs them in 6 ms; Determinator's deterministic
/// `wait()` (earliest fork) needs 8 ms.
pub fn fig4() -> Table {
    use det_kernel::KernelConfig;
    use det_runtime::proc::{ProgramRegistry, run_process_tree};

    let durations_ms = [6u64, 2, 4];
    // Determinator: measured with the real runtime (quota 2).
    let out = run_process_tree(KernelConfig::default(), ProgramRegistry::new(), move |p| {
        let t1 = p.fork(move |c| {
            c.charge(durations_ms[0] * 1_000_000)?;
            Ok(1)
        })?;
        let _t2 = p.fork(move |c| {
            c.charge(durations_ms[1] * 1_000_000)?;
            Ok(2)
        })?;
        // Quota of 2: wait for "any" child before starting task 3.
        // Deterministic wait() returns t1 (earliest fork), even though
        // t2 finished long before.
        let (first, _) = p.wait()?;
        assert_eq!(first, t1);
        let _t3 = p.fork(move |c| {
            c.charge(durations_ms[2] * 1_000_000)?;
            Ok(3)
        })?;
        while p.has_children() {
            p.wait()?;
        }
        Ok(0)
    });
    let det_ms = out.vclock_ns as f64 / 1e6;
    // Unix: wait() returns the 2 ms task first, so task 3 starts at
    // 2 ms and the makespan is max(6, 2+4) = 6 ms.
    let unix_ms = 6.0;
    Table {
        title: "Figure 4 — `make -j2` schedule: 3 tasks (6/2/4 ms), 2-worker quota".into(),
        headers: vec!["system".into(), "makespan".into(), "schedule".into()],
        rows: vec![
            vec![
                "Unix (first-completion wait)".into(),
                format!("{unix_ms:.1} ms"),
                "t3 starts when t2 (2 ms) finishes".into(),
            ],
            vec![
                "Determinator (earliest-fork wait)".into(),
                format!("{det_ms:.1} ms"),
                "t3 starts only when t1 (6 ms) finishes".into(),
            ],
        ],
    }
}

/// Per-workload VM interpreter throughput: host MIPS of each VM-coded
/// workload kernel with the software TLB + decoded-instruction cache
/// on, against the pre-TLB reference interpreter, plus the exact
/// (deterministic) cache statistics behind the speedup. Wall-clock
/// numbers are indicative; the hit rates and walk counts are not.
pub fn vm_mips(scale: Scale) -> Table {
    let budget = match scale {
        Scale::Quick => 2_000_000,
        Scale::Full => 20_000_000,
    };
    let mut rows = Vec::new();
    let mut kernels: Vec<(&str, &str)> = vec![("alu_loop", vmwork::ALU_LOOP)];
    kernels.extend(vmwork::KERNELS.iter().map(|k| (k.name, k.src)));
    for (name, src) in kernels {
        let fast = vmwork::run_kernel(src, budget, true);
        let slow = vmwork::run_kernel(src, budget, false);
        let s = fast.stats;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", fast.mips()),
            format!("{:.1}", slow.mips()),
            format!("{:.2}x", slow.ns_per_insn() / fast.ns_per_insn()),
            format!("{:.4}", s.hit_rate()),
            format!("{:.4}", s.pages_walked as f64 * 1e3 / fast.insns as f64),
        ]);
    }
    Table {
        title: "VM interpreter throughput — per-workload MIPS, software TLB vs pre-TLB reference"
            .into(),
        headers: vec![
            "kernel".into(),
            "MIPS (tlb)".into(),
            "MIPS (reference)".into(),
            "speedup".into(),
            "cache hit rate".into(),
            "walks / kinsn".into(),
        ],
        rows,
    }
}

/// The structural-clone cost table (`report -- clone`): how much
/// page-table work fork/snapshot actually performs under the two-level
/// shared table, per operation shape. The work counts (leaves shared,
/// boundary pages) are deterministic; the host ns column is indicative
/// (shim criterion caveat) and the virtual-time column is what the
/// kernel charges via `CostModel::calibrated()` — the O(touched)
/// fork/snapshot cost of PAPER.md §3.2/§8.
pub fn clone_table(scale: Scale) -> Table {
    use det_kernel::CostModel;
    use det_memory::{AddressSpace, PAGES_PER_LEAF, Perm, Region};

    const PAGE: u64 = 4096;
    let leaf_bytes = PAGES_PER_LEAF as u64 * PAGE;
    let costs = CostModel::calibrated();
    let reps = match scale {
        Scale::Quick => 200,
        Scale::Full => 2_000,
    };

    let build = |bytes: u64, start: u64| -> AddressSpace {
        let mut s = AddressSpace::new();
        let r = Region::sized(start, bytes);
        s.map_zero(r, Perm::RW).unwrap();
        for vpn in 0..bytes / PAGE {
            s.write_u64(start + vpn * PAGE, vpn + 1).unwrap();
        }
        s
    };

    let mut rows = Vec::new();
    let mut add = |name: &str, src: &mut AddressSpace, region: Region, dst: Option<u64>| {
        // One counted run for the deterministic work split…
        let (stats, pages) = match dst {
            Some(d) => {
                let mut t = AddressSpace::new();
                let cs = t.copy_from_counted(src, region, d).unwrap();
                (Some(cs), cs.pages)
            }
            None => (None, src.snapshot().page_count() as u64),
        };
        // …then repeated runs for an indicative host cost.
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            match dst {
                Some(d) => {
                    let mut t = AddressSpace::new();
                    std::hint::black_box(t.copy_from_counted(src, region, d).unwrap());
                }
                None => {
                    std::hint::black_box(src.snapshot().page_count());
                }
            }
        }
        let host_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        // A snapshot's structural work is its spine: all leaves
        // shared, no boundary pages. Using CloneStats + the kernel's
        // own copy_cost_ps keeps this column equal to what the kernel
        // actually charges.
        let cs = stats.unwrap_or(det_memory::CloneStats {
            pages,
            leaves_shared: src.leaf_count() as u64,
            boundary_pages: 0,
        });
        let virt_ps = costs.copy_cost_ps(&cs);
        rows.push(vec![
            name.to_string(),
            pages.to_string(),
            cs.leaves_shared.to_string(),
            cs.boundary_pages.to_string(),
            format!("{host_ns:.0}"),
            format!("{:.1}", virt_ps as f64 / 1000.0),
        ]);
    };

    let mb4 = 4 * 1024 * 1024;
    let mut aligned = build(mb4, 4 * leaf_bytes);
    let aligned_r = Region::sized(4 * leaf_bytes, mb4);
    add("snapshot 4 MiB", &mut aligned, aligned_r, None);
    add(
        "virtual copy 4 MiB, leaf-congruent",
        &mut aligned,
        aligned_r,
        Some(4 * leaf_bytes),
    );
    add(
        "virtual copy 4 MiB, page-shifted (no sharing)",
        &mut aligned,
        aligned_r,
        Some(4 * leaf_bytes + PAGE),
    );
    let mut unaligned = build(mb4, 4 * leaf_bytes + 16 * PAGE);
    add(
        "virtual copy 4 MiB, mid-leaf range",
        &mut unaligned,
        Region::sized(4 * leaf_bytes + 16 * PAGE, mb4),
        Some(4 * leaf_bytes + 16 * PAGE),
    );
    let mb64 = 64 * 1024 * 1024;
    let mut big = build(mb64, 8 * leaf_bytes);
    let big_r = Region::sized(8 * leaf_bytes, mb64);
    add("snapshot 64 MiB", &mut big, big_r, None);
    add(
        "virtual copy 64 MiB, leaf-congruent",
        &mut big,
        big_r,
        Some(8 * leaf_bytes),
    );

    Table {
        title: "Structural clone — fork/snapshot page-table work under the shared two-level \
                table (PAPER.md §3.2, §8)"
            .into(),
        headers: vec![
            "operation".into(),
            "pages".into(),
            "leaves shared".into(),
            "boundary pages".into(),
            "host ns/op".into(),
            "virtual ns/op".into(),
        ],
        rows,
    }
}

/// The rendezvous cost table (`report -- rendezvous`): what a
/// put/get/park roundtrip actually costs on this host under the
/// targeted-wakeup engine (DESIGN.md §6), per execution-vehicle
/// pattern. The wakeup and spurious-wake columns come straight from
/// the kernel's engine counters: wakeups are a deterministic function
/// of the rendezvous history (and exactly 0 for inline VM dispatch);
/// spurious wakes are host-timing observability. Host ns/roundtrip is
/// indicative (shim criterion caveat); the virtual column is what the
/// cost model charges for the same roundtrip.
pub fn rendezvous_table(scale: Scale) -> Table {
    use det_kernel::{
        CopySpec, GetSpec, Kernel, KernelConfig, Perm, Program, PutSpec, Region, Regs, RunOutcome,
        VmDispatch,
    };

    let rounds: u64 = match scale {
        Scale::Quick => 2_000,
        Scale::Full => 20_000,
    };
    // Two VM instructions per rendezvous roundtrip.
    let image = det_vm::assemble(
        "
    loop:
        sys 0
        beq r0, r0, loop
    ",
    )
    .unwrap();
    let code = Region::new(0, 0x1000);

    #[derive(Clone, Copy, PartialEq)]
    enum Pattern {
        VmInline,
        VmInlineFused,
        VmThreaded,
        NativeThreaded,
    }
    let run = |p: Pattern| -> (f64, RunOutcome) {
        let image = image.clone();
        let dispatch = match p {
            Pattern::VmThreaded => VmDispatch::Threaded,
            _ => VmDispatch::Inline,
        };
        let t0 = std::time::Instant::now();
        let out =
            Kernel::new(KernelConfig::builder().vm_dispatch(dispatch).build()).run(move |ctx| {
                if p == Pattern::NativeThreaded {
                    ctx.put(
                        0,
                        PutSpec::new()
                            .program(Program::native(move |cc| {
                                for _ in 0..rounds {
                                    cc.ret(0)?;
                                }
                                Ok(0)
                            }))
                            .start(),
                    )?;
                } else {
                    ctx.mem_mut().map_zero(code, Perm::RW)?;
                    ctx.mem_mut().write(0, &image.bytes)?;
                    ctx.put(
                        0,
                        PutSpec::new()
                            .program(Program::Vm)
                            .copy(CopySpec::mirror(code))
                            .regs(Regs::at_entry(0))
                            .start(),
                    )?;
                }
                if p == Pattern::VmInlineFused {
                    ctx.get(0, GetSpec::new())?;
                    for _ in 0..rounds {
                        ctx.put_get(0, PutSpec::new().start(), GetSpec::new())?;
                    }
                } else {
                    for _ in 0..rounds {
                        ctx.get(0, GetSpec::new())?;
                        ctx.put(0, PutSpec::new().start())?;
                    }
                    ctx.get(0, GetSpec::new())?;
                }
                Ok(0)
            });
        let host_ns = t0.elapsed().as_nanos() as f64 / rounds as f64;
        (host_ns, out)
    };

    let mut rows = Vec::new();
    for (name, p) in [
        ("vm child, inline dispatch (put + get)", Pattern::VmInline),
        (
            "vm child, inline dispatch (fused put_get)",
            Pattern::VmInlineFused,
        ),
        ("vm child, dedicated thread", Pattern::VmThreaded),
        ("native child, dedicated thread", Pattern::NativeThreaded),
    ] {
        let (host_ns, out) = run(p);
        let s = &out.stats;
        rows.push(vec![
            name.to_string(),
            rounds.to_string(),
            format!("{host_ns:.0}"),
            s.condvar_wakeups.to_string(),
            format!("{:.3}", s.condvar_wakeups as f64 / rounds as f64),
            out.host.spurious_wakeups.to_string(),
            format!("{:.1}", out.vclock_ns as f64 / rounds as f64),
        ]);
    }
    Table {
        title: "Rendezvous — put/get/park roundtrip cost under the targeted-wakeup engine \
                (DESIGN.md §6; PAPER.md §3.2)"
            .into(),
        headers: vec![
            "pattern".into(),
            "roundtrips".into(),
            "host ns/rt".into(),
            "wakeups".into(),
            "wakeups/rt".into(),
            "spurious".into(),
            "virtual ns/rt".into(),
        ],
        rows,
    }
}

/// Shard scaling of the real-thread cluster runtime (§6.3): the same
/// logical workload — an 8-node md5-scan fan-out — on 1/2/4/8 host
/// shards. Wall-clock time must fall with the shard count while every
/// deterministic quantity (checksum, virtual clock, the whole
/// conformance bundle) stays bit-identical; the function asserts the
/// invariance and reports the measured speedups. Wall-clock numbers
/// are host-dependent; everything else in the table is not.
pub fn scaling(scale: Scale) -> Table {
    use det_workloads::sharded::{ShardedConfig, md5_scan};
    let size = match scale {
        Scale::Quick => 400_000,
        Scale::Full => 1_600_000,
    };
    let cfg = |shards| ShardedConfig {
        size,
        ..ShardedConfig::quick(8, shards)
    };
    let mut rows = Vec::new();
    let mut base: Option<(f64, Vec<u8>, u64)> = None;
    for shards in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let r = md5_scan(cfg(shards));
        let wall = t0.elapsed().as_secs_f64();
        let bundle = r.outcome.bundle_bytes();
        let (wall1, bundle1, vclock1) =
            base.get_or_insert_with(|| (wall, bundle.clone(), r.outcome.vclock_ns));
        assert_eq!(&bundle, bundle1, "bundle diverged at {shards} shards");
        assert_eq!(
            r.outcome.vclock_ns, *vclock1,
            "vclock moved at {shards} shards"
        );
        rows.push(vec![
            shards.to_string(),
            format!("{:.1}", wall * 1e3),
            format!("{:.2}", *wall1 / wall),
            format!("{:.3}", r.outcome.vclock_ns as f64 / 1e6),
            "identical".into(),
        ]);
    }
    Table {
        title: "Shard scaling — md5-scan fan-out, 8 logical nodes on 1/2/4/8 host shards \
                (DESIGN.md §10; PAPER.md §6.3). Wall-clock falls; the bundle does not move"
            .into(),
        headers: vec![
            "shards".into(),
            "wall ms".into(),
            "speedup".into(),
            "vclock ms".into(),
            "bundle".into(),
        ],
        rows,
    }
}

/// The static analyzer's cost table (`report -- analyze`): host time
/// of one [`det_analyze::analyze`] pass per corpus kernel, amortized
/// per kilo-instruction of the soundness gate's execution budget,
/// next to the predicted write footprint. Host nanoseconds are
/// indicative; `steps` is the deterministic work measure the kernel
/// charges via `CostModel::analyze_step_ps`.
pub fn analyze_cost(scale: Scale) -> Table {
    use std::time::Instant;
    let iters = match scale {
        Scale::Quick => 20u32,
        Scale::Full => 200,
    };
    let cfg = det_analyze::AnalyzeConfig::default();
    let mut rows = Vec::new();
    for p in det_vm::corpus::PROGRAMS {
        let image = det_vm::assemble(p.src).expect("corpus program assembles");
        let segs = [det_analyze::Segment {
            base: 0,
            bytes: &image.bytes,
        }];
        let mut analysis = det_analyze::analyze(&segs, 0, &cfg);
        let start = Instant::now();
        for _ in 0..iters {
            analysis = det_analyze::analyze(&segs, 0, &cfg);
        }
        let ns = (start.elapsed().as_nanos() / u128::from(iters)) as u64;
        rows.push(vec![
            p.name.to_string(),
            analysis.footprint.steps.to_string(),
            format!("{:.1}", ns as f64 / 1e3),
            format!("{:.1}", ns as f64 * 1e3 / p.budget as f64),
            format!("{}", analysis.footprint.writes),
        ]);
    }
    Table {
        title: "Static footprint analysis — cost per corpus kernel and predicted write set".into(),
        headers: vec![
            "kernel".into(),
            "abs steps".into(),
            "analysis µs".into(),
            "ns / exec kinsn".into(),
            "pred write pages".into(),
        ],
        rows,
    }
}

/// Footprint-hinted vs unhinted leaf-pull migration
/// (`report -- analyze`): the `vm_prefetch` sharded workload run both
/// ways. The hint must leave the checksum untouched while cutting
/// page pulls and bytes on the wire; virtual time differs only by the
/// root's charged analysis work.
pub fn analyze_prefetch(scale: Scale) -> Table {
    use det_workloads::sharded::{ShardedConfig, vm_prefetch};
    let size = match scale {
        Scale::Quick => 1_600,
        Scale::Full => 2_048,
    };
    let mut rows = Vec::new();
    for (label, hint) in [("unhinted", false), ("footprint hint", true)] {
        let r = vm_prefetch(
            ShardedConfig {
                size,
                ..ShardedConfig::quick(4, 3)
            },
            hint,
        );
        let c = &r.outcome.cluster;
        rows.push(vec![
            label.to_string(),
            c.page_pulls.to_string(),
            c.bytes_transferred.to_string(),
            c.messages.to_string(),
            format!("{:.3}", r.outcome.vclock_ns as f64 / 1e6),
            format!("{:#x}", r.checksum),
        ]);
    }
    Table {
        title: "Leaf-pull migration with and without the analyzer's prefetch hint".into(),
        headers: vec![
            "mode".into(),
            "page pulls".into(),
            "bytes on wire".into(),
            "messages".into(),
            "vclock ms".into(),
            "checksum".into(),
        ],
        rows,
    }
}

/// Table 3: implementation size of this repository, in semicolon
/// lines per component (the paper's metric).
pub fn table3(repo_root: &std::path::Path) -> Table {
    let count = |sub: &str| -> u64 {
        let mut total = 0u64;
        let dir = repo_root.join(sub);
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&d) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    if let Ok(text) = std::fs::read_to_string(&p) {
                        total += text.lines().filter(|l| l.contains(';')).count() as u64;
                    }
                }
            }
        }
        total
    };
    let components = [
        ("Paged memory (det-memory)", "crates/memory/src"),
        ("Deterministic VM (det-vm)", "crates/vm/src"),
        ("Kernel core (det-kernel)", "crates/kernel/src"),
        ("User-level runtime (det-runtime)", "crates/runtime/src"),
        ("Cluster simulation (det-cluster)", "crates/cluster/src"),
        ("Workloads (det-workloads)", "crates/workloads/src"),
        ("Bench harness (det-bench)", "crates/bench/src"),
    ];
    let mut rows = Vec::new();
    let mut total = 0;
    for (name, path) in components {
        let n = count(path);
        total += n;
        rows.push(vec![name.to_string(), n.to_string()]);
    }
    rows.push(vec!["**Total**".into(), total.to_string()]);
    Table {
        title: "Table 3 — implementation size (semicolon lines, the paper's metric)".into(),
        headers: vec!["component".into(), "semicolons".into()],
        rows,
    }
}
