//! The cluster control plane: job placement, lifecycle, and the
//! deterministic accounting seam.
//!
//! The controller decouples **logical nodes** from **physical
//! shards**. A workload addresses logical nodes (`0..nodes`), and
//! every deterministic quantity — virtual clocks, migration and
//! message counts, transfer bytes, digests — is a pure function of
//! the workload and that logical topology. Shards (`0..shards`, each
//! one OS host thread plus a compute permit) are merely where logical
//! nodes execute: node `n` runs on shard `n % shards`. Changing the
//! shard count changes wall-clock time and nothing else, which is the
//! invariant the shard-count conformance suite pins.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

use parking_lot::Mutex;

use det_kernel::{
    ConflictPolicy, CostModel, FaultPlan, IoMode, Kernel, KernelConfig, KernelError, KernelStats,
    MergeStats, NativeResult, Result, RunOutcome, SpaceCtx, TrapKind, VmDispatch, wire,
};
use det_memory::{AddressSpace, Region};

use crate::ClusterStats;
use crate::net::NetworkModel;
use crate::protocol::{self, HostMsg, JobDone, JobFn, JobMsg};
use crate::shard::{Permit, host_loop};

/// Configuration of a real-thread shard cluster run.
#[derive(Clone)]
pub struct ClusterSpec {
    /// Logical nodes the workload addresses. Fixed by the workload:
    /// determines every deterministic quantity.
    pub nodes: u16,
    /// Physical shards (OS host threads). Affects wall-clock time
    /// only.
    pub shards: usize,
    /// The simulated-latency link between nodes.
    pub net: NetworkModel,
    /// Virtual-time cost model for every kernel instance.
    pub costs: CostModel,
    /// Merge conflict policy for every kernel instance.
    pub policy: ConflictPolicy,
    /// VM dispatch mode for every kernel instance.
    pub vm_dispatch: VmDispatch,
    /// Nondeterministic-input mode for the *root* kernel (jobs have
    /// no I/O privileges, exactly like non-root spaces).
    pub io: IoMode,
    /// Fault-injection plan for the root kernel.
    pub faults: FaultPlan,
}

impl ClusterSpec {
    /// A cluster of `nodes` logical nodes on `shards` host threads,
    /// with gigabit-Ethernet link parameters and default kernel
    /// configuration.
    pub fn new(nodes: u16, shards: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            shards,
            net: NetworkModel::ethernet_1g(),
            costs: CostModel::default(),
            policy: ConflictPolicy::default(),
            vm_dispatch: VmDispatch::default(),
            io: IoMode::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Runs `root` as the cluster's root space (node 0, with I/O
    /// privileges) and drives the whole run to completion: spawns the
    /// shard hosts, executes every migrated job, waits for stragglers,
    /// and folds all per-kernel statistics into one deterministic
    /// [`ClusterOutcome`].
    pub fn run<F>(self, root: F) -> ClusterOutcome
    where
        F: FnOnce(&mut SpaceCtx, &Remote) -> NativeResult + Send + 'static,
    {
        assert!(self.nodes >= 1, "a cluster needs at least one node");
        assert!(self.shards >= 1, "a cluster needs at least one shard");
        let nodes = self.nodes;
        let shards = self.shards;
        let root_kcfg = KernelConfig::builder()
            .costs(self.costs)
            .policy(self.policy)
            .vm_dispatch(self.vm_dispatch)
            .io(self.io.clone())
            .faults(self.faults.clone())
            .build();

        let (env, hosts) = Env::start(self);
        // The root space computes under its home shard's permit like
        // any other resident of node 0.
        env.permits[env.shard_of(0)].acquire();
        let env2 = Arc::clone(&env);
        let outcome = Kernel::new(root_kcfg).run(move |ctx| {
            let remote = Remote::new(env2, 0, String::new());
            root(ctx, &remote)
        });
        env.permits[env.shard_of(0)].release();

        // Leaked (never-joined) jobs still run to completion and their
        // stats still aggregate; hosts shut down only when the last
        // one has drained, so in-flight leaf pulls are always served.
        while env.outstanding.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        for s in 0..shards {
            env.send(s, HostMsg::Shutdown);
        }
        for h in hosts {
            let _ = h.join();
        }

        let agg = std::mem::take(&mut *env.agg.lock());
        let cluster = *env.cluster.lock();
        let mut stats = outcome.stats.clone();
        add_kernel_stats(&mut stats, &agg.stats);
        let mut host = outcome.host;
        host.spurious_wakeups += agg.spurious;
        ClusterOutcome {
            exit: outcome.exit,
            vclock_ns: outcome.vclock_ns,
            stats,
            host,
            cluster,
            jobs: agg.jobs.into_values().collect(),
            nodes,
            shards,
            root: outcome,
        }
    }
}

/// Shared cluster state: links to every shard host, compute permits,
/// frozen home images, and the deterministic aggregate accumulators.
pub(crate) struct Env {
    pub(crate) spec: ClusterSpec,
    links: Vec<Mutex<mpsc::Sender<HostMsg>>>,
    pub(crate) permits: Vec<Arc<Permit>>,
    /// Per-shard frozen images of in-flight migrations, keyed by job
    /// id — the "home node keeps the pages" half of demand paging.
    stores: Vec<Mutex<BTreeMap<u64, AddressSpace>>>,
    next_job: AtomicU64,
    pub(crate) outstanding: AtomicU64,
    pub(crate) cluster: Mutex<ClusterStats>,
    pub(crate) agg: Mutex<Agg>,
}

impl Env {
    fn start(spec: ClusterSpec) -> (Arc<Env>, Vec<std::thread::JoinHandle<()>>) {
        let shards = spec.shards;
        let mut links = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            links.push(Mutex::new(tx));
            rxs.push(rx);
        }
        let env = Arc::new(Env {
            spec,
            links,
            permits: (0..shards).map(|_| Arc::new(Permit::new(1))).collect(),
            stores: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            next_job: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            cluster: Mutex::new(ClusterStats::default()),
            agg: Mutex::new(Agg::default()),
        });
        let hosts = rxs
            .into_iter()
            .enumerate()
            .map(|(s, rx)| {
                let env2 = Arc::clone(&env);
                std::thread::Builder::new()
                    .name(format!("shard{s}-host"))
                    .spawn(move || host_loop(env2, s, rx))
                    .expect("spawn shard host")
            })
            .collect();
        (env, hosts)
    }

    /// The placement map: logical node → physical shard.
    pub(crate) fn shard_of(&self, node: u16) -> usize {
        node as usize % self.spec.shards
    }

    pub(crate) fn send(&self, shard: usize, msg: HostMsg) {
        self.links[shard]
            .lock()
            .send(msg)
            .expect("shard host outlives every sender");
    }

    /// One leaf of a frozen home image, for a pull response.
    pub(crate) fn frozen_leaf(
        &self,
        shard: usize,
        job: u64,
        first_vpn: u64,
    ) -> det_memory::SpaceDelta {
        self.stores[shard]
            .lock()
            .get(&job)
            .expect("frozen image registered before any pull")
            .leaf_image(first_vpn)
    }

    /// Runs `f` against a frozen home image (same-node materialization
    /// path — no link crossing).
    pub(crate) fn with_frozen<T>(
        &self,
        shard: usize,
        job: u64,
        f: impl FnOnce(&AddressSpace) -> T,
    ) -> T {
        f(self.stores[shard]
            .lock()
            .get(&job)
            .expect("frozen image registered before the job runs"))
    }

    /// Kernel configuration for migrated job kernels: identical
    /// deterministic knobs to the root, no I/O or fault injection
    /// (jobs are unprivileged).
    pub(crate) fn job_kernel_config(&self) -> KernelConfig {
        KernelConfig::builder()
            .costs(self.spec.costs)
            .policy(self.spec.policy)
            .vm_dispatch(self.spec.vm_dispatch)
            .build()
    }

    pub(crate) fn job_done(&self) {
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Deterministic aggregates across every job kernel: summed
/// [`KernelStats`] (order-independent), quarantined host counters,
/// and per-job artifacts keyed by deterministic lineage path.
#[derive(Default)]
pub(crate) struct Agg {
    pub(crate) stats: KernelStats,
    pub(crate) spurious: u64,
    pub(crate) jobs: BTreeMap<String, JobArtifact>,
}

impl Agg {
    pub(crate) fn add_stats(&mut self, s: &KernelStats) {
        add_kernel_stats(&mut self.stats, s);
    }
}

/// Field-by-field sum (the exhaustive destructuring makes adding a
/// `KernelStats` field without deciding its aggregation a compile
/// error).
fn add_kernel_stats(a: &mut KernelStats, b: &KernelStats) {
    let KernelStats {
        puts,
        gets,
        put_gets,
        rets,
        traps,
        limit_preemptions,
        spaces_created,
        threads_spawned,
        pages_copied,
        pages_snapped,
        leaves_cloned,
        merges,
        merge_totals,
        conflicts,
        migrations,
        device_reads,
        device_write_bytes,
        vm_instructions,
        vm_tlb_hits,
        vm_pages_walked,
        vm_icache_hits,
        vm_icache_fills,
        condvar_wakeups,
        vm_inline_runs,
        checkpoints,
        checkpoint_leaves,
    } = b;
    a.puts += puts;
    a.gets += gets;
    a.put_gets += put_gets;
    a.rets += rets;
    a.traps += traps;
    a.limit_preemptions += limit_preemptions;
    a.spaces_created += spaces_created;
    a.threads_spawned += threads_spawned;
    a.pages_copied += pages_copied;
    a.pages_snapped += pages_snapped;
    a.leaves_cloned += leaves_cloned;
    a.merges += merges;
    a.merge_totals.0.accumulate(&merge_totals.0);
    a.conflicts += conflicts;
    a.migrations += migrations;
    a.device_reads += device_reads;
    a.device_write_bytes += device_write_bytes;
    a.vm_instructions += vm_instructions;
    a.vm_tlb_hits += vm_tlb_hits;
    a.vm_pages_walked += vm_pages_walked;
    a.vm_icache_hits += vm_icache_hits;
    a.vm_icache_fills += vm_icache_fills;
    a.condvar_wakeups += condvar_wakeups;
    a.vm_inline_runs += vm_inline_runs;
    a.checkpoints += checkpoints;
    a.checkpoint_leaves += checkpoint_leaves;
}

/// What a space migrated onto a shard can do with the rest of the
/// cluster: fork jobs onto logical nodes and join them back. One
/// `Remote` exists per migrated space (and one for the root); its
/// lineage path makes every job's identity deterministic.
pub struct Remote {
    env: Arc<Env>,
    node: u16,
    path: String,
    forks: AtomicU64,
    pending: Mutex<BTreeMap<u64, Pending>>,
}

struct Pending {
    rx: mpsc::Receiver<JobDone>,
    /// Local reconstruction of the job's materialized base image —
    /// the merge snapshot.
    base: AddressSpace,
    region: Region,
    node: u16,
    job_id: u64,
    home_shard: usize,
}

/// A migrated job to fork onto another logical node.
pub struct JobSpec {
    region: Region,
    touch: Option<Vec<Region>>,
    program: JobFn,
}

impl JobSpec {
    /// A native job over `region`: the child materializes a snapshot
    /// of the caller's `region` (leaf-pulled on demand) and runs `f`
    /// in its own kernel on the target node's shard.
    pub fn native<F>(region: Region, f: F) -> JobSpec
    where
        F: FnOnce(&mut SpaceCtx, &Remote) -> NativeResult + Send + 'static,
    {
        JobSpec {
            region,
            touch: None,
            program: Box::new(f),
        }
    }

    /// Declares the job's access set: only summarized leaves
    /// intersecting `regions` are pulled (the demand-paging contract —
    /// native closures are opaque, so the declared set plays the role
    /// hardware page faults play in the paper). Unset = pull every
    /// touched leaf.
    pub fn touch(mut self, regions: Vec<Region>) -> JobSpec {
        self.touch = Some(regions);
        self
    }

    /// Declares the job's access set from a static analysis result
    /// (DESIGN.md §11): a bounded footprint becomes a prefetch hint —
    /// exactly the pages the analyzer proved sufficient — while an
    /// unbounded one leaves the spec unhinted (pull everything the
    /// region summarizes). Soundness of the analysis is what makes
    /// this safe: the hint can never exclude a page the job touches.
    pub fn touch_footprint(self, fp: &det_kernel::Footprint) -> JobSpec {
        match fp.touch_regions() {
            Some(regions) => self.touch(regions),
            None => self,
        }
    }
}

/// Result of joining a migrated job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job program's exit status or trap.
    pub exit: std::result::Result<i32, TrapKind>,
    /// Final whole-image content digest of the job's memory.
    pub digest: u64,
    /// The job's effective virtual clock at the join (picoseconds),
    /// including migration and return-trip network time.
    pub vclock_ps: u64,
    /// Statistics of the homecoming merge.
    pub merge: MergeStats,
}

impl Remote {
    pub(crate) fn new(env: Arc<Env>, node: u16, path: String) -> Remote {
        Remote {
            env,
            node,
            path,
            forks: AtomicU64::new(0),
            pending: Mutex::new(BTreeMap::new()),
        }
    }

    /// The logical node this space runs on.
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Logical nodes in the cluster.
    pub fn nodes(&self) -> u16 {
        self.env.spec.nodes
    }

    /// Forks a job onto logical `node` (the paper's remote space
    /// creation, §3.3): freezes a structural snapshot of `spec.region`
    /// as the child's initial image, sends the leaf-directory summary
    /// over the link, and lets the target shard pull exactly the
    /// leaves it needs. Charges the caller the clone work plus — for a
    /// cross-node fork — the migration summary message.
    pub fn fork(&self, ctx: &mut SpaceCtx, tag: u64, node: u16, spec: JobSpec) -> Result<()> {
        let env = &self.env;
        if node >= env.spec.nodes {
            return Err(KernelError::NodeUnreachable(node));
        }
        if self.pending.lock().contains_key(&tag) {
            return Err(KernelError::ChildActive);
        }
        let costs = env.spec.costs;

        // Freeze the child's initial image: O(touched leaves).
        let mut img = AddressSpace::new();
        let cs = img.copy_from_counted(ctx.mem(), spec.region, spec.region.start)?;
        ctx.charge_ps(
            costs
                .syscall_ps
                .saturating_add(costs.spawn_ps)
                .saturating_add(costs.space_clone_ps.saturating_mul(cs.leaves_shared))
                .saturating_add(costs.page_map_ps.saturating_mul(cs.boundary_pages)),
        )?;

        let summary = img.leaf_summary();
        let total_pages: u64 = summary.iter().map(|l| l.pages as u64).sum();
        let remote_xfer = node != self.node;
        if remote_xfer {
            let sb = protocol::summary_bytes(total_pages);
            {
                let mut cl = env.cluster.lock();
                cl.migrations += 1;
                cl.messages += 1;
                cl.bytes_transferred += sb;
            }
            ctx.note_migration(env.spec.net.message_ps(sb))?;
        }

        let job_id = env.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        let home_shard = env.shard_of(self.node);
        // Reconstruct the job's materialized base locally — the same
        // deterministic function the job shard applies, so snapshot
        // and remote image are bit-identical.
        let base = protocol::materialize(&img, &summary, &spec.touch);
        env.stores[home_shard].lock().insert(job_id, img);

        let ordinal = self.forks.fetch_add(1, Ordering::Relaxed);
        let path = format!("{}/{}:{}@{}", self.path, ordinal, tag, node);
        let (reply, rx) = mpsc::channel();
        env.outstanding.fetch_add(1, Ordering::SeqCst);
        env.send(
            env.shard_of(node),
            HostMsg::Submit(Box::new(JobMsg {
                job_id,
                path,
                node,
                home_shard,
                home_node: self.node,
                program: spec.program,
                region: spec.region,
                touch: spec.touch,
                summary,
                start_vclock_ps: ctx.vclock_ps(),
                reply,
            })),
        );
        self.pending.lock().insert(
            tag,
            Pending {
                rx,
                base,
                region: spec.region,
                node,
                job_id,
                home_shard,
            },
        );
        Ok(())
    }

    /// Joins a forked job: blocks until it comes home (releasing this
    /// shard's compute permit while blocked — the child may need it),
    /// syncs the caller's clock by the rendezvous max rule, and
    /// three-way-merges the job's dirty delta into the caller's
    /// `region` exactly like a local `Get`+merge.
    pub fn join(&self, ctx: &mut SpaceCtx, tag: u64) -> Result<JobOutcome> {
        let p = self
            .pending
            .lock()
            .remove(&tag)
            .ok_or(KernelError::InvalidSpec(
                "join of a tag with no pending remote job",
            ))?;
        let env = &self.env;
        let permit = &env.permits[env.shard_of(self.node)];
        permit.release();
        let done = p.rx.recv();
        permit.acquire();
        let done = done.map_err(|_| KernelError::Killed)?;
        env.stores[p.home_shard].lock().remove(&p.job_id);

        let costs = env.spec.costs;
        ctx.charge_ps(costs.syscall_ps.saturating_add(costs.rendezvous_ps))?;
        let delta = if done.delta_json.is_empty() {
            det_memory::SpaceDelta::default()
        } else {
            wire::delta_from_json(&done.delta_json)
                .map_err(|_| KernelError::InvalidSpec("corrupt job delta on the wire"))?
        };

        let remote_xfer = p.node != self.node;
        let mut child_eff = done.vclock_ps;
        if remote_xfer {
            // The homecoming: a get-request and the dirty-delta
            // response, after which the migrated space is gone — its
            // results live on via the merge.
            let resp_bytes = protocol::HEADER_BYTES + done.delta_json.len() as u64;
            {
                let mut cl = env.cluster.lock();
                cl.migrations += 1;
                cl.messages += 2;
                cl.bytes_transferred += protocol::HEADER_BYTES + resp_bytes;
                cl.page_pulls += delta.pages.len() as u64;
            }
            child_eff = child_eff
                .saturating_add(env.spec.net.message_ps(protocol::HEADER_BYTES))
                .saturating_add(env.spec.net.message_ps(resp_bytes));
            ctx.note_migration(0)?;
        }
        ctx.sync_vclock_ps(child_eff)?;

        let mut child_final = p.base.clone();
        child_final.apply_delta(&delta)?;
        let merge = ctx.merge_remote(&child_final, &p.base, p.region)?;
        Ok(JobOutcome {
            exit: done.exit,
            digest: done.digest,
            vclock_ps: child_eff,
            merge,
        })
    }
}

/// Per-job deterministic artifact: identity, placement, final clock
/// and digest.
#[derive(Clone, Debug, PartialEq)]
pub struct JobArtifact {
    /// Deterministic lineage path
    /// (`<parent>/<fork-ordinal>:<tag>@<node>`).
    pub path: String,
    /// Logical node the job ran on.
    pub node: u16,
    /// Final virtual clock (picoseconds).
    pub vclock_ps: u64,
    /// Final whole-image content digest.
    pub digest: u64,
    /// Exit status or trap.
    pub exit: std::result::Result<i32, TrapKind>,
}

/// Outcome of a [`ClusterSpec::run`]: the root kernel's outcome plus
/// deterministic aggregates over every migrated job kernel.
pub struct ClusterOutcome {
    /// Root program's exit status or trap.
    pub exit: std::result::Result<i32, TrapKind>,
    /// Root space's final virtual clock (nanoseconds) — the cluster
    /// makespan, including every synced job clock and network charge.
    pub vclock_ns: u64,
    /// Summed deterministic kernel counters: root kernel plus every
    /// job kernel.
    pub stats: KernelStats,
    /// Summed host-scheduling-dependent counters (quarantined, may
    /// differ between identical runs).
    pub host: det_kernel::HostStats,
    /// Cluster traffic counters (migrations, leaf pulls as page
    /// equivalents, messages, bytes, cache hits).
    pub cluster: ClusterStats,
    /// Per-job artifacts, ascending by deterministic lineage path.
    pub jobs: Vec<JobArtifact>,
    /// Logical node count.
    pub nodes: u16,
    /// Physical shard count (observability only — absent from the
    /// conformance bundle by construction).
    pub shards: usize,
    /// The root kernel's full outcome (outputs, io log, …).
    pub root: RunOutcome,
}

impl ClusterOutcome {
    /// The canonical conformance bundle: every deterministic section
    /// of the outcome, serialized to stable bytes. Two runs of the
    /// same workload must produce bit-identical bundles regardless of
    /// shard count, host load, or dispatch vehicle placement; the
    /// shard count and the quarantined host counters are deliberately
    /// excluded.
    pub fn bundle_bytes(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("[meta]\nformat=det-cluster-bundle-v1\n");
        writeln!(out, "nodes={}", self.nodes).unwrap();
        writeln!(out, "[exit]\n{:?}", self.exit).unwrap();
        writeln!(out, "[vclock]\nns={}", self.vclock_ns).unwrap();
        out.push_str("[stats-core]\n");
        stat_lines(&self.stats, false, &mut out);
        out.push_str("[stats-vehicle]\n");
        stat_lines(&self.stats, true, &mut out);
        out.push_str("[outputs]\n");
        for (dev, bytes) in &self.root.outputs {
            writeln!(out, "{dev:?}={}", hex(bytes)).unwrap();
        }
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.cluster_sections());
        bytes
    }

    /// The `[cluster]` and `[jobs]` sections of the bundle on their
    /// own: the traffic counters and the per-job artifact table.
    /// These are invariant across shard count, host load, *and*
    /// dispatch vehicle (no vehicle-observability counters), which is
    /// what lets a conformance scenario fold them verbatim into its
    /// replica-compared console stream.
    pub fn cluster_sections(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("[cluster]\n");
        let ClusterStats {
            migrations,
            page_pulls,
            bytes_transferred,
            messages,
            cache_hits,
        } = self.cluster;
        writeln!(out, "migrations={migrations}").unwrap();
        writeln!(out, "page_pulls={page_pulls}").unwrap();
        writeln!(out, "bytes_transferred={bytes_transferred}").unwrap();
        writeln!(out, "messages={messages}").unwrap();
        writeln!(out, "cache_hits={cache_hits}").unwrap();
        out.push_str("[jobs]\n");
        for j in &self.jobs {
            writeln!(
                out,
                "{} node={} vclock_ps={} digest={:016x} exit={:?}",
                j.path, j.node, j.vclock_ps, j.digest, j.exit
            )
            .unwrap();
        }
        out.into_bytes()
    }
}

/// Writes `k=v` stat lines; `vehicle` selects the vehicle-
/// observability fields (same quarantine set as the conformance
/// harness) vs everything else.
fn stat_lines(s: &KernelStats, vehicle: bool, out: &mut String) {
    use std::fmt::Write;
    let KernelStats {
        puts,
        gets,
        put_gets,
        rets,
        traps,
        limit_preemptions,
        spaces_created,
        threads_spawned,
        pages_copied,
        pages_snapped,
        leaves_cloned,
        merges,
        merge_totals,
        conflicts,
        migrations,
        device_reads,
        device_write_bytes,
        vm_instructions,
        vm_tlb_hits,
        vm_pages_walked,
        vm_icache_hits,
        vm_icache_fills,
        condvar_wakeups,
        vm_inline_runs,
        checkpoints,
        checkpoint_leaves,
    } = s;
    if vehicle {
        writeln!(out, "threads_spawned={threads_spawned}").unwrap();
        writeln!(out, "condvar_wakeups={condvar_wakeups}").unwrap();
        writeln!(out, "vm_inline_runs={vm_inline_runs}").unwrap();
        return;
    }
    writeln!(out, "puts={puts}").unwrap();
    writeln!(out, "gets={gets}").unwrap();
    writeln!(out, "put_gets={put_gets}").unwrap();
    writeln!(out, "rets={rets}").unwrap();
    writeln!(out, "traps={traps}").unwrap();
    writeln!(out, "limit_preemptions={limit_preemptions}").unwrap();
    writeln!(out, "spaces_created={spaces_created}").unwrap();
    writeln!(out, "pages_copied={pages_copied}").unwrap();
    writeln!(out, "pages_snapped={pages_snapped}").unwrap();
    writeln!(out, "leaves_cloned={leaves_cloned}").unwrap();
    writeln!(out, "merges={merges}").unwrap();
    writeln!(out, "merge_totals={:?}", merge_totals.0).unwrap();
    writeln!(out, "conflicts={conflicts}").unwrap();
    writeln!(out, "migrations={migrations}").unwrap();
    writeln!(out, "device_reads={device_reads}").unwrap();
    writeln!(out, "device_write_bytes={device_write_bytes}").unwrap();
    writeln!(out, "vm_instructions={vm_instructions}").unwrap();
    writeln!(out, "vm_tlb_hits={vm_tlb_hits}").unwrap();
    writeln!(out, "vm_pages_walked={vm_pages_walked}").unwrap();
    writeln!(out, "vm_icache_hits={vm_icache_hits}").unwrap();
    writeln!(out, "vm_icache_fills={vm_icache_fills}").unwrap();
    writeln!(out, "checkpoints={checkpoints}").unwrap();
    writeln!(out, "checkpoint_leaves={checkpoint_leaves}").unwrap();
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}
