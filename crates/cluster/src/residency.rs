//! Per-(space, node) page residency: which pages hold a valid copy
//! where, the invalidation rule, and demand-pull charging.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use det_kernel::SpaceId;

use crate::net::NetworkModel;

/// Per-space residency detail (exposed for diagnostics).
#[derive(Clone, Debug, Default)]
pub struct ResidencyStats {
    /// Pages resident per node.
    pub per_node: Vec<(u16, usize)>,
}

#[derive(Default)]
pub(crate) struct Residency {
    /// (space, node) → set of resident vpns. Ordered so that any
    /// iteration-dependent behavior (invalidation sweeps, future
    /// migration-ordering decisions) is deterministic.
    map: BTreeMap<(u32, u16), BTreeSet<u64>>,
    pub(crate) stats: crate::ClusterStats,
}

impl Residency {
    /// Marks `vpns` resident for `space` on `node` (local creation).
    pub(crate) fn seed(&mut self, space: SpaceId, node: u16, vpns: &[u64]) {
        let set = self.map.entry((space.index(), node)).or_default();
        set.extend(vpns.iter().copied());
    }

    /// Returns true if the page has a valid copy on any node.
    fn resident_somewhere(&self, space: u32, vpn: u64) -> bool {
        self.map
            .iter()
            .any(|((s, _), set)| *s == space && set.contains(&vpn))
    }

    /// Settles one execution leg of `space` on `node`: pages touched
    /// but not resident there are demand pulls (if a copy exists
    /// elsewhere — otherwise they are fresh local zero-fill pages);
    /// written pages invalidate every other node's copy.
    pub(crate) fn harvest(
        &mut self,
        space: SpaceId,
        node: u16,
        read: &[u64],
        written: &[u64],
        net: &NetworkModel,
    ) -> u64 {
        let sid = space.index();
        let mut ps = 0u64;
        for &vpn in read.iter().chain(written) {
            let here = self.map.entry((sid, node)).or_default().contains(&vpn);
            if here {
                self.stats.cache_hits += 1;
                continue;
            }
            if self.resident_somewhere(sid, vpn) {
                ps += net.page_pull_ps();
                self.stats.page_pulls += 1;
                self.stats.messages += 2;
                self.stats.bytes_transferred += 4096 + 64;
            }
            // Fresh local page or just-pulled copy: now resident here.
            self.map.entry((sid, node)).or_default().insert(vpn);
        }
        // Writes invalidate remote copies.
        for (&(s, n), set) in self.map.iter_mut() {
            if s == sid && n != node {
                for vpn in written {
                    set.remove(vpn);
                }
            }
        }
        ps
    }

    /// Pulls any of `vpns` not already resident on `node` (used when a
    /// remote parent merges a child's dirty pages).
    pub(crate) fn pull_absent(
        &mut self,
        space: SpaceId,
        node: u16,
        vpns: &[u64],
        net: &NetworkModel,
    ) -> u64 {
        let sid = space.index();
        let mut ps = 0;
        for &vpn in vpns {
            let set = self.map.entry((sid, node)).or_default();
            if set.insert(vpn) {
                ps += net.page_pull_ps();
                self.stats.page_pulls += 1;
                self.stats.messages += 2;
                self.stats.bytes_transferred += 4096 + 64;
            } else {
                self.stats.cache_hits += 1;
            }
        }
        ps
    }

    /// Copy-on-write inheritance: `dst`'s window shares `src`'s
    /// frames, so each destination page is resident exactly where the
    /// corresponding source page was.
    pub(crate) fn inherit(
        &mut self,
        src: SpaceId,
        dst: SpaceId,
        src_start: u64,
        dst_start: u64,
        pages: u64,
    ) {
        let sid = src.index();
        let did = dst.index();
        let nodes: Vec<u16> = self
            .map
            .keys()
            .filter(|(s, _)| *s == sid)
            .map(|&(_, n)| n)
            .collect();
        for n in nodes {
            let src_set = self.map.get(&(sid, n)).cloned().unwrap_or_default();
            let dst_set = self.map.entry((did, n)).or_default();
            // Replace the destination window with the inherited view.
            for k in 0..pages {
                dst_set.remove(&(dst_start + k));
            }
            for k in 0..pages {
                if src_set.contains(&(src_start + k)) {
                    dst_set.insert(dst_start + k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::ethernet_1g()
    }

    #[test]
    fn fresh_pages_are_free_pulled_pages_cost() {
        let mut r = Residency::default();
        let s = SpaceId::ROOT;
        // First leg on node 0: pages created locally — no pulls.
        let ps = r.harvest(s, 0, &[], &[1, 2, 3], &net());
        assert_eq!(ps, 0);
        assert_eq!(r.stats.page_pulls, 0);
        // Same pages touched on node 1: three pulls.
        let ps = r.harvest(s, 1, &[1, 2, 3], &[], &net());
        assert_eq!(r.stats.page_pulls, 3);
        assert_eq!(ps, 3 * net().page_pull_ps());
        // Re-touch on node 1: cached.
        r.harvest(s, 1, &[1, 2, 3], &[], &net());
        assert_eq!(r.stats.page_pulls, 3);
        assert!(r.stats.cache_hits >= 3);
    }

    #[test]
    fn writes_invalidate_other_nodes() {
        let mut r = Residency::default();
        let s = SpaceId::ROOT;
        r.harvest(s, 0, &[], &[5], &net());
        r.harvest(s, 1, &[5], &[], &net()); // Pull to node 1.
        assert_eq!(r.stats.page_pulls, 1);
        // Write on node 0 invalidates node 1's copy.
        r.harvest(s, 0, &[], &[5], &net());
        r.harvest(s, 1, &[5], &[], &net()); // Must re-pull.
        assert_eq!(r.stats.page_pulls, 2);
    }

    #[test]
    fn inherit_maps_windows() {
        let mut r = Residency::default();
        let a = SpaceId::ROOT;
        let b = SpaceId::ROOT; // Same type; fabricate ids via index.
        // seed src pages 10..14 on node 2.
        r.seed(a, 2, &[10, 11, 12, 13]);
        r.inherit(a, b, 10, 100, 4);
        // b's window 100.. resident on node 2.
        assert!(r.map[&(b.index(), 2)].contains(&100));
        assert!(r.map[&(b.index(), 2)].contains(&103));
    }
}
