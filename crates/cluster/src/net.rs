//! The network cost model.

/// Link parameters for the simulated interconnect.
///
/// The paper's protocol "runs directly atop Ethernet" with two
/// request/response message types and no TCP; the `tcp_like` flag adds
/// the round-trip timing and retransmission overhead the authors
/// measured at under 2 % (§6.3) for the ablation in Figure 12.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way message latency in picoseconds.
    pub latency_ps: u64,
    /// Transfer cost per byte in picoseconds (inverse bandwidth).
    pub per_byte_ps: u64,
    /// Add TCP-like acking/windowing overhead.
    pub tcp_like: bool,
}

impl NetworkModel {
    /// Gigabit Ethernet with commodity-switch latency (~80 µs one-way
    /// through the 2009-era software stack, 1 Gbit/s ≈ 8 ns/byte).
    pub fn ethernet_1g() -> NetworkModel {
        NetworkModel {
            latency_ps: 80_000_000,
            per_byte_ps: 8_000,
            tcp_like: false,
        }
    }

    /// The same link with TCP-like round-trip behaviour.
    pub fn ethernet_1g_tcp() -> NetworkModel {
        NetworkModel {
            tcp_like: true,
            ..NetworkModel::ethernet_1g()
        }
    }

    /// Cost of one one-way message of `bytes` payload.
    pub fn message_ps(&self, bytes: u64) -> u64 {
        let base = self.latency_ps + self.per_byte_ps.saturating_mul(bytes);
        if self.tcp_like {
            // Delayed-ack / windowing overhead: ~1.5 % extra time.
            base + base / 64
        } else {
            base
        }
    }

    /// Cost of a demand page pull: request + 4 KiB response.
    pub fn page_pull_ps(&self) -> u64 {
        self.message_ps(64) + self.message_ps(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_pull_dominated_by_latency_then_bytes() {
        let net = NetworkModel::ethernet_1g();
        let pull = net.page_pull_ps();
        assert!(pull > 2 * net.latency_ps);
        assert!(pull < 3 * net.latency_ps);
    }

    #[test]
    fn tcp_overhead_is_small() {
        let plain = NetworkModel::ethernet_1g().page_pull_ps() as f64;
        let tcp = NetworkModel::ethernet_1g_tcp().page_pull_ps() as f64;
        let overhead = tcp / plain - 1.0;
        assert!(overhead > 0.0 && overhead < 0.02, "overhead {overhead}");
    }
}
