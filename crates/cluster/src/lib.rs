//! Cross-node distribution via space migration (§3.3), on a simulated
//! homogeneous cluster.
//!
//! The paper runs Determinator on up to 32 machines connected by
//! Ethernet; we have one machine, so the cluster is simulated (see
//! DESIGN.md): nodes are bookkeeping, and the network is a cost model.
//! What is *not* simulated is the protocol behaviour — the operation
//! counts driving Figures 11–12 are reproduced move-for-move:
//!
//! * migrating a space transfers only its register state and an
//!   address-space summary (one message);
//! * memory pages are pulled **on demand**, one request/response round
//!   trip per page, with no prefetching, streaming, or delta
//!   compression (the paper's "simplistic page copying protocol");
//! * pages a space only reads stay cached on each node it visits;
//!   writing a page invalidates the stale copies on other nodes;
//! * virtually copied pages (fork's `Put`+Copy) share frames, so the
//!   child's pages are resident wherever the parent's were — the
//!   child's first access on its own node pays the pull, which is
//!   exactly why distributed matmult levels off (Fig. 11).
//!
//! [`SimCluster`] implements [`det_kernel::ClusterHooks`]; plug it in
//! with [`det_kernel::Kernel::with_cluster`], then address children on
//! other nodes with [`det_kernel::child_on_node`].
//!
//! # Real-thread shards
//!
//! [`ClusterSpec`] promotes the simulation to N kernel *shards* on
//! real OS threads: every logical node is homed on shard
//! `node % shards`, each migrated job runs in its own `det-kernel`
//! instance on its node's shard, and a migrated space materializes
//! O(touched) by pulling *leaves* of the structurally shared page
//! table over the (still simulated-latency) link. All deterministic
//! quantities — virtual clocks, digests, kernel stats, traffic
//! counters — are functions of the workload and the logical node
//! count only, so they are bit-identical on 1 shard or 16 (see
//! DESIGN.md §10 and `tests/determinism.rs`).

mod controller;
mod net;
mod protocol;
mod residency;
mod shard;

pub use controller::{ClusterOutcome, ClusterSpec, JobArtifact, JobOutcome, JobSpec, Remote};
pub use net::NetworkModel;
pub use protocol::JobFn;
pub use residency::ResidencyStats;

use std::sync::Arc;

use parking_lot::Mutex;

use det_kernel::{ClusterHooks, SpaceId};
use det_memory::{AccessTracker, AddressSpace};

use residency::Residency;

/// Aggregate statistics of simulated cluster traffic.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ClusterStats {
    /// Space migrations (summary messages).
    pub migrations: u64,
    /// Demand page pulls (request/response round trips).
    pub page_pulls: u64,
    /// Bytes moved across the network.
    pub bytes_transferred: u64,
    /// Messages sent (2 per pull, 1 per migration summary).
    pub messages: u64,
    /// Page pulls avoided by the per-node read-only cache.
    pub cache_hits: u64,
}

/// A simulated homogeneous cluster: node bookkeeping, per-(space,
/// node) page residency, and a network cost model.
pub struct SimCluster {
    nodes: u16,
    net: NetworkModel,
    inner: Mutex<Residency>,
}

impl SimCluster {
    /// Creates a cluster of `nodes` nodes with the given network.
    pub fn new(nodes: u16, net: NetworkModel) -> Arc<SimCluster> {
        Arc::new(SimCluster {
            nodes,
            net,
            inner: Mutex::new(Residency::default()),
        })
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> ClusterStats {
        self.inner.lock().stats
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Harvests a space's tracker: charges demand pulls for pages
    /// touched on `node` that were not resident there, applies write
    /// invalidations, and returns picoseconds of network time.
    fn harvest(&self, space: SpaceId, node: u16, mem: &mut AddressSpace) -> u64 {
        let mut inner = self.inner.lock();
        let Some(tracker) = mem.tracker().cloned() else {
            // First sighting: install a tracker and seed residency
            // with the currently mapped pages (created locally).
            let t = AccessTracker::new();
            mem.set_tracker(Some(t));
            let vpns: Vec<u64> = mem.iter_pages().map(|p| p.vpn).collect();
            inner.seed(space, node, &vpns);
            return 0;
        };
        let read = tracker.pages_read();
        let written = tracker.pages_written();
        tracker.reset();
        inner.harvest(space, node, &read, &written, &self.net)
    }
}

impl ClusterHooks for SimCluster {
    fn node_count(&self) -> u16 {
        self.nodes
    }

    fn on_migrate(&self, space: SpaceId, from: u16, to: u16, mem: &mut AddressSpace) -> u64 {
        // Settle the leg that just ended, then pay the summary message.
        let mut ps = self.harvest(space, from, mem);
        let mut inner = self.inner.lock();
        inner.stats.migrations += 1;
        inner.stats.messages += 1;
        let summary_bytes = 64 + 16 * mem.page_count() as u64;
        inner.stats.bytes_transferred += summary_bytes;
        ps += self.net.message_ps(summary_bytes);
        let _ = to;
        ps
    }

    fn on_rendezvous(
        &self,
        child: SpaceId,
        child_node: u16,
        parent_node: u16,
        child_mem: &mut AddressSpace,
    ) -> u64 {
        let mut ps = self.harvest(child, child_node, child_mem);
        // The caller is about to read/merge the child's freshly
        // written pages; if the caller is on another node, those
        // pages cross the wire (this is the merge-traffic term).
        if child_node != parent_node {
            let written: Vec<u64> = child_mem
                .tracker()
                .map(|t| t.pages_written())
                .unwrap_or_default();
            let mut inner = self.inner.lock();
            ps += inner.pull_absent(child, parent_node, &written, &self.net);
        }
        ps
    }

    fn on_copy(
        &self,
        src: SpaceId,
        dst: SpaceId,
        src_start_vpn: u64,
        dst_start_vpn: u64,
        pages: u64,
    ) {
        self.inner
            .lock()
            .inherit(src, dst, src_start_vpn, dst_start_vpn, pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use det_kernel::{
        CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region, child_on_node,
    };
    use det_memory::Perm;

    const SHARED: Region = Region {
        start: 0x10000,
        end: 0x20000,
    };

    fn cluster_kernel(nodes: u16) -> (Kernel, Arc<SimCluster>) {
        let sim = SimCluster::new(nodes, NetworkModel::ethernet_1g());
        let k = Kernel::with_cluster(KernelConfig::default(), sim.clone());
        (k, sim)
    }

    #[test]
    fn remote_child_roundtrip() {
        let (k, sim) = cluster_kernel(4);
        let out = k.run(|ctx| {
            ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
            ctx.mem_mut().write_u64(SHARED.start, 7)?;
            // Fork a worker on node 2: the caller migrates there.
            let c = child_on_node(2, 1);
            ctx.put(
                c,
                PutSpec::new()
                    .program(Program::native(|cc| {
                        let v = cc.mem().read_u64(0x10000)?;
                        cc.mem_mut().write_u64(0x10008, v * 6)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(SHARED))
                    .snap()
                    .start(),
            )?;
            assert_eq!(ctx.cur_node(), 2);
            ctx.get(c, GetSpec::new().merge(SHARED))?;
            assert_eq!(ctx.mem().read_u64(SHARED.start + 8)?, 42);
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0));
        let stats = sim.stats();
        assert!(stats.migrations >= 1, "{stats:?}");
        assert!(stats.page_pulls >= 1, "worker must demand-pull data");
        assert!(stats.bytes_transferred > 4096);
    }

    #[test]
    fn home_return_on_ret() {
        let (k, _sim) = cluster_kernel(3);
        let out = k.run(|ctx| {
            assert_eq!(ctx.home_node(), 0);
            let c = child_on_node(1, 0);
            ctx.put(
                c,
                PutSpec::new()
                    .program(Program::native(|cc| {
                        // The child's home is node 1.
                        assert_eq!(cc.home_node(), 1);
                        cc.ret(5)?;
                        Ok(0)
                    }))
                    .start(),
            )?;
            let r = ctx.get(c, GetSpec::new())?;
            assert_eq!(r.code, 5);
            // Caller stays on node 1 until it addresses elsewhere.
            assert_eq!(ctx.cur_node(), 1);
            // Node-0 child: migrates back... node field 0 = home (0).
            ctx.put(0, PutSpec::new())?;
            assert_eq!(ctx.cur_node(), 0);
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0));
    }

    #[test]
    fn read_only_pages_cached_across_visits() {
        let (k, sim) = cluster_kernel(2);
        let out = k.run(|ctx| {
            ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
            for i in 0..16 {
                ctx.mem_mut().write_u64(SHARED.start + i * 8, i)?;
            }
            // Two sequential workers on node 1 reading the same data.
            for round in 0..2u64 {
                let c = child_on_node(1, round);
                ctx.put(
                    c,
                    PutSpec::new()
                        .program(Program::native(|cc| {
                            let mut sum = 0u64;
                            for i in 0..16 {
                                sum += cc.mem().read_u64(0x10000 + i * 8)?;
                            }
                            cc.mem_mut().write_u64(0x10080, sum)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(SHARED))
                        .snap()
                        .start(),
                )?;
                ctx.get(c, GetSpec::new().merge(SHARED))?;
            }
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0));
        let stats = sim.stats();
        assert!(
            stats.cache_hits > 0,
            "second worker re-reads cached pages: {stats:?}"
        );
    }

    #[test]
    fn written_pages_invalidate_remote_caches() {
        let (k, sim) = cluster_kernel(2);
        let out = k.run(|ctx| {
            ctx.mem_mut()
                .map_zero(Region::new(0x10000, 0x11000), Perm::RW)?;
            ctx.mem_mut().write_u64(0x10000, 1)?;
            let region = Region::new(0x10000, 0x11000);
            // Worker on node 1 reads the page (cached there), master
            // rewrites it at home, second worker must re-pull.
            for round in 0..2u64 {
                let c = child_on_node(1, 10 + round);
                ctx.put(
                    c,
                    PutSpec::new()
                        .program(Program::native(|cc| {
                            cc.mem().read_u64(0x10000)?;
                            Ok(0)
                        }))
                        .copy(CopySpec::mirror(region))
                        .snap()
                        .start(),
                )?;
                ctx.get(c, GetSpec::new())?;
                // Master returns home and dirties the page.
                ctx.put(0, PutSpec::new())?;
                ctx.mem_mut().write_u64(0x10000, round + 2)?;
            }
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0));
        let stats = sim.stats();
        assert!(
            stats.page_pulls >= 2,
            "invalidated page must be pulled again: {stats:?}"
        );
    }

    #[test]
    fn node_out_of_range_rejected() {
        let (k, _sim) = cluster_kernel(2);
        let out = k.run(|ctx| match ctx.put(child_on_node(7, 0), PutSpec::new()) {
            Err(det_kernel::KernelError::NodeUnreachable(7)) => Ok(0),
            other => panic!("expected unreachable, got {other:?}"),
        });
        assert_eq!(out.exit, Ok(0));
    }
}
