//! Shard hosts: the data-plane half of the real-thread cluster.
//!
//! Each shard is one OS host thread plus a compute permit. The host
//! thread never computes user work — it dispatches migrated jobs onto
//! fresh vehicle threads and serves leaf pulls from the frozen images
//! it is home to, so a shard stays responsive to the network while its
//! resident job crunches. The permit models the paper's uniprocessor
//! node: at most one migrated job *computes* per shard at a time, and
//! a job blocked joining a child releases its permit (the child may
//! need this very shard).
//!
//! Nothing in this file touches virtual time or the deterministic
//! counters except through quantities that are pure functions of the
//! workload's logical-node topology — which is why every digest,
//! clock, and stat is invariant under the shard count (the
//! Lingua-Franca-style decoupling of logical time from the physical
//! schedule).

use std::sync::Arc;
use std::sync::mpsc;

use parking_lot::{Condvar, Mutex};

use det_kernel::{Kernel, wire};
use det_memory::AddressSpace;

use crate::controller::{Env, JobArtifact, Remote};
use crate::protocol::{HEADER_BYTES, HostMsg, JobDone, JobMsg, materialize, touched};

/// A counting permit (capacity 1 per shard): the uniprocessor-node
/// compute token. Thread-agnostic by design — a job releases it while
/// blocked in a join and may reacquire from the same or another
/// thread.
pub(crate) struct Permit {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Permit {
    pub(crate) fn new(capacity: usize) -> Permit {
        Permit {
            free: Mutex::new(capacity),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn acquire(&self) {
        let mut g = self.free.lock();
        while *g == 0 {
            self.cv.wait(&mut g);
        }
        *g -= 1;
    }

    pub(crate) fn release(&self) {
        *self.free.lock() += 1;
        self.cv.notify_one();
    }
}

/// The shard host loop: dispatch jobs, serve leaf pulls, drain on
/// shutdown. Joins every job vehicle it spawned before exiting (the
/// controller only sends `Shutdown` once all jobs have completed, so
/// this never blocks on a pull served by an already-stopped peer).
pub(crate) fn host_loop(env: Arc<Env>, shard: usize, rx: mpsc::Receiver<HostMsg>) {
    let mut vehicles = Vec::new();
    for msg in rx.iter() {
        match msg {
            HostMsg::Submit(job) => {
                let env2 = Arc::clone(&env);
                let name = format!("shard{shard}-job{}", job.job_id);
                vehicles.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || run_job(env2, *job))
                        .expect("spawn job vehicle"),
                );
            }
            HostMsg::PullLeaf {
                job,
                first_vpn,
                reply,
            } => {
                // Data plane: encode the leaf from the frozen home
                // image and ship it. Canonical encoding → the byte
                // count every replica charges for is identical.
                let json = wire::delta_to_json(&env.frozen_leaf(shard, job, first_vpn));
                let _ = reply.send(json);
            }
            HostMsg::Shutdown => break,
        }
    }
    for v in vehicles {
        let _ = v.join();
    }
}

/// Runs one migrated job: materialize O(touched) by pulling leaves
/// from the home shard, execute it in a fresh `det-kernel` instance
/// under this shard's compute permit, then ship the dirty delta home.
fn run_job(env: Arc<Env>, msg: JobMsg) {
    let shard = env.shard_of(msg.node);
    let permit = Arc::clone(&env.permits[shard]);
    permit.acquire();

    // --- Materialize the migrated space, leaf by leaf. ---
    let remote_xfer = msg.node != msg.home_node;
    let mut net_ps = 0u64;
    let mut mem = AddressSpace::new();
    if remote_xfer {
        for leaf in &msg.summary {
            if !touched(leaf, &msg.touch) {
                continue;
            }
            let (txr, rxr) = mpsc::channel();
            env.send(
                msg.home_shard,
                HostMsg::PullLeaf {
                    job: msg.job_id,
                    first_vpn: leaf.first_vpn,
                    reply: txr,
                },
            );
            let json = rxr
                .recv()
                .expect("home shard serves pulls until every job completes");
            let resp_bytes = HEADER_BYTES + json.len() as u64;
            {
                let mut cs = env.cluster.lock();
                cs.page_pulls += leaf.pages as u64;
                cs.messages += 2;
                cs.bytes_transferred += HEADER_BYTES + resp_bytes;
            }
            net_ps = net_ps
                .saturating_add(env.spec.net.message_ps(HEADER_BYTES))
                .saturating_add(env.spec.net.message_ps(resp_bytes));
            let delta = wire::delta_from_json(&json).expect("wire codec round-trips");
            mem.apply_delta(&delta)
                .expect("leaf image applies onto a fresh space");
        }
        mem.clear_dirty();
    } else {
        // Same-node fork: the image never crosses the link. Count the
        // avoided pulls as cache hits, like the residency model does.
        let pages: u64 = msg
            .summary
            .iter()
            .filter(|l| touched(l, &msg.touch))
            .map(|l| l.pages as u64)
            .sum();
        env.cluster.lock().cache_hits += pages;
        mem = env.with_frozen(msg.home_shard, msg.job_id, |frozen| {
            materialize(frozen, &msg.summary, &msg.touch)
        });
    }
    let base = mem.clone();

    // --- Execute in a fresh kernel shard. ---
    let start_ps = msg.start_vclock_ps.saturating_add(net_ps);
    let capture: Arc<Mutex<Option<(u64, u64, String)>>> = Arc::new(Mutex::new(None));
    let cap = Arc::clone(&capture);
    let env2 = Arc::clone(&env);
    let (node, path, program, region) = (msg.node, msg.path.clone(), msg.program, msg.region);
    let base2 = base.clone();
    let outcome = Kernel::new(env.job_kernel_config()).run(move |ctx| {
        std::mem::swap(ctx.mem_mut(), &mut mem);
        ctx.sync_vclock_ps(start_ps)?;
        let remote = Remote::new(env2, node, path);
        let res = program(ctx, &remote);
        // Capture the going-home state before the kernel tears the
        // space down — on success and on a clean error alike.
        let delta = ctx.mem().delta_since(&base2);
        *cap.lock() = Some((
            ctx.vclock_ps(),
            ctx.mem().content_digest().value(),
            wire::delta_to_json(&delta),
        ));
        let _ = region;
        res
    });
    // A panicking program unwinds past the capture; come home with an
    // empty delta and the trap exit (deterministic either way).
    let (vclock_ps, digest, delta_json) = capture.lock().take().unwrap_or((
        det_kernel::ns_to_ps(outcome.vclock_ns),
        0,
        String::new(),
    ));

    {
        let mut agg = env.agg.lock();
        agg.add_stats(&outcome.stats);
        agg.spurious += outcome.host.spurious_wakeups;
        agg.jobs.insert(
            msg.path.clone(),
            JobArtifact {
                path: msg.path.clone(),
                node: msg.node,
                vclock_ps,
                digest,
                exit: outcome.exit,
            },
        );
    }

    permit.release();
    let _ = msg.reply.send(JobDone {
        exit: outcome.exit,
        vclock_ps,
        digest,
        delta_json,
    });
    env.job_done();
}
