//! The migration data plane: message types and the leaf-pull
//! materialization protocol.
//!
//! A migrated space crosses the (simulated-latency) link in two kinds
//! of message, exactly as in the paper's "simplistic page copying
//! protocol" (§3.3) but at page-table-*leaf* granularity:
//!
//! * a **migration summary** — register/entry state plus the
//!   [`det_memory::LeafInfo`] directory of the space's structurally
//!   shared page table (DESIGN.md §5). Because the table only
//!   materializes leaves that were touched, the summary is O(touched);
//! * **leaf pulls** — one request/response round trip per summarized
//!   leaf the destination actually needs, carrying the leaf's image in
//!   the checkpoint delta encoding ([`det_kernel::wire`]).
//!
//! Everything here is deterministic: message sizes come from the
//! canonical wire encoding, so byte counts and the virtual-time
//! charges derived from them are pure functions of the workload and
//! the logical node topology — never of how many OS-thread shards the
//! run happened to use.

use std::sync::mpsc;

use det_kernel::{NativeResult, SpaceCtx, TrapKind};
use det_memory::{AddressSpace, LeafInfo, PAGE_SHIFT, PAGES_PER_LEAF, Region};

use crate::controller::Remote;

/// Fixed per-message header bytes (addresses, space/job ids, opcode) —
/// the same 64-byte overhead the residency cost model charges per
/// request.
pub(crate) const HEADER_BYTES: u64 = 64;

/// Size of a migration summary for a space of `pages` mapped pages:
/// a header plus one 16-byte page-table entry per page. Matches
/// [`crate::SimCluster`]'s accounting so the two runtimes price the
/// same schedule identically.
pub(crate) fn summary_bytes(pages: u64) -> u64 {
    HEADER_BYTES + 16 * pages
}

/// A job's executable half: a native closure driven through the
/// target shard kernel's [`SpaceCtx`], with a [`Remote`] handle for
/// nested cross-node forks.
pub type JobFn = Box<dyn FnOnce(&mut SpaceCtx, &Remote) -> NativeResult + Send + 'static>;

/// True if `leaf` intersects the declared access set (`None` =
/// everything).
pub(crate) fn touched(leaf: &LeafInfo, touch: &Option<Vec<Region>>) -> bool {
    match touch {
        None => true,
        Some(regions) => {
            let start = leaf.first_vpn << PAGE_SHIFT;
            let end = (leaf.first_vpn + PAGES_PER_LEAF as u64) << PAGE_SHIFT;
            regions.iter().any(|r| r.start < end && r.end > start)
        }
    }
}

/// Materializes a migrated space's image from its frozen home copy:
/// applies the leaf image of every summarized leaf intersecting the
/// declared touch set onto a fresh space, then clears the dirty set so
/// the job's write-set starts empty.
///
/// Both sides of a migration use this exact function — the job shard
/// (with wire-decoded leaf images) and the forking parent (directly
/// from the frozen image, to reconstruct the merge snapshot) — so the
/// two replicas are bit-identical by construction.
pub(crate) fn materialize(
    frozen: &AddressSpace,
    summary: &[LeafInfo],
    touch: &Option<Vec<Region>>,
) -> AddressSpace {
    let mut mem = AddressSpace::new();
    for leaf in summary {
        if !touched(leaf, touch) {
            continue;
        }
        mem.apply_delta(&frozen.leaf_image(leaf.first_vpn))
            .expect("leaf image applies onto a fresh space");
    }
    mem.clear_dirty();
    mem
}

/// Messages a shard host serves on its data-plane channel.
pub(crate) enum HostMsg {
    /// Run a migrated job on this shard.
    Submit(Box<JobMsg>),
    /// Pull one leaf of a frozen home image (request/response).
    PullLeaf {
        job: u64,
        first_vpn: u64,
        reply: mpsc::Sender<String>,
    },
    /// Drain and exit (sent once every job has completed).
    Shutdown,
}

/// A remote fork in flight: everything the target shard needs to
/// materialize and run the migrated space.
pub(crate) struct JobMsg {
    pub job_id: u64,
    /// Deterministic lineage path (fork-ordinal/tag@node under the
    /// parent's path).
    pub path: String,
    /// Logical node the job runs on.
    pub node: u16,
    /// Shard holding the frozen image (the parent's shard).
    pub home_shard: usize,
    /// Logical node the image lives on (the parent's node).
    pub home_node: u16,
    pub program: JobFn,
    pub region: Region,
    pub touch: Option<Vec<Region>>,
    pub summary: Vec<LeafInfo>,
    /// Parent's virtual clock at submit, plus the summary-message
    /// cost: the migrated space's clock starts here (the rendezvous
    /// stamp rule).
    pub start_vclock_ps: u64,
    pub reply: mpsc::Sender<JobDone>,
}

/// A completed job coming home: exit, clock, and the dirty delta in
/// wire encoding. (The job kernel's stats flow into the controller's
/// aggregate directly; only rendezvous-relevant state rides the
/// reply.)
pub(crate) struct JobDone {
    pub exit: Result<i32, TrapKind>,
    /// The job root's final virtual clock (picoseconds), including
    /// its inherited start clock and materialization network time.
    pub vclock_ps: u64,
    /// Final whole-image content digest of the job's memory.
    pub digest: u64,
    /// `delta_since` the materialized base, wire-encoded.
    pub delta_json: String,
}
