//! Cross-check of the two cluster runtimes' cost accounting.
//!
//! The same logical schedule — fork a worker onto node 1 over a
//! 16-page region, worker reads every page and writes nothing, join —
//! is run through [`SimCluster`] (residency bookkeeping on one kernel)
//! and through the real-thread shard runtime ([`ClusterSpec`]). Both
//! sides' traffic counters are derived from first principles and
//! pinned **exactly**, so any drift in either model's accounting (or
//! in the wire encoding the shard runtime prices) fails loudly.
//!
//! The two models agree on the schedule-level quantities:
//!
//! * **migrations** — 2 each: sim pays depart (`Put` to node 1) and
//!   return-home (root halt); the shard runtime pays the fork summary
//!   and the homecoming delta.
//! * **page pulls** — 16 each (the shard runtime counts
//!   page-*equivalents*: one leaf pull carrying 16 pages).
//!
//! They deliberately differ in message/byte granularity: sim moves
//! pages one 4 KiB round trip at a time (the paper's "simplistic page
//! copying protocol"), while the shard runtime batches a whole
//! page-table leaf per round trip and ships a byte-exact delta
//! encoding. Both flavors are asserted exactly below.

use det_cluster::{ClusterSpec, JobSpec, NetworkModel, SimCluster};
use det_kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region, child_on_node, wire,
};
use det_memory::{AddressSpace, Perm, SpaceDelta};

const BASE: u64 = 0x10000;
const PAGES: u64 = 16;
const REGION: Region = Region {
    start: BASE,
    end: BASE + PAGES * 0x1000,
};
const HEADER: u64 = 64;

/// Root-side setup both runtimes share: map the region and write the
/// first word of every page.
fn fill(mem: &mut AddressSpace) {
    mem.map_zero(REGION, Perm::RW).unwrap();
    for p in 0..PAGES {
        mem.write_u64(BASE + p * 0x1000, p + 1).unwrap();
    }
}

#[test]
fn sim_and_shard_runtimes_price_the_same_schedule_consistently() {
    // --- The schedule on SimCluster. ---
    let sim = SimCluster::new(2, NetworkModel::ethernet_1g());
    let out = Kernel::with_cluster(KernelConfig::default(), sim.clone()).run(|ctx| {
        fill(ctx.mem_mut());
        let c = child_on_node(1, 1);
        ctx.put(
            c,
            PutSpec::new()
                .program(Program::native(|cc| {
                    let mut acc = 0u64;
                    for p in 0..PAGES {
                        acc = acc.wrapping_add(cc.mem().read_u64(BASE + p * 0x1000)?);
                    }
                    assert_eq!(acc, PAGES * (PAGES + 1) / 2);
                    Ok(0)
                }))
                .copy(CopySpec::mirror(REGION))
                .snap()
                .start(),
        )?;
        ctx.get(c, GetSpec::new().merge(REGION))?;
        // Return-home leg: address node 0 so the root migrates back
        // (the shard runtime's homecoming happens inside `join`).
        ctx.put(0, PutSpec::new())?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    let s = sim.stats();
    // Depart at the remote Put + the explicit return home.
    assert_eq!(s.migrations, 2, "{s:?}");
    // Every page the worker reads is resident only on node 0.
    assert_eq!(s.page_pulls, PAGES, "{s:?}");
    // 1 summary out + 2 per page pull + 1 summary home.
    assert_eq!(s.messages, 1 + 2 * PAGES + 1, "{s:?}");
    // Summaries price 64 + 16·pages; each pull moves 4096 + 64.
    assert_eq!(
        s.bytes_transferred,
        2 * (HEADER + 16 * PAGES) + PAGES * (4096 + HEADER),
        "{s:?}"
    );

    // --- The same schedule on the real-thread shard runtime. ---
    let out = ClusterSpec::new(2, 2).run(|ctx, net| {
        fill(ctx.mem_mut());
        net.fork(
            ctx,
            1,
            1,
            JobSpec::native(REGION, |c, _| {
                let mut acc = 0u64;
                for p in 0..PAGES {
                    acc = acc.wrapping_add(c.mem().read_u64(BASE + p * 0x1000)?);
                }
                assert_eq!(acc, PAGES * (PAGES + 1) / 2);
                Ok(0)
            }),
        )?;
        net.join(ctx, 1)?;
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    let h = out.cluster;
    // Fork summary + homecoming delta: same migration count as sim.
    assert_eq!(h.migrations, 2, "{h:?}");
    // One leaf pull carrying all 16 pages: same page-equivalents.
    assert_eq!(h.page_pulls, PAGES, "{h:?}");
    // Leaf batching: 1 summary + 2 for the leaf pull + 2 for the join
    // round trip (vs sim's per-page 2·16).
    assert_eq!(h.messages, 5, "{h:?}");
    // Bytes priced off the canonical wire encoding: reconstruct the
    // frozen image exactly as `fork` does and measure its leaf image.
    let mut root = AddressSpace::new();
    fill(&mut root);
    let mut img = AddressSpace::new();
    img.copy_from_counted(&root, REGION, REGION.start).unwrap();
    let summary = img.leaf_summary();
    assert_eq!(summary.len(), 1, "16 pages live in one leaf");
    assert_eq!(summary[0].pages, PAGES as u32);
    let leaf_json = wire::delta_to_json(&img.leaf_image(summary[0].first_vpn));
    // The worker writes nothing, so the homecoming delta is empty.
    let empty_delta_json = wire::delta_to_json(&SpaceDelta::default());
    let expected = (HEADER + 16 * PAGES)                    // fork summary
        + HEADER + (HEADER + leaf_json.len() as u64)        // leaf pull round trip
        + HEADER + (HEADER + empty_delta_json.len() as u64); // join round trip
    assert_eq!(h.bytes_transferred, expected, "{h:?}");
    // Nothing was forked onto its own node.
    assert_eq!(h.cache_hits, 0, "{h:?}");
}

/// The page-equivalent pull counts of the two runtimes track each
/// other across region sizes (the shard runtime batches, but the
/// page-equivalents are identical whenever the worker touches every
/// mapped page).
#[test]
fn pull_page_equivalents_match_across_sizes() {
    for pages in [1u64, 4, 32] {
        let region = Region::new(BASE, BASE + pages * 0x1000);
        let sim = SimCluster::new(2, NetworkModel::ethernet_1g());
        let out = Kernel::with_cluster(KernelConfig::default(), sim.clone()).run(move |ctx| {
            ctx.mem_mut().map_zero(region, Perm::RW)?;
            for p in 0..pages {
                ctx.mem_mut().write_u64(BASE + p * 0x1000, p + 1)?;
            }
            let c = child_on_node(1, 1);
            ctx.put(
                c,
                PutSpec::new()
                    .program(Program::native(move |cc| {
                        for p in 0..pages {
                            cc.mem().read_u64(BASE + p * 0x1000)?;
                        }
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(region))
                    .snap()
                    .start(),
            )?;
            ctx.get(c, GetSpec::new())?;
            ctx.put(0, PutSpec::new())?; // return-home leg
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0));

        let shard = ClusterSpec::new(2, 2).run(move |ctx, net| {
            ctx.mem_mut().map_zero(region, Perm::RW)?;
            for p in 0..pages {
                ctx.mem_mut().write_u64(BASE + p * 0x1000, p + 1)?;
            }
            net.fork(
                ctx,
                1,
                1,
                JobSpec::native(region, move |c, _| {
                    for p in 0..pages {
                        c.mem().read_u64(BASE + p * 0x1000)?;
                    }
                    Ok(0)
                }),
            )?;
            net.join(ctx, 1)?;
            Ok(0)
        });
        assert_eq!(shard.exit, Ok(0));
        assert_eq!(
            sim.stats().page_pulls,
            shard.cluster.page_pulls,
            "pages={pages}: sim {:?} vs shard {:?}",
            sim.stats(),
            shard.cluster
        );
        assert_eq!(
            sim.stats().migrations,
            shard.cluster.migrations,
            "pages={pages}"
        );
    }
}
