//! Differential property tests of the leaf-pull migration protocol.
//!
//! The real-thread shard runtime materializes a migrated space by
//! pulling *leaves* of the structurally shared page table through the
//! canonical wire encoding (`det_kernel::wire`). These properties pit
//! that path against the trusted whole-space-copy oracle
//! (`AddressSpace::copy_from_counted`) on randomized sparse layouts:
//! the replica must agree byte-for-byte, permission-for-permission,
//! and dirty-set-for-dirty-set, while transferring no more leaves
//! than the touch set intersects.

use det_kernel::wire;
use det_memory::{AddressSpace, PAGES_PER_LEAF, Perm, Region};
use proptest::prelude::*;

const PAGE: u64 = 0x1000;
const LEAF_SPAN: u64 = PAGES_PER_LEAF as u64 * PAGE;
/// Layouts span up to 6 leaves.
const LEAVES: u64 = 6;

/// One mapped page of the randomized layout.
#[derive(Clone, Debug)]
struct Pg {
    leaf: u64,
    slot: u64,
    fill: u8,
    read_only: bool,
    /// Leave the page all-zero (it stays on the shared zero frame, so
    /// the leaf image must use the WriteZero encoding).
    zero: bool,
}

fn pages() -> impl Strategy<Value = Vec<Pg>> {
    proptest::collection::vec(
        (
            0..LEAVES,
            prop_oneof![0..4u64, (PAGES_PER_LEAF as u64 - 3)..PAGES_PER_LEAF as u64],
            any::<u8>(),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(leaf, slot, fill, read_only, zero)| Pg {
                leaf,
                slot,
                fill,
                read_only,
                zero,
            }),
        1..24,
    )
}

/// Touch set: `None` (pull everything) or a random sub-span of leaves.
fn touch() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop_oneof![
        Just(None),
        (0..LEAVES, 1..=LEAVES).prop_map(|(lo, n)| Some((lo, (lo + n).min(LEAVES)))),
    ]
}

fn page_addr(p: &Pg) -> u64 {
    p.leaf * LEAF_SPAN + p.slot * PAGE
}

/// Builds the source space from the randomized layout.
fn build_src(layout: &[Pg]) -> AddressSpace {
    let mut s = AddressSpace::new();
    for p in layout {
        let at = page_addr(p);
        let r = Region::new(at, at + PAGE);
        if s.map_zero_if_unmapped(r, Perm::RW).unwrap() == 0 {
            continue; // duplicate (leaf, slot) — first mapping wins
        }
        if !p.zero {
            s.write_u8(at, p.fill).unwrap();
            s.write_u8(at + PAGE - 1, p.fill ^ 0xff).unwrap();
        }
        if p.read_only {
            s.set_perm(r, Perm::R).unwrap();
        }
    }
    s
}

fn full_region() -> Region {
    Region::new(0, LEAVES * LEAF_SPAN)
}

fn touch_region(t: (u64, u64)) -> Region {
    Region::new(t.0 * LEAF_SPAN, t.1 * LEAF_SPAN)
}

/// The migration under test: summarize, filter by touch, pull each
/// leaf image through the wire codec, apply onto a fresh space.
/// Returns the replica and the number of leaves transferred.
fn leaf_pull_migrate(src: &AddressSpace, touch: Option<(u64, u64)>) -> (AddressSpace, usize) {
    let mut replica = AddressSpace::new();
    let mut transferred = 0;
    for leaf in src.leaf_summary() {
        if let Some(t) = touch {
            let r = touch_region(t);
            let start = leaf.first_vpn * PAGE;
            let end = start + LEAF_SPAN;
            if !(r.start < end && r.end > start) {
                continue;
            }
        }
        let json = wire::delta_to_json(&src.leaf_image(leaf.first_vpn));
        let delta = wire::delta_from_json(&json).expect("wire codec round-trips");
        replica.apply_delta(&delta).expect("leaf image applies");
        transferred += 1;
    }
    (replica, transferred)
}

/// The oracle: one whole-space structural copy of the touched span.
fn oracle_migrate(src: &AddressSpace, touch: Option<(u64, u64)>) -> AddressSpace {
    let region = touch.map_or(full_region(), touch_region);
    let mut dst = AddressSpace::new();
    dst.copy_from_counted(src, region, region.start).unwrap();
    dst
}

/// Page-by-page observable state: (vpn, perm, dirty, first byte, last
/// byte).
fn observe(s: &AddressSpace) -> Vec<(u64, Perm, bool, u8, u8)> {
    let dirty: std::collections::BTreeSet<u64> = s.dirty_vpns().into_iter().collect();
    s.iter_pages()
        .map(|p| {
            let at = p.vpn * PAGE;
            (
                p.vpn,
                p.perm,
                dirty.contains(&p.vpn),
                s.read_u8(at).unwrap(),
                s.read_u8(at + PAGE - 1).unwrap(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Full migration (no touch set): the leaf-pull replica and the
    /// whole-space-copy oracle agree on bytes, permissions, dirty
    /// sets, and the whole-image digest.
    #[test]
    fn leaf_pull_equals_whole_copy(layout in pages()) {
        let src = build_src(&layout);
        let (replica, transferred) = leaf_pull_migrate(&src, None);
        let oracle = oracle_migrate(&src, None);
        prop_assert_eq!(observe(&replica), observe(&oracle));
        prop_assert_eq!(
            replica.content_digest().value(),
            oracle.content_digest().value()
        );
        prop_assert_eq!(transferred, src.leaf_summary().len());
    }

    /// Touch-filtered migration: identical to an oracle copy of the
    /// touched span, and never transfers more leaves than the touch
    /// set intersects.
    #[test]
    fn touch_filter_matches_oracle_span(layout in pages(), t in touch()) {
        let src = build_src(&layout);
        let (replica, transferred) = leaf_pull_migrate(&src, t);
        let oracle = oracle_migrate(&src, t);
        prop_assert_eq!(observe(&replica), observe(&oracle));
        let touched = src
            .leaf_summary()
            .iter()
            .filter(|l| match t {
                None => true,
                Some(span) => {
                    let r = touch_region(span);
                    let start = l.first_vpn * PAGE;
                    r.start < start + LEAF_SPAN && r.end > start
                }
            })
            .count();
        prop_assert!(transferred <= touched, "{transferred} > {touched}");
        prop_assert_eq!(transferred, touched);
    }

    /// The summary directory is exact: leaf page counts sum to the
    /// space's page count, and every mapped page falls inside exactly
    /// one summarized leaf.
    #[test]
    fn summary_is_exact(layout in pages()) {
        let src = build_src(&layout);
        let summary = src.leaf_summary();
        let total: u64 = summary.iter().map(|l| l.pages as u64).sum();
        prop_assert_eq!(total, src.page_count() as u64);
        for p in src.iter_pages() {
            let holder = summary
                .iter()
                .filter(|l| {
                    l.first_vpn <= p.vpn && p.vpn < l.first_vpn + PAGES_PER_LEAF as u64
                })
                .count();
            prop_assert_eq!(holder, 1, "vpn {} in {} leaves", p.vpn, holder);
        }
    }

    /// Wire-codec round trip over a leaf image is lossless, and the
    /// encoding is canonical (re-encoding the decoded delta yields the
    /// same bytes — the property the byte-accounting relies on).
    #[test]
    fn wire_codec_is_lossless_and_canonical(layout in pages()) {
        let src = build_src(&layout);
        for leaf in src.leaf_summary() {
            let img = src.leaf_image(leaf.first_vpn);
            let json = wire::delta_to_json(&img);
            let back = wire::delta_from_json(&json).unwrap();
            prop_assert_eq!(&back, &img);
            prop_assert_eq!(wire::delta_to_json(&back), json);
        }
    }
}
