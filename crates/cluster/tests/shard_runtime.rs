//! Integration tests for the real-thread shard runtime: fork/join
//! semantics, leaf-pull migration, clock propagation, and the
//! shard-count invariance of every deterministic quantity.

use det_cluster::{ClusterOutcome, ClusterSpec, JobSpec};
use det_memory::{Perm, Region};

const REGION: Region = Region {
    start: 0x1000,
    end: 0x9000,
};

/// Fork one job per non-root node; each squares a slot of the shared
/// region; the root merges all of them back.
fn fanout(nodes: u16, shards: usize) -> ClusterOutcome {
    ClusterSpec::new(nodes, shards).run(move |ctx, net| {
        ctx.mem_mut().map_zero(REGION, Perm::RW)?;
        for i in 0..nodes as u64 {
            ctx.mem_mut().write_u64(0x1000 + i * 8, i + 1)?;
        }
        for n in 1..net.nodes() {
            net.fork(
                ctx,
                n as u64,
                n,
                JobSpec::native(REGION, move |c, _| {
                    let v = c.mem().read_u64(0x1000 + n as u64 * 8)?;
                    c.mem_mut().write_u64(0x2000 + n as u64 * 8, v * v)?;
                    Ok(0)
                }),
            )?;
        }
        for n in 1..net.nodes() {
            let j = net.join(ctx, n as u64)?;
            assert_eq!(j.exit, Ok(0));
        }
        for n in 1..nodes as u64 {
            let want = (n + 1) * (n + 1);
            assert_eq!(ctx.mem().read_u64(0x2000 + n * 8)?, want);
        }
        Ok(0)
    })
}

#[test]
fn remote_fanout_merges_results() {
    let out = fanout(4, 2);
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.jobs.len(), 3);
    assert!(out.cluster.migrations >= 3, "{:?}", out.cluster);
    assert!(out.cluster.page_pulls >= 3, "{:?}", out.cluster);
    assert!(out.cluster.bytes_transferred > 0);
}

/// Every deterministic quantity is bit-identical across shard counts.
#[test]
fn fanout_shard_count_invariant() {
    let base = fanout(5, 1);
    let base_bundle = base.bundle_bytes();
    for shards in [2usize, 3, 5, 8] {
        let other = fanout(5, shards);
        assert_eq!(
            base_bundle,
            other.bundle_bytes(),
            "bundle diverged at shards={shards}"
        );
        assert_eq!(base.vclock_ns, other.vclock_ns);
        assert_eq!(base.stats, other.stats);
        assert_eq!(base.cluster, other.cluster);
    }
}

/// A job forked onto the caller's own node never crosses the link:
/// pulls become cache hits and no bytes move.
#[test]
fn same_node_fork_is_free_of_traffic() {
    let out = ClusterSpec::new(2, 2).run(|ctx, net| {
        ctx.mem_mut().map_zero(REGION, Perm::RW)?;
        ctx.mem_mut().write_u64(0x1000, 21)?;
        net.fork(
            ctx,
            9,
            0, // root's own node
            JobSpec::native(REGION, |c, _| {
                let v = c.mem().read_u64(0x1000)?;
                c.mem_mut().write_u64(0x1008, v * 2)?;
                Ok(0)
            }),
        )?;
        net.join(ctx, 9)?;
        assert_eq!(ctx.mem().read_u64(0x1008)?, 42);
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(out.cluster.migrations, 0, "{:?}", out.cluster);
    assert_eq!(out.cluster.bytes_transferred, 0, "{:?}", out.cluster);
    assert!(out.cluster.cache_hits > 0, "{:?}", out.cluster);
}

/// Nested cross-node forks: a job on node 1 forks a grandchild onto
/// node 2; results propagate back through both merges. Exercises the
/// permit-release-in-join path (on 1 shard the whole chain shares one
/// permit and would deadlock without it).
#[test]
fn nested_remote_forks_propagate() {
    for shards in [1usize, 3] {
        let out = ClusterSpec::new(3, shards).run(|ctx, net| {
            ctx.mem_mut().map_zero(REGION, Perm::RW)?;
            ctx.mem_mut().write_u64(0x1000, 5)?;
            net.fork(
                ctx,
                1,
                1,
                JobSpec::native(REGION, |c, net| {
                    let v = c.mem().read_u64(0x1000)?;
                    c.mem_mut().write_u64(0x1008, v + 1)?;
                    net.fork(
                        c,
                        1,
                        2,
                        JobSpec::native(REGION, |cc, _| {
                            let v = cc.mem().read_u64(0x1008)?;
                            cc.mem_mut().write_u64(0x1010, v * 10)?;
                            Ok(0)
                        }),
                    )?;
                    net.join(c, 1)?;
                    Ok(0)
                }),
            )?;
            net.join(ctx, 1)?;
            assert_eq!(ctx.mem().read_u64(0x1010)?, 60);
            Ok(0)
        });
        assert_eq!(out.exit, Ok(0), "shards={shards}");
        assert_eq!(out.jobs.len(), 2);
        // Lineage paths are hierarchical and deterministic.
        let paths: Vec<&str> = out.jobs.iter().map(|j| j.path.as_str()).collect();
        assert_eq!(paths, ["/0:1@1", "/0:1@1/0:1@2"]);
    }
}

/// The touch set bounds the transfer: leaves outside the declared
/// access set are never pulled.
#[test]
fn touch_set_limits_leaf_pulls() {
    // One mapped page in each of 8 distinct page-table leaves
    // (leaves are 512 pages = 2 MiB apart).
    const LEAF_SPAN: u64 = 512 * 0x1000;
    let wide = Region::new(LEAF_SPAN, 9 * LEAF_SPAN);
    let run = |touch: Option<Region>| {
        ClusterSpec::new(2, 2).run(move |ctx, net| {
            for k in 1..9u64 {
                let at = k * LEAF_SPAN;
                ctx.mem_mut()
                    .map_zero(Region::new(at, at + 0x1000), Perm::RW)?;
                ctx.mem_mut().write_u64(at, k)?;
            }
            let mut spec = JobSpec::native(wide, |c, _| {
                let v = c.mem().read_u64(LEAF_SPAN)?;
                c.mem_mut().write_u64(LEAF_SPAN + 8, v + 1)?;
                Ok(0)
            });
            if let Some(t) = touch {
                spec = spec.touch(vec![t]);
            }
            net.fork(ctx, 1, 1, spec)?;
            net.join(ctx, 1)?;
            Ok(0)
        })
    };
    let full = run(None);
    let narrow = run(Some(Region::new(LEAF_SPAN, LEAF_SPAN + 0x1000)));
    assert_eq!(full.exit, Ok(0));
    assert_eq!(narrow.exit, Ok(0));
    assert!(
        narrow.cluster.page_pulls < full.cluster.page_pulls,
        "narrow={:?} full={:?}",
        narrow.cluster,
        full.cluster
    );
    assert!(narrow.cluster.bytes_transferred < full.cluster.bytes_transferred);
}

/// Clocks follow the rendezvous max rule: the root's final clock is at
/// least the remote job's effective clock including network time, and
/// a remote fork is strictly slower (in virtual time) than the same
/// fork on the root's own node.
#[test]
fn remote_fork_costs_virtual_network_time() {
    let run = |node: u16| {
        ClusterSpec::new(2, 2).run(move |ctx, net| {
            ctx.mem_mut().map_zero(REGION, Perm::RW)?;
            net.fork(
                ctx,
                0,
                node,
                JobSpec::native(REGION, |c, _| {
                    c.mem_mut().write_u64(0x1000, 1)?;
                    Ok(0)
                }),
            )?;
            net.join(ctx, 0)?;
            Ok(0)
        })
    };
    let local = run(0);
    let remote = run(1);
    assert_eq!(local.exit, Ok(0));
    assert_eq!(remote.exit, Ok(0));
    assert!(
        remote.vclock_ns > local.vclock_ns,
        "remote {} <= local {}",
        remote.vclock_ns,
        local.vclock_ns
    );
}

/// Jobs placed on distinct shards really execute concurrently: each
/// one blocks until it has seen *all* of its peers in flight, which
/// can only resolve if no layer of the runtime (fork, permits, the
/// host loops) serializes them. A runtime that ran jobs one at a
/// time would never let the first job past the barrier. The rendezvous
/// is host-side (an atomic the closures capture) and leaves no trace
/// in any deterministic quantity.
#[test]
fn distinct_shards_run_jobs_concurrently() {
    use std::sync::Arc;
    use std::sync::atomic::{AtomicU64, Ordering};
    const JOBS: u64 = 3;
    let in_flight = Arc::new(AtomicU64::new(0));
    let out = ClusterSpec::new(4, 4).run({
        let in_flight = Arc::clone(&in_flight);
        move |ctx, net| {
            ctx.mem_mut().map_zero(REGION, Perm::RW)?;
            for n in 1..net.nodes() {
                let in_flight = Arc::clone(&in_flight);
                net.fork(
                    ctx,
                    n as u64,
                    n,
                    JobSpec::native(REGION, move |c, _| {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        let t0 = std::time::Instant::now();
                        while in_flight.load(Ordering::SeqCst) < JOBS {
                            assert!(
                                t0.elapsed().as_secs() < 30,
                                "peers never came in flight: the runtime serializes jobs"
                            );
                            std::thread::yield_now();
                        }
                        c.mem_mut().write_u64(0x1000 + n as u64 * 8, n as u64)?;
                        Ok(0)
                    }),
                )?;
            }
            for n in 1..net.nodes() {
                net.join(ctx, n as u64)?;
            }
            Ok(0)
        }
    });
    assert_eq!(out.exit, Ok(0));
    assert_eq!(in_flight.load(std::sync::atomic::Ordering::SeqCst), JOBS);
}

/// Unknown tags and unreachable nodes are rejected deterministically.
#[test]
fn fork_join_errors() {
    let out = ClusterSpec::new(2, 1).run(|ctx, net| {
        assert!(matches!(
            net.fork(ctx, 0, 7, JobSpec::native(REGION, |_, _| Ok(0))),
            Err(det_kernel::KernelError::NodeUnreachable(7))
        ));
        assert!(net.join(ctx, 3).is_err());
        Ok(0)
    });
    assert_eq!(out.exit, Ok(0));
}
