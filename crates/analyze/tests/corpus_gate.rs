//! Differential soundness + precision gate over the registered VM
//! corpus, plus verdict semantics on hand-built sibling sets.
//!
//! This is the test-suite twin of the `analyze` CI binary: every
//! corpus program's observed page accesses must fall inside its
//! predicted footprint (soundness — zero false negatives), and for
//! the loop-structured kernels the prediction must also be *tight*
//! (precision — the abstract domain carries its weight).

use det_analyze::footprint::{
    AnalyzeConfig, PageSet, Segment, Verdict, analyze, classify, classify_with_base,
};
use det_analyze::gate::check_program;
use det_vm::assemble;
use det_vm::corpus::PROGRAMS;

fn ranges(fp: &PageSet) -> &[(u64, u64)] {
    match fp {
        PageSet::Ranges(r) => r,
        PageSet::Unbounded => panic!("unexpected unbounded footprint"),
    }
}

#[test]
fn every_corpus_program_is_sound() {
    let cfg = AnalyzeConfig::default();
    for p in PROGRAMS {
        let g = check_program(p.src, p.budget, &cfg);
        assert!(
            g.sound,
            "{}: observed write pages {:?} / read pages {:?} escape predicted {} / {}",
            p.name,
            g.observed_written,
            g.observed_read,
            g.analysis.footprint.writes,
            g.analysis.footprint.reads,
        );
    }
}

/// The loop kernels march pointers over fixed windows; after widening
/// and narrowing the analysis should recover those windows exactly at
/// page granularity, not just soundly.
#[test]
fn corpus_precision_is_page_exact() {
    let cfg = AnalyzeConfig::default();
    let expect_writes: &[(&str, &[(u64, u64)])] = &[
        ("alu_loop", &[]),
        ("fib_preempt", &[]),
        ("tlb_stride", &[]),
        ("fft", &[(8, 8)]),
        ("md5", &[(8, 8)]),
        ("matmult", &[(8, 9)]),
        ("qsort", &[(8, 9)]),
        ("qsort_sort", &[(8, 9)]),
        ("counter_stream", &[(2, 2)]),
    ];
    for (name, want) in expect_writes {
        let p = PROGRAMS
            .iter()
            .find(|p| p.name == *name)
            .expect("registered");
        let g = check_program(p.src, p.budget, &cfg);
        assert_eq!(
            ranges(&g.analysis.footprint.writes),
            *want,
            "{name}: write footprint drifted"
        );
    }
}

#[test]
fn footprints_are_deterministic() {
    let cfg = AnalyzeConfig::default();
    for p in PROGRAMS {
        let image = assemble(p.src).unwrap();
        let segs = [Segment {
            base: 0,
            bytes: &image.bytes,
        }];
        let a = analyze(&segs, 0, &cfg);
        let b = analyze(&segs, 0, &cfg);
        assert_eq!(a, b, "{}: analysis not deterministic", p.name);
    }
}

#[test]
fn disjoint_kernels_classify_conflict_free() {
    let cfg = AnalyzeConfig::default();
    let get = |name: &str| {
        let p = PROGRAMS.iter().find(|p| p.name == name).unwrap();
        check_program(p.src, p.budget, &cfg).analysis
    };
    // Pure compute (no writes) never conflicts with anything bounded.
    let alu = get("alu_loop");
    let fib = get("fib_preempt");
    let fft = get("fft");
    assert_eq!(classify(&[&alu, &fib]), Verdict::ConflictFree);
    assert_eq!(classify(&[&alu, &fft]), Verdict::ConflictFree);
    // counter_stream writes page 2; fft writes page 8: disjoint.
    let ctr = get("counter_stream");
    assert_eq!(classify(&[&ctr, &fft]), Verdict::ConflictFree);
    // fft and matmult both write page 8: overlap cannot be ruled out.
    let mm = get("matmult");
    assert_eq!(classify(&[&fft, &mm]), Verdict::PossibleConflict);
}

#[test]
fn must_writes_upgrade_to_definite_conflict() {
    let cfg = AnalyzeConfig::default();
    let prog = |v: u64| {
        let src = format!("li r1, {v}\nli r2, 0x8000\nstd r1, [r2+0]\nhalt\n");
        let image = assemble(&src).unwrap();
        let segs = [Segment {
            base: 0,
            bytes: &image.bytes,
        }];
        analyze(&segs, 0, &cfg)
    };
    let a = prog(5);
    let b = prog(9);
    // Both must-write eight bytes at 0x8000 with values differing from
    // a zeroed snapshot: a definite strict conflict.
    assert_eq!(classify(&[&a, &b]), Verdict::PossibleConflict);
    assert_eq!(
        classify_with_base(&[&a, &b], &|_| 0),
        Verdict::DefiniteConflict
    );
    // Same byte, but one sibling writes the snapshot's own value: the
    // merge sees only one changed byte — not definite.
    let zero = prog(0);
    assert_eq!(
        classify_with_base(&[&a, &zero], &|_| 0),
        Verdict::PossibleConflict
    );
}

#[test]
fn unknown_indirect_jump_degrades_to_unbounded() {
    let cfg = AnalyzeConfig::default();
    let src = "li r2, 0x8000\nldd r1, [r2+0]\njalr r1, r1, 0\nhalt\n";
    let image = assemble(src).unwrap();
    let segs = [Segment {
        base: 0,
        bytes: &image.bytes,
    }];
    let a = analyze(&segs, 0, &cfg);
    assert!(a.footprint.writes.is_unbounded());
    assert!(a.footprint.reads.is_unbounded());
    assert!(
        a.footprint.touch_regions().is_none(),
        "no prefetch hint when unbounded"
    );
}

#[test]
fn touch_regions_cover_reads_and_writes() {
    let cfg = AnalyzeConfig::default();
    let p = PROGRAMS.iter().find(|p| p.name == "fft").unwrap();
    let g = check_program(p.src, p.budget, &cfg);
    let regions = g.analysis.footprint.touch_regions().expect("bounded");
    for &vpn in g.observed_read.iter().chain(&g.observed_written) {
        let addr = vpn << 12;
        assert!(
            regions.iter().any(|r| r.start <= addr && addr < r.end),
            "page {vpn:#x} not covered by hint regions {regions:?}"
        );
    }
}
