//! The 200-case differential soundness suite.
//!
//! Random structured VM programs (bounded loops, masked and wild
//! pointer arithmetic, syscalls, forward skips, byte and word stores)
//! are run concretely with an access tracker, and every case asserts
//! the two load-bearing properties of the analysis:
//!
//! 1. **Footprint soundness** — observed written pages ⊆ predicted
//!    write footprint, observed touched pages ⊆ predicted reads ∪
//!    writes. No false negatives, ever.
//! 2. **Verdict soundness** — when [`classify`] labels a sibling pair
//!    `conflict-free`, forking both from one parent, running them,
//!    and merging them back must produce **zero merge conflicts under
//!    all three [`ConflictPolicy`] variants**.

use det_analyze::footprint::{AnalyzeConfig, Segment, Verdict, analyze, classify};
use det_analyze::gate::check_program;
use det_memory::{AccessTracker, AddressSpace, ConflictPolicy, Perm, Region};
use det_vm::{Cpu, VmExit, assemble};
use proptest::prelude::*;

const BUDGET: u64 = 200_000;
/// Data windows a generated program may claim (one page each).
const DATA_BASES: [u64; 3] = [0x8000, 0x9000, 0xa000];
/// The page-aligned merge region covering every data window.
const MERGE_REGION: Region = Region {
    start: 0x8000,
    end: 0xb000,
};

/// Splitmix-style deterministic generator stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random but *structured* program: a bounded counter loop
/// whose body mixes ALU ops, stores/loads through a data pointer
/// (usually masked back into the program's window, occasionally left
/// wild so the analysis must degrade to unbounded), syscalls, and
/// forward skips. Always terminates concretely: the loop counter is
/// finite and every branch inside the body only jumps forward.
fn gen_program(seed: u64, data_base: u64) -> String {
    let mut rng = Rng(seed);
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("li r8, {data_base:#x}"));
    lines.push(format!("ldi r7, {}", 1 + rng.below(16)));
    lines.push("loop:".to_string());
    let body = 2 + rng.below(10);
    let mut skips = 0u32;
    for _ in 0..body {
        let r = |rng: &mut Rng| 1 + rng.below(6); // r1..r6 scratch
        match rng.below(12) {
            0 | 1 => {
                let (d, imm) = (r(&mut rng), rng.below(4096) as i64 - 2048);
                lines.push(format!("ldi r{d}, {imm}"));
            }
            2 => {
                let (d, s, imm) = (r(&mut rng), r(&mut rng), rng.below(256) as i64 - 128);
                lines.push(format!("addi r{d}, r{s}, {imm}"));
            }
            3 | 4 => {
                let op = ["add", "sub", "mul", "and", "or", "xor"][rng.below(6) as usize];
                let (d, s, t) = (r(&mut rng), r(&mut rng), r(&mut rng));
                lines.push(format!("{op} r{d}, r{s}, r{t}"));
            }
            5 => {
                let op = ["shli", "shri", "sari"][rng.below(3) as usize];
                let (d, s, k) = (r(&mut rng), r(&mut rng), rng.below(64));
                lines.push(format!("{op} r{d}, r{s}, {k}"));
            }
            6 | 7 => {
                let (s, disp) = (r(&mut rng), 8 * rng.below(64));
                lines.push(format!("std r{s}, [r8+{disp}]"));
            }
            8 => {
                let (s, disp) = (r(&mut rng), rng.below(512));
                lines.push(format!("stb r{s}, [r8+{disp}]"));
            }
            9 => {
                let (d, disp) = (r(&mut rng), 8 * rng.below(64));
                lines.push(format!("ldd r{d}, [r8+{disp}]"));
            }
            10 => {
                // Re-derive the data pointer from scratch state,
                // masked back into this program's window — the
                // analyzable pointer idiom.
                let s = r(&mut rng);
                lines.push(format!("andi r9, r{s}, 504"));
                lines.push(format!("li r8, {data_base:#x}"));
                lines.push("add r8, r8, r9".to_string());
            }
            _ => {
                if rng.below(4) == 0 {
                    // Wild pointer: the analysis must go unbounded,
                    // and a concrete trap (unmapped store) is fine —
                    // accesses before the trap are still checked.
                    let s = r(&mut rng);
                    lines.push(format!("add r8, r8, r{s}"));
                } else {
                    lines.push(format!("sys {}", rng.below(8)));
                    // Mirror the corpus idiom: pointers are
                    // re-established after every syscall because the
                    // kernel may rewrite registers.
                    lines.push(format!("li r8, {data_base:#x}"));
                }
            }
        }
        if rng.below(5) == 0 {
            let (a, b) = (r(&mut rng), r(&mut rng));
            let (d, imm) = (r(&mut rng), rng.below(100) as i64);
            lines.push(format!("beq r{a}, r{b}, skip{skips}"));
            lines.push(format!("ldi r{d}, {imm}"));
            lines.push(format!("skip{skips}:"));
            skips += 1;
        }
    }
    lines.push("addi r7, r7, -1".to_string());
    lines.push("bne r7, r0, loop".to_string());
    lines.push("halt".to_string());
    lines.join("\n")
}

/// Runs a child space from `entry`, resuming across `sys`, until halt,
/// trap, or budget.
fn run_child(mem: &mut AddressSpace, entry: u64) -> VmExit {
    let mut cpu = Cpu::new();
    cpu.regs.pc = entry;
    let mut left = BUDGET;
    loop {
        let before = cpu.insn_count;
        let exit = cpu.run(mem, Some(left));
        left = left.saturating_sub(cpu.insn_count - before);
        match exit {
            VmExit::Sys(_) if left > 0 => continue,
            _ => return exit,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Property 1+2 for a random sibling pair: per-program footprint
    /// soundness, then conflict-free verdicts checked against the real
    /// merge under all three policies.
    #[test]
    fn random_programs_stay_inside_predicted_footprints(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ 0xdead_beef);
        let base_a = DATA_BASES[rng.below(3) as usize];
        let base_b = DATA_BASES[rng.below(3) as usize];
        let src_a = gen_program(seed, base_a);
        let src_b = gen_program(seed.wrapping_mul(31).wrapping_add(7), base_b);
        let cfg = AnalyzeConfig::default();

        // Property 1: each program alone, observed ⊆ predicted.
        for (name, src) in [("A", &src_a), ("B", &src_b)] {
            let g = check_program(src, BUDGET, &cfg);
            prop_assert!(
                g.sound,
                "{name} (seed {seed:#x}): wrote {:?} read {:?}, predicted {} / {}\n{src}",
                g.observed_written, g.observed_read,
                g.analysis.footprint.writes, g.analysis.footprint.reads,
            );
        }

        // Siblings as the kernel would lay them out: A at 0, B at
        // 0x4000 (the ISA's control flow is pc-relative, so images
        // relocate freely).
        let img_a = assemble(&src_a).unwrap();
        let img_b = assemble(&src_b).unwrap();
        let an_a = analyze(&[Segment { base: 0, bytes: &img_a.bytes }], 0, &cfg);
        let an_b = analyze(&[Segment { base: 0x4000, bytes: &img_b.bytes }], 0x4000, &cfg);
        let verdict = classify(&[&an_a, &an_b]);

        let mut parent = AddressSpace::new();
        parent.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
        parent.write(0, &img_a.bytes).unwrap();
        parent.write(0x4000, &img_b.bytes).unwrap();

        // Property 2: under every policy, fork both children from the
        // same snapshot, run, merge back; conflict-free pairs must
        // merge clean.
        for policy in [ConflictPolicy::Strict, ConflictPolicy::BenignSameValue, ConflictPolicy::ChildWins] {
            let mut p = parent.clone();
            let fork = |p: &AddressSpace| {
                let mut c = AddressSpace::new();
                c.copy_from(p, Region::new(0, 0x10000), 0).unwrap();
                c
            };
            let mut child_a = fork(&p);
            let mut child_b = fork(&p);
            let snap = p.snapshot();

            let tr = AccessTracker::new();
            child_a.set_tracker(Some(tr.clone()));
            run_child(&mut child_a, 0);
            child_a.set_tracker(None);
            // Belt-and-braces: the in-situ sibling run also stays
            // inside its predicted footprint.
            for vpn in tr.pages_written() {
                prop_assert!(
                    an_a.footprint.writes.contains(vpn),
                    "sibling A (seed {seed:#x}) wrote page {vpn:#x} outside {}",
                    an_a.footprint.writes
                );
            }
            run_child(&mut child_b, 0x4000);

            let (_, c1) = p
                .try_merge_from(&child_a, &snap, MERGE_REGION, policy)
                .unwrap();
            let (_, c2) = p
                .try_merge_from(&child_b, &snap, MERGE_REGION, policy)
                .unwrap();
            if verdict == Verdict::ConflictFree {
                prop_assert!(
                    c1.is_none() && c2.is_none(),
                    "conflict-free verdict but {policy:?} merge conflicted (seed {seed:#x}):\nA data {base_a:#x}:\n{src_a}\nB data {base_b:#x}:\n{src_b}"
                );
            }
        }
    }
}
