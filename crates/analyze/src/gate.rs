//! The footprint-soundness gate: differential validation of the
//! static analysis against concrete execution.
//!
//! For a program, the gate (1) analyzes the assembled image, (2) runs
//! it concretely in the standard kernel sandbox with an
//! [`AccessTracker`] installed, and (3) checks the soundness
//! inclusions:
//!
//! * observed written pages ⊆ predicted write footprint, and
//! * observed touched pages ⊆ predicted reads ∪ writes.
//!
//! A violation is a **false negative** — the one thing the analysis
//! must never produce — so CI fails the build on any. The `analyze`
//! binary runs this over every registered corpus program; the
//! 200-case proptest in `tests/` runs it over random programs.

use det_memory::{AccessTracker, AddressSpace, Perm, Region};
use det_vm::{Cpu, VmExit, assemble};

use crate::footprint::{Analysis, AnalyzeConfig, PageSet, Segment, analyze};

/// Outcome of one differential soundness check.
#[derive(Clone, Debug)]
pub struct GateOutcome {
    /// The static analysis of the program.
    pub analysis: Analysis,
    /// Pages the concrete run read (fetches included).
    pub observed_read: Vec<u64>,
    /// Pages the concrete run wrote.
    pub observed_written: Vec<u64>,
    /// How the concrete run ended (display form).
    pub exit: String,
    /// Instructions the concrete run retired.
    pub insns: u64,
    /// Pages the analysis predicted but the run never wrote — the
    /// price of over-approximation (`None` when unbounded).
    pub write_slack: Option<u64>,
    /// `true` iff both soundness inclusions hold.
    pub sound: bool,
}

/// The standard analysis+execution sandbox: 64 KiB low window (code +
/// data) and the far window the TLB-stride kernel strides through —
/// identical to the bench harness sandbox, so the gate checks the
/// programs in the exact environment they are measured in.
pub fn sandbox_space(image: &[u8]) -> AddressSpace {
    let mut mem = AddressSpace::new();
    mem.map_zero(Region::new(0, 0x10000), Perm::RW)
        .expect("low window maps");
    mem.map_zero(Region::new(0x100000, 0x180000), Perm::RW)
        .expect("far window maps");
    mem.write(0, image).expect("image fits the low window");
    mem
}

/// Runs the full differential check on one assembly program.
///
/// The concrete run resumes across `sys` exits without kernel
/// intervention (registers unchanged) — one of the behaviors the
/// register-havocking analysis must cover — and stops at `halt`, a
/// trap, or the instruction budget.
pub fn check_program(src: &str, budget: u64, cfg: &AnalyzeConfig) -> GateOutcome {
    let image = assemble(src).expect("program assembles");
    let segs = [Segment {
        base: 0,
        bytes: &image.bytes,
    }];
    let analysis = analyze(&segs, 0, cfg);

    let mut mem = sandbox_space(&image.bytes);
    let tracker = AccessTracker::new();
    mem.set_tracker(Some(tracker.clone()));
    let mut cpu = Cpu::new();
    let mut left = budget;
    let mut exit = VmExit::OutOfBudget;
    while left > 0 {
        let before = cpu.insn_count;
        exit = cpu.run(&mut mem, Some(left));
        left = left.saturating_sub(cpu.insn_count - before);
        match exit {
            VmExit::Sys(_) => continue,
            _ => break,
        }
    }

    let observed_read = tracker.pages_read();
    let observed_written = tracker.pages_written();
    let fp = &analysis.footprint;
    let reads_ok = observed_read
        .iter()
        .all(|&p| fp.reads.contains(p) || fp.writes.contains(p));
    let writes_ok = observed_written.iter().all(|&p| fp.writes.contains(p));
    let write_slack = fp
        .writes
        .page_count()
        .map(|n| n - observed_written.len() as u64);

    GateOutcome {
        observed_read,
        observed_written,
        exit: format!("{exit:?}"),
        insns: cpu.insn_count,
        write_slack,
        sound: reads_ok && writes_ok,
        analysis,
    }
}

/// Renders one markdown table row for the gate report.
pub fn report_row(name: &str, g: &GateOutcome) -> String {
    let fp = &g.analysis.footprint;
    format!(
        "| {} | {} | {} | {} | {} | {} | {} |",
        name,
        fp.steps,
        fp.reads,
        fp.writes,
        PageSet::Ranges(vpn_ranges(&g.observed_read)),
        PageSet::Ranges(vpn_ranges(&g.observed_written)),
        if g.sound { "yes" } else { "**NO**" },
    )
}

fn vpn_ranges(sorted: &[u64]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &v in sorted {
        match out.last_mut() {
            Some((_, l)) if *l + 1 == v => *l = v,
            _ => out.push((v, v)),
        }
    }
    out
}
