//! `analyze` — the footprint-soundness gate and report generator.
//!
//! Runs the differential gate ([`det_analyze::gate`]) over every
//! program in the registered VM corpus, prints a markdown report
//! (nightly CI uploads it as `ANALYZE_<date>.md`), and exits nonzero
//! if any program's observed footprint escapes its predicted one — a
//! false negative, which the analysis must never produce.

use std::process::ExitCode;

use det_analyze::footprint::{AnalyzeConfig, classify};
use det_analyze::gate::{check_program, report_row};
use det_vm::corpus::PROGRAMS;

fn main() -> ExitCode {
    let cfg = AnalyzeConfig::default();
    println!("# det-analyze footprint report");
    println!();
    println!("Static footprints vs. observed page accesses for every");
    println!("registered VM corpus program. `sound` asserts the");
    println!("inclusions: observed writes ⊆ predicted writes and");
    println!("observed touches ⊆ predicted reads ∪ writes.");
    println!();
    println!("| program | steps | pred reads | pred writes | obs reads | obs writes | sound |");
    println!("|---|---|---|---|---|---|---|");

    let mut unsound = 0u32;
    let mut outcomes = Vec::new();
    for p in PROGRAMS {
        let g = check_program(p.src, p.budget, &cfg);
        println!("{}", report_row(p.name, &g));
        if !g.sound {
            unsound += 1;
        }
        outcomes.push((p.name, g));
    }

    println!();
    println!("## Sibling fork-set verdicts");
    println!();
    println!("Pairwise static classification: `conflict-free` pairs are");
    println!("guaranteed never to write/write-conflict at merge time,");
    println!("under any conflict policy.");
    println!();
    println!("| pair | verdict |");
    println!("|---|---|");
    for (i, (na, ga)) in outcomes.iter().enumerate() {
        for (nb, gb) in outcomes.iter().skip(i + 1) {
            let v = classify(&[&ga.analysis, &gb.analysis]);
            println!("| {na} × {nb} | {v} |");
        }
    }

    println!();
    if unsound == 0 {
        println!(
            "**Gate: sound** — zero false negatives across {} programs.",
            PROGRAMS.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("**Gate: UNSOUND** — {unsound} program(s) escaped their predicted footprint.");
        eprintln!("analyze: {unsound} unsound footprint(s)");
        ExitCode::FAILURE
    }
}
