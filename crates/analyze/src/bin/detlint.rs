//! `detlint` — workspace determinism lint CLI.
//!
//! Usage: `detlint [--root <dir>]`
//!
//! Scans production sources under `<dir>` (default: the current
//! directory) with the rules in `det_analyze::lint`, honoring the
//! `detlint.allow` allowlist at the root. Prints one line per finding
//! and exits nonzero if any remain — `-D warnings` strictness, there
//! is no warn-only mode.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("detlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: detlint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match det_analyze::lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("detlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
