//! det-analyze: sound static footprint/conflict analysis for the
//! det-vm ISA, plus `detlint`, the workspace determinism lint.
//!
//! Determinator answers "did these children conflict?" *dynamically*:
//! the merge compares bytes at Ret time and any race becomes a
//! deterministic conflict exception (DESIGN.md §4). This crate adds
//! the *static* half of that story:
//!
//! * [`footprint::analyze`] runs an abstract interpreter (interval +
//!   stride domain, [`domain::Val`]) over a VM program and returns a
//!   **sound over-approximation** of the pages it can read and write.
//!   Soundness is the load-bearing property — the predicted write set
//!   must contain every page the program can dirty under any schedule
//!   — and is enforced differentially in CI against every registered
//!   VM scenario and a 200-case random-program proptest.
//! * [`footprint::classify`] turns sibling footprints into a verdict:
//!   pairwise-disjoint bounded write sets can never merge-conflict
//!   (under any [`det_memory::ConflictPolicy`]), so the kernel can
//!   label a fork set *conflict-free* before running it, and the
//!   cluster can use [`footprint::Footprint::touch_regions`] as a
//!   leaf-pull prefetch hint (DESIGN.md §10/§11) without risking a
//!   miss.
//! * [`lint`] is the determinism lint: token-level rules that keep
//!   host clocks, randomized-iteration collections, and impurity out
//!   of the deterministic substrate, workspace-wide.
//!
//! The two binaries (`analyze`, `detlint`) are thin CLI wrappers used
//! by CI: `analyze` is the footprint-soundness gate and nightly report
//! generator, `detlint` exits nonzero on any un-allowlisted finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod footprint;
pub mod gate;
pub mod lint;

pub use domain::Val;
pub use footprint::{
    Analysis, AnalyzeConfig, Footprint, MustWrite, PageSet, Segment, Verdict, analyze,
    analyze_with_regs, classify, classify_with_base,
};
