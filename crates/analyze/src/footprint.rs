//! Sound footprint analysis over det-vm programs.
//!
//! An abstract interpreter runs the predecoded ISA over the
//! interval/stride domain ([`crate::domain::Val`]): a worklist
//! fixpoint with per-pc states, branch-edge refinement, threshold
//! widening, and two narrowing sweeps (the corpus kernels guard loops
//! at the loop *bottom*, so the refined backedge can only pull a
//! widened head back down during narrowing). The result is a
//! [`Footprint`]: page sets that **over-approximate every page the
//! program can read (fetches included) or write**, however it is
//! scheduled or preempted.
//!
//! The soundness contract (validated differentially by the gate binary
//! and the 200-case proptest in `tests/`):
//!
//! * every access's address interval covers the concrete address, so
//!   predicted reads ⊇ observed touched pages and predicted writes ⊇
//!   observed dirty pages;
//! * `sys` havocs the whole register file (the kernel may rewrite any
//!   register across a syscall);
//! * an unknown indirect-jump target, a pc escaping the supplied
//!   image (unless [`AnalyzeConfig::escape_is_trap`]), a possible
//!   store into an executed code page (self-modifying code), or
//!   exceeding [`AnalyzeConfig::max_steps`] all degrade to
//!   [`PageSet::Unbounded`] — never to a false negative;
//! * traps terminate a path; accesses attempted before the trap are
//!   already covered because the faulting address lies inside the
//!   predicted interval.
//!
//! Conflict classification ([`classify`]) is the static face of the
//! paper's merge-time determinism: sibling fork sets whose write
//! footprints are bounded and pairwise page-disjoint can never
//! write/write-conflict at merge time under *any*
//! [`det_memory::ConflictPolicy`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use det_memory::{PAGE_SHIFT, Region};
use det_vm::{Insn, Opcode, decode};

use crate::domain::Val;

/// A mapped, executable byte range of the analyzed image.
#[derive(Clone, Copy, Debug)]
pub struct Segment<'a> {
    /// Virtual address of the first byte.
    pub base: u64,
    /// The bytes (code and data alike; zeroes decode as `nop`).
    pub bytes: &'a [u8],
}

/// Analysis tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeConfig {
    /// Transfer applications before the analysis gives up and reports
    /// [`PageSet::Unbounded`] (still sound, never wrong).
    pub max_steps: u64,
    /// Joins observed at a pc before widening kicks in.
    pub widen_after: u32,
    /// Narrowing sweeps after the widened fixpoint converges.
    pub narrow_sweeps: u32,
    /// When true, a pc outside every segment terminates the path (the
    /// caller passed *every* executable mapping, so the concrete
    /// machine would trap there). When false — the conservative
    /// default — an escaping pc makes the result unbounded.
    pub escape_is_trap: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig {
            max_steps: 400_000,
            widen_after: 8,
            narrow_sweeps: 2,
            escape_is_trap: false,
        }
    }
}

/// A sorted, coalesced set of virtual page numbers, or ⊤.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PageSet {
    /// The analysis could not bound the set: every page is possible.
    Unbounded,
    /// Disjoint, sorted, inclusive `[first, last]` vpn ranges.
    Ranges(Vec<(u64, u64)>),
}

impl PageSet {
    /// The empty set.
    pub fn empty() -> PageSet {
        PageSet::Ranges(Vec::new())
    }

    /// Is this ⊤?
    pub fn is_unbounded(&self) -> bool {
        matches!(self, PageSet::Unbounded)
    }

    /// Number of pages, if bounded.
    pub fn page_count(&self) -> Option<u64> {
        match self {
            PageSet::Unbounded => None,
            PageSet::Ranges(rs) => Some(rs.iter().map(|(a, b)| b - a + 1).sum()),
        }
    }

    /// Does the set contain `vpn`?
    pub fn contains(&self, vpn: u64) -> bool {
        match self {
            PageSet::Unbounded => true,
            PageSet::Ranges(rs) => rs.iter().any(|&(a, b)| (a..=b).contains(&vpn)),
        }
    }

    /// Inserts the inclusive vpn range, keeping the representation
    /// sorted and coalesced.
    pub fn insert_range(&mut self, first: u64, last: u64) {
        let PageSet::Ranges(rs) = self else {
            return;
        };
        debug_assert!(first <= last);
        let mut merged = Vec::with_capacity(rs.len() + 1);
        let (mut f, mut l) = (first, last);
        let mut placed = false;
        for &(a, b) in rs.iter() {
            if b.saturating_add(1) < f {
                merged.push((a, b));
            } else if a > l.saturating_add(1) {
                if !placed {
                    merged.push((f, l));
                    placed = true;
                }
                merged.push((a, b));
            } else {
                f = f.min(a);
                l = l.max(b);
            }
        }
        if !placed {
            merged.push((f, l));
        }
        merged.sort_unstable();
        *rs = merged;
    }

    /// Degrades the set to ⊤.
    pub fn make_unbounded(&mut self) {
        *self = PageSet::Unbounded;
    }

    /// Do two sets share any page?
    pub fn intersects(&self, other: &PageSet) -> bool {
        match (self, other) {
            (PageSet::Unbounded, _) | (_, PageSet::Unbounded) => true,
            (PageSet::Ranges(a), PageSet::Ranges(b)) => {
                let mut i = 0;
                let mut j = 0;
                while i < a.len() && j < b.len() {
                    let (af, al) = a[i];
                    let (bf, bl) = b[j];
                    if al < bf {
                        i += 1;
                    } else if bl < af {
                        j += 1;
                    } else {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Converts to page-aligned byte [`Region`]s for the cluster's
    /// leaf-pull touch filter; `None` when unbounded (no hint).
    pub fn to_regions(&self) -> Option<Vec<Region>> {
        match self {
            PageSet::Unbounded => None,
            PageSet::Ranges(rs) => Some(
                rs.iter()
                    .map(|&(a, b)| {
                        let start = a << PAGE_SHIFT;
                        let end = b
                            .saturating_add(1)
                            .checked_shl(PAGE_SHIFT)
                            .unwrap_or(u64::MAX);
                        Region::new(start, end)
                    })
                    .collect(),
            ),
        }
    }
}

impl std::fmt::Display for PageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSet::Unbounded => write!(f, "unbounded"),
            PageSet::Ranges(rs) => {
                if rs.is_empty() {
                    return write!(f, "∅");
                }
                for (i, (a, b)) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    if a == b {
                        write!(f, "{a:#x}")?;
                    } else {
                        write!(f, "{a:#x}-{b:#x}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// The analysis result: sound page over-approximations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// Pages the program may read (instruction fetches included).
    pub reads: PageSet,
    /// Pages the program may write.
    pub writes: PageSet,
    /// Transfer applications performed — the deterministic work
    /// measure the kernel charges (`analyze_step_ps`).
    pub steps: u64,
}

impl Footprint {
    /// The write footprint as touch regions for prefetch hints; `None`
    /// when the footprint is unbounded (pull everything).
    pub fn touch_regions(&self) -> Option<Vec<Region>> {
        let mut all = PageSet::empty();
        match (&self.reads, &self.writes) {
            (PageSet::Ranges(rs), PageSet::Ranges(ws)) => {
                for &(a, b) in rs.iter().chain(ws.iter()) {
                    all.insert_range(a, b);
                }
                all.to_regions()
            }
            _ => None,
        }
    }
}

/// A byte range the program writes on every run (with the values it
/// writes), discovered by a bounded concrete walk of the entry path.
/// Assumes the target window is mapped — a trap would cut the prefix
/// short — so these feed the *advisory* definite-conflict verdict,
/// never the soundness-gated one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MustWrite {
    /// First byte address.
    pub addr: u64,
    /// The exact bytes written (little-endian store image).
    pub bytes: Vec<u8>,
}

/// Full analysis output for one program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Analysis {
    /// Sound may-footprints.
    pub footprint: Footprint,
    /// Definite writes on the entry path (advisory).
    pub must_writes: Vec<MustWrite>,
}

/// Static verdict for a sibling fork set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Write footprints are bounded and pairwise page-disjoint: the
    /// siblings can never write/write-conflict at merge time, under
    /// any [`det_memory::ConflictPolicy`]. This is the verdict the
    /// soundness tests gate.
    ConflictFree,
    /// Two siblings definitely write the same byte with values that
    /// both differ from the snapshot: merging them conflicts under
    /// [`det_memory::ConflictPolicy::Strict`] (and, when the values
    /// also differ from each other, under `BenignSameValue`).
    DefiniteConflict,
    /// Overlap cannot be ruled out (or in): run it and let the
    /// deterministic merge decide — the paper's dynamic answer.
    PossibleConflict,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::ConflictFree => "conflict-free",
            Verdict::DefiniteConflict => "definite-conflict",
            Verdict::PossibleConflict => "possible-conflict",
        })
    }
}

/// Classifies a sibling fork set from may-footprints alone:
/// [`Verdict::ConflictFree`] when every pair of write footprints is
/// bounded and disjoint, [`Verdict::PossibleConflict`] otherwise. Use
/// [`classify_with_base`] to also detect definite conflicts.
pub fn classify(siblings: &[&Analysis]) -> Verdict {
    for (i, a) in siblings.iter().enumerate() {
        for b in siblings.iter().skip(i + 1) {
            if a.footprint.writes.intersects(&b.footprint.writes) {
                return Verdict::PossibleConflict;
            }
        }
    }
    Verdict::ConflictFree
}

/// Like [`classify`], with the snapshot's byte contents available:
/// upgrades to [`Verdict::DefiniteConflict`] when two siblings
/// must-write the same byte and both written values differ from the
/// snapshot byte (the paper's strict write/write conflict).
pub fn classify_with_base(siblings: &[&Analysis], base_byte: &dyn Fn(u64) -> u8) -> Verdict {
    match classify(siblings) {
        Verdict::ConflictFree => Verdict::ConflictFree,
        _ => {
            for (i, a) in siblings.iter().enumerate() {
                for b in siblings.iter().skip(i + 1) {
                    if definite_pair_conflict(a, b, base_byte) {
                        return Verdict::DefiniteConflict;
                    }
                }
            }
            Verdict::PossibleConflict
        }
    }
}

fn definite_pair_conflict(a: &Analysis, b: &Analysis, base_byte: &dyn Fn(u64) -> u8) -> bool {
    let bytes_of = |an: &Analysis| -> BTreeMap<u64, u8> {
        let mut m = BTreeMap::new();
        for w in &an.must_writes {
            for (k, &v) in w.bytes.iter().enumerate() {
                m.insert(w.addr + k as u64, v);
            }
        }
        m
    };
    let ma = bytes_of(a);
    let mb = bytes_of(b);
    for (addr, va) in &ma {
        if let Some(vb) = mb.get(addr) {
            let base = base_byte(*addr);
            if *va != base && *vb != base {
                return true;
            }
        }
    }
    false
}

// --- The abstract interpreter ---

type AbsState = [Val; 16];

fn covers(a: &AbsState, b: &AbsState) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| val_covers(x, y))
}

fn val_covers(a: &Val, b: &Val) -> bool {
    if b.lo < a.lo || b.hi > a.hi {
        return false;
    }
    if a.stride <= 1 {
        return true;
    }
    let aligned = |v: i64| -> bool { ((v as i128 - a.lo as i128) as u128).is_multiple_of(a.stride as u128) };
    if !aligned(b.lo) || !aligned(b.hi) {
        return false;
    }
    b.lo == b.hi || (b.stride > 0 && (b.stride as u128).is_multiple_of(a.stride as u128))
}

fn join_states(a: &AbsState, b: &AbsState) -> AbsState {
    std::array::from_fn(|i| a[i].join(&b[i]))
}

struct Engine<'a> {
    segs: &'a [Segment<'a>],
    cfg: AnalyzeConfig,
    steps: u64,
    escaped: bool,
}

/// One instruction's abstract outcome.
struct StepOut {
    edges: Vec<(u64, AbsState)>,
    reads: Vec<(Val, u32)>,
    writes: Vec<(Val, u32)>,
}

impl<'a> Engine<'a> {
    fn fetch(&self, pc: u64) -> Option<Result<Insn, ()>> {
        if !pc.is_multiple_of(4) {
            return Some(Err(()));
        }
        for s in self.segs {
            if pc >= s.base && pc.saturating_add(4) <= s.base.saturating_add(s.bytes.len() as u64) {
                let off = (pc - s.base) as usize;
                let word = u32::from_le_bytes(s.bytes[off..off + 4].try_into().unwrap());
                return Some(decode(word).map_err(|_| ()));
            }
        }
        None
    }

    /// Applies one instruction to `st`, producing successor edges and
    /// the memory accesses this pc can perform.
    fn step(&mut self, pc: u64, st: &AbsState, out: &mut StepOut) {
        use Opcode::*;
        out.edges.clear();
        out.reads.clear();
        out.writes.clear();
        self.steps += 1;

        let insn = match self.fetch(pc) {
            None => {
                if !self.cfg.escape_is_trap {
                    self.escaped = true;
                }
                return;
            }
            Some(Err(())) => return, // trap: path ends
            Some(Ok(i)) => i,
        };
        let next_pc = pc + 4;
        let (rd, rs, rt) = (
            (insn.rd & 15) as usize,
            (insn.rs & 15) as usize,
            (insn.rt & 15) as usize,
        );
        let imm = insn.imm as i64;
        let branch_target = (next_pc as i64).wrapping_add(imm * 4) as u64;
        let mut n = *st;

        let fall = |n: AbsState, out: &mut StepOut| out.edges.push((next_pc, n));
        match insn.op {
            Nop => fall(n, out),
            Halt => {}
            Sys => {
                // The kernel may rewrite every register across a
                // syscall (Get copies, trap handling): havoc the file.
                fall([Val::top(); 16], out);
            }

            Add => {
                n[rd] = st[rs].add(&st[rt]);
                fall(n, out);
            }
            Sub => {
                n[rd] = st[rs].sub(&st[rt]);
                fall(n, out);
            }
            Mul => {
                n[rd] = st[rs].mul(&st[rt]);
                fall(n, out);
            }
            Div | Mod | Divu | Modu => {
                // A zero divisor traps (ending the path); the non-trap
                // continuation is soundly ⊤.
                n[rd] = Val::top();
                fall(n, out);
            }
            And => {
                n[rd] = st[rs].and(&st[rt]);
                fall(n, out);
            }
            Or => {
                n[rd] = st[rs].or(&st[rt]);
                fall(n, out);
            }
            Xor => {
                n[rd] = st[rs].xor(&st[rt]);
                fall(n, out);
            }
            Shl => {
                n[rd] = st[rs].shl(&st[rt]);
                fall(n, out);
            }
            Shr => {
                n[rd] = st[rs].shr(&st[rt]);
                fall(n, out);
            }
            Sar => {
                n[rd] = st[rs].sar(&st[rt]);
                fall(n, out);
            }
            Slt => {
                n[rd] = st[rs].lt_signed(&st[rt]);
                fall(n, out);
            }
            Sltu => {
                n[rd] = st[rs].lt_unsigned(&st[rt]);
                fall(n, out);
            }

            Addi => {
                n[rd] = st[rs].add(&Val::exact(imm));
                fall(n, out);
            }
            Andi => {
                n[rd] = st[rs].and_mask(imm);
                fall(n, out);
            }
            Ori => {
                n[rd] = st[rs].or(&Val::exact(imm));
                fall(n, out);
            }
            Xori => {
                n[rd] = st[rs].xor(&Val::exact(imm));
                fall(n, out);
            }
            Shli => {
                n[rd] = st[rs].shl_imm(imm as u32 & 63);
                fall(n, out);
            }
            Shri => {
                n[rd] = st[rs].shr_imm(imm as u32 & 63);
                fall(n, out);
            }
            Sari => {
                n[rd] = st[rs].sar_imm(imm as u32 & 63);
                fall(n, out);
            }
            Slti => {
                n[rd] = st[rs].lt_signed(&Val::exact(imm));
                fall(n, out);
            }
            Muli => {
                n[rd] = st[rs].scale(imm);
                fall(n, out);
            }
            Ldi => {
                n[rd] = Val::exact(imm);
                fall(n, out);
            }
            Ldih => {
                // (rd << 12) | imm12: affine when no bits shift out.
                let shifted = st[rd].shl_imm(12);
                n[rd] = if shifted.is_top() {
                    Val::top()
                } else {
                    shifted.add(&Val::exact(imm & 0xfff))
                };
                fall(n, out);
            }

            Ldb | Ldh | Ldw | Ldd => {
                let addr = st[rs].add(&Val::exact(imm));
                let size = match insn.op {
                    Ldb => 1,
                    Ldh => 2,
                    Ldw => 4,
                    _ => 8,
                };
                out.reads.push((addr, size));
                n[rd] = match insn.op {
                    Ldb => Val::range(0, 0xff),
                    Ldh => Val::range(0, 0xffff),
                    Ldw => Val::range(0, 0xffff_ffff),
                    _ => Val::top(),
                };
                fall(n, out);
            }
            Stb | Sth | Stw | Std => {
                let addr = st[rs].add(&Val::exact(imm));
                let size = match insn.op {
                    Stb => 1,
                    Sth => 2,
                    Stw => 4,
                    _ => 8,
                };
                out.writes.push((addr, size));
                fall(n, out);
            }

            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (st[rs], st[rt]);
                let (taken, fallthrough) = match insn.op {
                    Beq => (a.refine_eq(&b), a.refine_ne(&b)),
                    Bne => (a.refine_ne(&b), a.refine_eq(&b)),
                    Blt => (a.refine_lt_signed(&b), a.refine_ge_signed(&b)),
                    Bge => (a.refine_ge_signed(&b), a.refine_lt_signed(&b)),
                    Bltu => (a.refine_lt_unsigned(&b), a.refine_ge_unsigned(&b)),
                    _ => (a.refine_ge_unsigned(&b), a.refine_lt_unsigned(&b)),
                };
                // Refine the right operand symmetrically where cheap.
                let rt_taken = match insn.op {
                    Beq => b.refine_eq(&a),
                    Blt => b.refine_ge_signed(&a).and_then(|v| v.refine_ne(&a)),
                    _ => Some(b),
                };
                if let Some(ra) = taken {
                    let mut t = *st;
                    t[rs] = ra;
                    if rt != rs {
                        if let Some(rb) = rt_taken {
                            t[rt] = rb;
                        }
                    }
                    out.edges.push((branch_target, t));
                }
                if let Some(ra) = fallthrough {
                    let mut t = *st;
                    t[rs] = ra;
                    out.edges.push((next_pc, t));
                }
            }
            Jal => {
                n[rd] = Val::exact_u64(next_pc);
                out.edges.push((branch_target, n));
            }
            Jalr => {
                let target = st[rs].add(&Val::exact(imm));
                n[rd] = Val::exact_u64(next_pc);
                match target.as_exact() {
                    Some(t) => out.edges.push((t as u64, n)),
                    None => self.escaped = true,
                }
            }

            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Cvtif | Cvtfi => {
                n[rd] = Val::top();
                fall(n, out);
            }
            Flt | Feq | Fle => {
                n[rd] = Val::range(0, 1);
                fall(n, out);
            }
        }
    }
}

/// Analyzes a program image, starting from `entry` with all registers
/// zero (how the kernel starts a VM space).
pub fn analyze(segments: &[Segment<'_>], entry: u64, cfg: &AnalyzeConfig) -> Analysis {
    analyze_with_regs(segments, entry, &[Val::exact(0); 16], cfg)
}

/// Analyzes with explicit initial register abstractions.
pub fn analyze_with_regs(
    segments: &[Segment<'_>],
    entry: u64,
    init: &[Val; 16],
    cfg: &AnalyzeConfig,
) -> Analysis {
    let mut eng = Engine {
        segs: segments,
        cfg: *cfg,
        steps: 0,
        escaped: false,
    };

    // Widened fixpoint over per-pc states; contributions are keyed by
    // source pc so narrowing can recompute exact joins later.
    let mut state: BTreeMap<u64, AbsState> = BTreeMap::new();
    let mut contribs: BTreeMap<u64, BTreeMap<u64, AbsState>> = BTreeMap::new();
    let mut joins: BTreeMap<u64, u32> = BTreeMap::new();
    let mut work: VecDeque<u64> = VecDeque::new();
    let mut queued: BTreeSet<u64> = BTreeSet::new();
    let mut out = StepOut {
        edges: Vec::new(),
        reads: Vec::new(),
        writes: Vec::new(),
    };

    state.insert(entry, *init);
    work.push_back(entry);
    queued.insert(entry);
    let mut gave_up = false;

    while let Some(pc) = work.pop_front() {
        queued.remove(&pc);
        if eng.steps >= cfg.max_steps {
            gave_up = true;
            break;
        }
        let st = state[&pc];
        eng.step(pc, &st, &mut out);
        // Merge parallel edges to the same target (e.g. a zero-offset
        // branch) before recording the contribution.
        let mut merged: BTreeMap<u64, AbsState> = BTreeMap::new();
        for (succ, s) in out.edges.drain(..) {
            merged
                .entry(succ)
                .and_modify(|e| *e = join_states(e, &s))
                .or_insert(s);
        }
        for (succ, s) in merged {
            contribs.entry(succ).or_default().insert(pc, s);
            let mut acc: Option<AbsState> = (succ == entry).then_some(*init);
            for c in contribs[&succ].values() {
                acc = Some(match acc {
                    Some(a) => join_states(&a, c),
                    None => *c,
                });
            }
            let joined = acc.expect("contribution just inserted");
            match state.get(&succ) {
                Some(cur) if covers(cur, &joined) => {}
                Some(cur) => {
                    let grown = join_states(cur, &joined);
                    let cnt = joins.entry(succ).or_insert(0);
                    *cnt += 1;
                    let new = if *cnt > cfg.widen_after {
                        std::array::from_fn(|i| cur[i].widen(&grown[i]))
                    } else {
                        grown
                    };
                    state.insert(succ, new);
                    if queued.insert(succ) {
                        work.push_back(succ);
                    }
                }
                None => {
                    state.insert(succ, joined);
                    if queued.insert(succ) {
                        work.push_back(succ);
                    }
                }
            }
        }
    }

    // Narrowing: recompute transfers from the converged states and
    // replace each state with the plain join of its in-flows (plus the
    // entry seed). Each sweep applies the sound transfer once more, so
    // every iterate stays an over-approximation.
    if !gave_up {
        for _ in 0..cfg.narrow_sweeps {
            let pcs: Vec<u64> = state.keys().copied().collect();
            // In-order chaotic iteration: refresh each pc's state from
            // its in-flows, then immediately re-emit its out-edges, so
            // a narrowed loop head propagates through the whole
            // forward chain within one sweep (backedges catch up on
            // the next). Every state stays a join of sound transfer
            // outputs, so each iterate remains an over-approximation.
            for &pc in &pcs {
                let mut acc: Option<AbsState> = (pc == entry).then_some(*init);
                if let Some(ins) = contribs.get(&pc) {
                    for c in ins.values() {
                        acc = Some(match acc {
                            Some(a) => join_states(&a, c),
                            None => *c,
                        });
                    }
                }
                let st = match acc {
                    Some(a) => {
                        state.insert(pc, a);
                        a
                    }
                    None => state[&pc],
                };
                eng.step(pc, &st, &mut out);
                let mut merged: BTreeMap<u64, AbsState> = BTreeMap::new();
                for (succ, s) in out.edges.drain(..) {
                    merged
                        .entry(succ)
                        .and_modify(|e| *e = join_states(e, &s))
                        .or_insert(s);
                }
                for (succ, s) in merged {
                    contribs.entry(succ).or_default().insert(pc, s);
                }
            }
        }
    }

    // Final pass: accumulate accesses and fetched pages from the
    // converged states.
    let mut reads = PageSet::empty();
    let mut writes = PageSet::empty();
    let mut code_pages = PageSet::empty();
    let pcs: Vec<u64> = state.keys().copied().collect();
    for &pc in &pcs {
        code_pages.insert_range(pc >> PAGE_SHIFT, pc >> PAGE_SHIFT);
        reads.insert_range(pc >> PAGE_SHIFT, pc >> PAGE_SHIFT);
        let st = state[&pc];
        eng.step(pc, &st, &mut out);
        for (set, accesses) in [(&mut reads, &out.reads), (&mut writes, &out.writes)] {
            for (addr, size) in accesses.iter() {
                if addr.is_top() {
                    set.make_unbounded();
                    continue;
                }
                for (lo, hi) in addr.u64_spans() {
                    let last = hi.saturating_add(*size as u64 - 1);
                    set.insert_range(lo >> PAGE_SHIFT, last >> PAGE_SHIFT);
                }
            }
        }
    }

    if gave_up || eng.escaped {
        reads.make_unbounded();
        writes.make_unbounded();
    }
    // Possible self-modifying code: a write into an executed page
    // invalidates the decoded CFG — degrade rather than guess.
    if writes.intersects(&code_pages) && !writes.is_unbounded() {
        reads.make_unbounded();
        writes.make_unbounded();
    }

    let must_writes = must_write_prefix(segments, entry);
    Analysis {
        footprint: Footprint {
            reads,
            writes,
            steps: eng.steps,
        },
        must_writes,
    }
}

/// Bounded concrete walk of the entry path: registers start at zero,
/// loads produce unknowns, and the walk stops at the first unknown
/// branch condition, unknown address, `sys`, or 1024 steps. Every
/// store executed before the stop with known address and value is a
/// definite write (assuming the window is mapped — see [`MustWrite`]).
fn must_write_prefix(segments: &[Segment<'_>], entry: u64) -> Vec<MustWrite> {
    let fetch = |pc: u64| -> Option<Insn> {
        if !pc.is_multiple_of(4) {
            return None;
        }
        for s in segments {
            if pc >= s.base && pc.saturating_add(4) <= s.base.saturating_add(s.bytes.len() as u64) {
                let off = (pc - s.base) as usize;
                let word = u32::from_le_bytes(s.bytes[off..off + 4].try_into().unwrap());
                return decode(word).ok();
            }
        }
        None
    };

    use Opcode::*;
    let mut g: [Option<u64>; 16] = [Some(0); 16];
    let mut pc = entry;
    let mut writes: BTreeMap<u64, u8> = BTreeMap::new();
    for _ in 0..1024 {
        let Some(i) = fetch(pc) else { break };
        let next_pc = pc + 4;
        let (rd, rs, rt) = (
            (i.rd & 15) as usize,
            (i.rs & 15) as usize,
            (i.rt & 15) as usize,
        );
        let imm = i.imm as i64;
        let bin = |a: Option<u64>, b: Option<u64>, f: fn(u64, u64) -> u64| -> Option<u64> {
            Some(f(a?, b?))
        };
        match i.op {
            Nop => pc = next_pc,
            Halt | Sys => break,
            Add => {
                g[rd] = bin(g[rs], g[rt], u64::wrapping_add);
                pc = next_pc;
            }
            Sub => {
                g[rd] = bin(g[rs], g[rt], u64::wrapping_sub);
                pc = next_pc;
            }
            Mul => {
                g[rd] = bin(g[rs], g[rt], u64::wrapping_mul);
                pc = next_pc;
            }
            Div | Mod | Divu | Modu => match (g[rs], g[rt]) {
                (Some(a), Some(b)) if b != 0 => {
                    g[rd] = Some(match i.op {
                        Div => (a as i64).wrapping_div(b as i64) as u64,
                        Mod => (a as i64).wrapping_rem(b as i64) as u64,
                        Divu => a / b,
                        _ => a % b,
                    });
                    pc = next_pc;
                }
                _ => break, // may trap or unknown: stop the prefix
            },
            And => {
                g[rd] = bin(g[rs], g[rt], |a, b| a & b);
                pc = next_pc;
            }
            Or => {
                g[rd] = bin(g[rs], g[rt], |a, b| a | b);
                pc = next_pc;
            }
            Xor => {
                g[rd] = bin(g[rs], g[rt], |a, b| a ^ b);
                pc = next_pc;
            }
            Shl => {
                g[rd] = bin(g[rs], g[rt], |a, b| a.wrapping_shl(b as u32));
                pc = next_pc;
            }
            Shr => {
                g[rd] = bin(g[rs], g[rt], |a, b| a.wrapping_shr(b as u32));
                pc = next_pc;
            }
            Sar => {
                g[rd] = bin(g[rs], g[rt], |a, b| {
                    (a as i64).wrapping_shr(b as u32) as u64
                });
                pc = next_pc;
            }
            Slt => {
                g[rd] = bin(g[rs], g[rt], |a, b| ((a as i64) < (b as i64)) as u64);
                pc = next_pc;
            }
            Sltu => {
                g[rd] = bin(g[rs], g[rt], |a, b| (a < b) as u64);
                pc = next_pc;
            }
            Addi => {
                g[rd] = g[rs].map(|a| a.wrapping_add(imm as u64));
                pc = next_pc;
            }
            Andi => {
                g[rd] = g[rs].map(|a| a & imm as u64);
                pc = next_pc;
            }
            Ori => {
                g[rd] = g[rs].map(|a| a | imm as u64);
                pc = next_pc;
            }
            Xori => {
                g[rd] = g[rs].map(|a| a ^ imm as u64);
                pc = next_pc;
            }
            Shli => {
                g[rd] = g[rs].map(|a| a.wrapping_shl(imm as u32 & 63));
                pc = next_pc;
            }
            Shri => {
                g[rd] = g[rs].map(|a| a.wrapping_shr(imm as u32 & 63));
                pc = next_pc;
            }
            Sari => {
                g[rd] = g[rs].map(|a| (a as i64).wrapping_shr(imm as u32 & 63) as u64);
                pc = next_pc;
            }
            Slti => {
                g[rd] = g[rs].map(|a| ((a as i64) < imm) as u64);
                pc = next_pc;
            }
            Muli => {
                g[rd] = g[rs].map(|a| a.wrapping_mul(imm as u64));
                pc = next_pc;
            }
            Ldi => {
                g[rd] = Some(imm as u64);
                pc = next_pc;
            }
            Ldih => {
                g[rd] = g[rd].map(|a| (a << 12) | (i.imm as u64 & 0xfff));
                pc = next_pc;
            }
            Ldb | Ldh | Ldw | Ldd => {
                // Memory contents are unknown to the static prefix.
                g[rd] = None;
                pc = next_pc;
            }
            Stb | Sth | Stw | Std => {
                let (Some(base), Some(v)) = (g[rs], g[rd]) else {
                    break;
                };
                let a = base.wrapping_add(imm as u64);
                let bytes: &[u8] = match i.op {
                    Stb => &v.to_le_bytes()[..1],
                    Sth => &v.to_le_bytes()[..2],
                    Stw => &v.to_le_bytes()[..4],
                    _ => &v.to_le_bytes()[..8],
                };
                for (k, &bv) in bytes.iter().enumerate() {
                    writes.insert(a.wrapping_add(k as u64), bv);
                }
                pc = next_pc;
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (Some(a), Some(b)) = (g[rs], g[rt]) else {
                    break;
                };
                let taken = match i.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    _ => a >= b,
                };
                pc = if taken {
                    (next_pc as i64).wrapping_add(imm * 4) as u64
                } else {
                    next_pc
                };
            }
            Jal => {
                g[rd] = Some(next_pc);
                pc = (next_pc as i64).wrapping_add(imm * 4) as u64;
            }
            Jalr => {
                let Some(base) = g[rs] else { break };
                g[rd] = Some(next_pc);
                pc = base.wrapping_add(imm as u64);
            }
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Cvtif | Cvtfi | Flt | Feq | Fle => {
                // Float semantics are deterministic but not modeled
                // here; the result is unknown.
                g[rd] = None;
                pc = next_pc;
            }
        }
    }

    // Coalesce the byte map into contiguous runs.
    let mut runs: Vec<MustWrite> = Vec::new();
    for (addr, v) in writes {
        match runs.last_mut() {
            Some(r) if r.addr + r.bytes.len() as u64 == addr => r.bytes.push(v),
            _ => runs.push(MustWrite {
                addr,
                bytes: vec![v],
            }),
        }
    }
    runs
}
