//! The interval/stride abstract domain over 64-bit registers.
//!
//! A [`Val`] describes a set of concrete register values as a signed
//! interval with a stride: `{ lo, lo + s, lo + 2s, …, hi }`. The
//! *signed* view (`i64` bit patterns) is the one loop induction
//! variables live in — quicksort's `i = lo - 1 = -1` is representable
//! where an unsigned interval would blow straight to ⊤ — while
//! addresses re-enter the unsigned world only at the final
//! page-footprint conversion ([`Val::u64_spans`]).
//!
//! Soundness contract: every transfer function returns a superset of
//! the concrete results under the interpreter's *wrapping* semantics
//! (crates/vm/src/interp.rs). Bounds are computed in `i128`; anything
//! that cannot be proven to stay inside `i64` without wrapping
//! returns [`Val::top`]. Strides are best-effort precision — stride 1
//! (plain interval) is always a sound fallback.

/// Widening thresholds for upper bounds, ascending. The ladder stops
/// well short of `i64::MAX` so post-widening increments (`p += 8` on a
/// widened pointer) still have headroom and keep their stride instead
/// of collapsing to ⊤; the narrowing sweeps then pull the bound back
/// down to the loop guard.
const HI_STEPS: [i64; 9] = [
    0,
    1,
    0xfff,
    0xffff,
    (1 << 20) - 1,
    (1 << 32) - 1,
    (1 << 48) - 1,
    1 << 60,
    i64::MAX,
];

/// Widening thresholds for lower bounds, descending.
const LO_STEPS: [i64; 7] = [0, -1, -0x1000, -0x10000, -(1 << 32), -(1 << 60), i64::MIN];

/// An abstract register value: the set
/// `{ lo + k·stride | 0 ≤ k ≤ (hi - lo)/stride }` of signed 64-bit
/// bit patterns.
///
/// Invariants: `lo ≤ hi`; `stride == 0` iff `lo == hi`; otherwise
/// `stride ≥ 1` and `(hi - lo) % stride == 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Val {
    /// Smallest member (signed view).
    pub lo: i64,
    /// Largest member (signed view).
    pub hi: i64,
    /// Distance between members; 0 for a singleton.
    pub stride: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Val {
    /// The singleton `{ v }`.
    pub fn exact(v: i64) -> Val {
        Val {
            lo: v,
            hi: v,
            stride: 0,
        }
    }

    /// The singleton for a u64 bit pattern.
    pub fn exact_u64(v: u64) -> Val {
        Val::exact(v as i64)
    }

    /// Every 64-bit value: ⊤.
    pub fn top() -> Val {
        Val {
            lo: i64::MIN,
            hi: i64::MAX,
            stride: 1,
        }
    }

    /// The dense interval `[lo, hi]` (callers must ensure `lo ≤ hi`).
    pub fn range(lo: i64, hi: i64) -> Val {
        debug_assert!(lo <= hi);
        Val {
            lo,
            hi,
            stride: if lo == hi { 0 } else { 1 },
        }
    }

    /// `[lo, hi]` with a claimed stride; falls back to stride 1 when
    /// the claim does not divide the span (always sound).
    pub fn strided(lo: i64, hi: i64, stride: u64) -> Val {
        debug_assert!(lo <= hi);
        if lo == hi {
            return Val::exact(lo);
        }
        let span = (hi as i128 - lo as i128) as u128;
        let stride = if stride >= 1 && span.is_multiple_of(stride as u128) {
            stride
        } else {
            1
        };
        Val { lo, hi, stride }
    }

    /// Builds from `i128` bounds, returning ⊤ on `i64` overflow (the
    /// wrapping-semantics escape hatch every transfer function uses).
    fn fit(lo: i128, hi: i128, stride: u128) -> Val {
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            return Val::top();
        }
        let stride = u64::try_from(stride).unwrap_or(1);
        Val::strided(lo as i64, hi as i64, stride)
    }

    /// Is this the full ⊤ element?
    pub fn is_top(&self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// The single concrete value, if this is a singleton.
    pub fn as_exact(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Least upper bound: covers every value of both operands. The
    /// result stride divides both strides *and* the offset between the
    /// two lower bounds, so `join({5}, {8})` is `[5, 8] /3`.
    pub fn join(&self, other: &Val) -> Val {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        if lo == hi {
            return Val::exact(lo);
        }
        let off = (self.lo as i128 - other.lo as i128).unsigned_abs();
        let off = u64::try_from(off).unwrap_or(1);
        let s = gcd(gcd(self.stride, other.stride), off);
        Val::strided(lo, hi, s.max(1))
    }

    /// Widening: where `next` grew past `self`, jump the moved bound to
    /// the next threshold instead of creeping. Strides stay (they only
    /// shrink via gcd, which terminates on its own).
    pub fn widen(&self, next: &Val) -> Val {
        let mut lo = next.lo;
        let mut hi = next.hi;
        if next.hi > self.hi {
            hi = HI_STEPS
                .iter()
                .copied()
                .find(|&t| t >= next.hi)
                .unwrap_or(i64::MAX);
        }
        if next.lo < self.lo {
            lo = LO_STEPS
                .iter()
                .copied()
                .find(|&t| t <= next.lo)
                .unwrap_or(i64::MIN);
        }
        if next.stride > 1 && lo > i64::MIN && hi < i64::MAX {
            // Snap the thresholds onto next's lattice (outward bounds
            // only move inward, so next stays covered) to keep the
            // stride through widening.
            let s = next.stride as i128;
            let up = (lo as i128 - next.lo as i128).rem_euclid(s);
            let lo2 = lo as i128 + if up == 0 { 0 } else { s - up };
            let hi2 = hi as i128 - (hi as i128 - next.lo as i128).rem_euclid(s);
            if lo2 <= next.lo as i128 && hi2 >= next.hi as i128 {
                return Val::strided(lo2 as i64, hi2 as i64, next.stride);
            }
        }
        Val::strided(lo, hi, next.stride)
    }

    /// Does this abstraction cover the concrete bit pattern?
    pub fn contains(&self, v: u64) -> bool {
        let v = v as i64;
        if v < self.lo || v > self.hi {
            return false;
        }
        if self.stride <= 1 {
            return true;
        }
        ((v as i128 - self.lo as i128) as u128).is_multiple_of(self.stride as u128)
    }

    /// The concrete u64 spans this value covers, for footprint
    /// conversion: a signed interval maps to one unsigned span when it
    /// is sign-uniform, and splits at the sign boundary otherwise.
    pub fn u64_spans(&self) -> Vec<(u64, u64)> {
        if self.lo >= 0 || self.hi < 0 {
            vec![(self.lo as u64, self.hi as u64)]
        } else {
            vec![(0, self.hi as u64), (self.lo as u64, u64::MAX)]
        }
    }

    // --- Transfer functions (wrapping semantics, ⊤ on overflow) ---

    /// `wrapping_add`.
    pub fn add(&self, b: &Val) -> Val {
        Val::fit(
            self.lo as i128 + b.lo as i128,
            self.hi as i128 + b.hi as i128,
            gcd(self.stride, b.stride) as u128,
        )
    }

    /// `wrapping_sub`.
    pub fn sub(&self, b: &Val) -> Val {
        Val::fit(
            self.lo as i128 - b.hi as i128,
            self.hi as i128 - b.lo as i128,
            gcd(self.stride, b.stride) as u128,
        )
    }

    /// `wrapping_mul`.
    pub fn mul(&self, b: &Val) -> Val {
        if let Some(k) = self.as_exact() {
            return b.scale(k);
        }
        if let Some(k) = b.as_exact() {
            return self.scale(k);
        }
        let corners = [
            self.lo as i128 * b.lo as i128,
            self.lo as i128 * b.hi as i128,
            self.hi as i128 * b.lo as i128,
            self.hi as i128 * b.hi as i128,
        ];
        Val::fit(
            corners.iter().copied().min().unwrap(),
            corners.iter().copied().max().unwrap(),
            1,
        )
    }

    /// Multiplication by a known constant (affine scaling keeps the
    /// stride exact — the `li`/`ldih` chains depend on this).
    pub fn scale(&self, k: i64) -> Val {
        if k == 0 {
            return Val::exact(0);
        }
        let (a, b) = (self.lo as i128 * k as i128, self.hi as i128 * k as i128);
        let s = self.stride as u128 * k.unsigned_abs() as u128;
        Val::fit(a.min(b), a.max(b), s)
    }

    /// Bitwise AND.
    pub fn and(&self, b: &Val) -> Val {
        match (self.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Val::exact(x & y),
            (_, Some(m)) => self.and_mask(m),
            (Some(m), _) => b.and_mask(m),
            _ => {
                if self.lo >= 0 && b.lo >= 0 {
                    Val::range(0, self.hi.min(b.hi))
                } else {
                    Val::top()
                }
            }
        }
    }

    /// `x & m` for a known mask `m`. For a low-bits mask `2^k - 1`
    /// that already covers the operand this is the identity (the
    /// sandbox index-masking idiom: the mask proves the bound while
    /// preserving the stride).
    pub fn and_mask(&self, m: i64) -> Val {
        if let Some(x) = self.as_exact() {
            return Val::exact(x & m);
        }
        if m >= 0 {
            if (m as u64 + 1).is_power_of_two() && self.lo >= 0 && self.hi <= m {
                return *self;
            }
            return Val::range(0, m);
        }
        // Negative mask = clear low bits: a nonnegative operand stays
        // in [0, hi] and becomes a multiple of the mask's alignment.
        if self.lo >= 0 {
            let align = 1u64 << (m.trailing_zeros().min(62));
            return Val::strided(0, self.hi, align);
        }
        Val::top()
    }

    /// Bitwise OR.
    pub fn or(&self, b: &Val) -> Val {
        match (self.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Val::exact(x | y),
            (Some(0), _) => *b,
            (_, Some(0)) => *self,
            _ => {
                if self.lo >= 0 && b.lo >= 0 {
                    // x|y ≥ max(x, y) and x|y ≤ x + y for nonnegatives.
                    Val::fit(self.lo.max(b.lo) as i128, self.hi as i128 + b.hi as i128, 1)
                } else {
                    Val::top()
                }
            }
        }
    }

    /// Bitwise XOR.
    pub fn xor(&self, b: &Val) -> Val {
        match (self.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Val::exact(x ^ y),
            _ => {
                if self.lo >= 0 && b.lo >= 0 {
                    let m = (self.hi as u64).max(b.hi as u64);
                    let bound = ((m + 1).next_power_of_two() as i128) - 1;
                    Val::fit(0, bound, 1)
                } else {
                    Val::top()
                }
            }
        }
    }

    /// Logical left shift by `imm & 63`.
    pub fn shl_imm(&self, k: u32) -> Val {
        if k == 0 {
            return *self;
        }
        if let Some(x) = self.as_exact() {
            return Val::exact(((x as u64).wrapping_shl(k)) as i64);
        }
        if k <= 62 {
            // scale() reports ⊤ on any i64 overflow, so no bits can
            // have been shifted out when it succeeds.
            return self.scale(1i64 << k);
        }
        Val::top()
    }

    /// Logical (unsigned) right shift by `imm & 63`.
    pub fn shr_imm(&self, k: u32) -> Val {
        if k == 0 {
            return *self;
        }
        if let Some(x) = self.as_exact() {
            return Val::exact(((x as u64) >> k) as i64);
        }
        if self.lo >= 0 {
            let s = if k < 63 && self.stride.is_multiple_of(1 << k) {
                self.stride >> k
            } else {
                1
            };
            return Val::strided(self.lo >> k, self.hi >> k, s);
        }
        // Negative members shift as huge unsigned values; k ≥ 1 keeps
        // the result below 2^63, so a signed range still covers it.
        Val::range(0, (u64::MAX >> k) as i64)
    }

    /// Arithmetic right shift by `imm & 63`.
    pub fn sar_imm(&self, k: u32) -> Val {
        if k == 0 {
            return *self;
        }
        Val::range(self.lo >> k, self.hi >> k)
    }

    /// Register-amount shifts: sound bounds when the amount is exact,
    /// monotonicity bounds otherwise.
    pub fn shl(&self, amount: &Val) -> Val {
        match amount.as_exact() {
            Some(k) => self.shl_imm((k & 63) as u32),
            None => Val::top(),
        }
    }

    /// Register-amount logical right shift.
    pub fn shr(&self, amount: &Val) -> Val {
        match amount.as_exact() {
            Some(k) => self.shr_imm((k & 63) as u32),
            None if self.lo >= 0 => Val::range(0, self.hi),
            None => Val::top(),
        }
    }

    /// Register-amount arithmetic right shift.
    pub fn sar(&self, amount: &Val) -> Val {
        match amount.as_exact() {
            Some(k) => self.sar_imm((k & 63) as u32),
            None if self.lo >= 0 => Val::range(0, self.hi),
            None if self.hi < 0 => Val::range(self.lo, -1),
            None => Val::top(),
        }
    }

    /// The 0/1 result of `(a < b)` signed, proven where possible.
    pub fn lt_signed(&self, b: &Val) -> Val {
        if self.hi < b.lo {
            Val::exact(1)
        } else if self.lo >= b.hi {
            Val::exact(0)
        } else {
            Val::range(0, 1)
        }
    }

    /// The 0/1 result of `(a < b)` unsigned, proven where sign-uniform.
    pub fn lt_unsigned(&self, b: &Val) -> Val {
        match (self.unsigned_view(), b.unsigned_view()) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                if ahi < blo {
                    Val::exact(1)
                } else if alo >= bhi {
                    Val::exact(0)
                } else {
                    Val::range(0, 1)
                }
            }
            _ => Val::range(0, 1),
        }
    }

    /// The unsigned interval `[lo, hi]` when this set is sign-uniform
    /// (entirely nonnegative or entirely negative bit patterns).
    pub fn unsigned_view(&self) -> Option<(u64, u64)> {
        (self.lo >= 0 || self.hi < 0).then_some((self.lo as u64, self.hi as u64))
    }

    // --- Branch-edge refinements (meet with a half-space) ---
    // Each returns None when the edge is infeasible.

    fn clamp(&self, lo: i64, hi: i64) -> Option<Val> {
        let mut lo = self.lo.max(lo);
        let mut hi = self.hi.min(hi);
        if lo > hi {
            return None;
        }
        if self.stride > 1 {
            // Snap inward to the stride lattice anchored at self.lo.
            let s = self.stride as i128;
            let up = (lo as i128 - self.lo as i128).rem_euclid(s);
            lo = (lo as i128 + if up == 0 { 0 } else { s - up }) as i64;
            let down = (hi as i128 - self.lo as i128).rem_euclid(s);
            hi = (hi as i128 - down) as i64;
            if lo > hi {
                return None;
            }
        }
        Some(Val::strided(lo, hi, self.stride))
    }

    /// Refine under `self == b`.
    pub fn refine_eq(&self, b: &Val) -> Option<Val> {
        self.clamp(b.lo, b.hi)
    }

    /// Refine under `self != b` (only trims singleton endpoints).
    pub fn refine_ne(&self, b: &Val) -> Option<Val> {
        if let (Some(x), Some(y)) = (self.as_exact(), b.as_exact()) {
            if x == y {
                return None;
            }
        }
        if let Some(y) = b.as_exact() {
            let step = self.stride.max(1) as i64;
            if self.lo == y && self.hi == y {
                return None;
            }
            if self.lo == y {
                return self.clamp(self.lo.saturating_add(step), self.hi);
            }
            if self.hi == y {
                return self.clamp(self.lo, self.hi.saturating_sub(step));
            }
        }
        Some(*self)
    }

    /// Refine under `self < b` (signed).
    pub fn refine_lt_signed(&self, b: &Val) -> Option<Val> {
        if b.hi == i64::MIN {
            return None;
        }
        self.clamp(i64::MIN, b.hi - 1)
    }

    /// Refine under `self >= b` (signed).
    pub fn refine_ge_signed(&self, b: &Val) -> Option<Val> {
        self.clamp(b.lo, i64::MAX)
    }

    /// Refine under `self < b` (unsigned). When `b`'s largest possible
    /// value `B` is a nonnegative pattern, `x <u B` pins `x` into
    /// `[0, B-1]` even from ⊤ — the guard idiom the corpus kernels use.
    pub fn refine_lt_unsigned(&self, b: &Val) -> Option<Val> {
        match b.unsigned_view() {
            Some((_, 0)) => None,
            Some((_, bhi)) if bhi <= i64::MAX as u64 => self.clamp(0, (bhi - 1) as i64),
            _ => {
                // The bound may be a huge (negative-pattern) value; the
                // only still-sound fact is x != u64::MAX when b ⊆ it.
                Some(*self)
            }
        }
    }

    /// Refine under `self >= b` (unsigned).
    pub fn refine_ge_unsigned(&self, b: &Val) -> Option<Val> {
        match (self.unsigned_view(), b.unsigned_view()) {
            (Some(_), Some((blo, _))) if blo <= i64::MAX as u64 && self.lo >= 0 => {
                self.clamp(blo as i64, i64::MAX)
            }
            _ => Some(*self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_tracks_stride() {
        let j = Val::exact(5).join(&Val::exact(8));
        assert_eq!(j, Val::strided(5, 8, 3));
        assert!(j.contains(5) && j.contains(8) && !j.contains(6));
    }

    #[test]
    fn add_overflow_goes_top() {
        let near = Val::range(i64::MAX - 2, i64::MAX);
        assert!(near.add(&Val::exact(8)).is_top());
    }

    #[test]
    fn affine_li_chain_stays_exact() {
        // ldi 5; ldih 0xabc  ==  5*4096 + 0xabc.
        let v = Val::exact(5).scale(4096).add(&Val::exact(0xabc));
        assert_eq!(v.as_exact(), Some(5 * 4096 + 0xabc));
    }

    #[test]
    fn mask_identity_preserves_stride() {
        let v = Val::strided(0, 1008, 16);
        assert_eq!(v.and_mask(1023), v);
        assert_eq!(Val::top().and_mask(127), Val::range(0, 127));
    }

    #[test]
    fn unsigned_refine_pins_top() {
        let p = Val::top().refine_lt_unsigned(&Val::exact(0x8400)).unwrap();
        assert_eq!(p, Val::range(0, 0x83ff));
    }

    #[test]
    fn widen_hits_threshold_then_narrowing_recovers() {
        let head = Val::exact(0x8000);
        let grown = Val::strided(0x8000, 0x8010, 8);
        let w = head.widen(&grown);
        // The 0xffff threshold is snapped down onto the stride-8
        // lattice so post-widening states keep their alignment.
        assert_eq!(w.hi, 0xfff8);
        assert_eq!(w.stride, 8);
    }

    #[test]
    fn spans_split_at_sign_boundary() {
        let v = Val::range(-4, 7);
        assert_eq!(v.u64_spans(), vec![(0, 7), ((-4i64) as u64, u64::MAX)]);
    }

    #[test]
    fn soundness_spot_checks_cover_wrapping() {
        // Exhaustive small-set checks: abstract op result covers every
        // concrete pair's wrapping result.
        let a = Val::strided(-6, 6, 3);
        let b = Val::range(2, 5);
        for x in (-6i64..=6).step_by(3) {
            for y in 2..=5i64 {
                let cases = [
                    (a.add(&b), x.wrapping_add(y)),
                    (a.sub(&b), x.wrapping_sub(y)),
                    (a.mul(&b), x.wrapping_mul(y)),
                    (a.and(&b), x & y),
                    (a.or(&b), x | y),
                    (a.xor(&b), x ^ y),
                ];
                for (i, (av, cv)) in cases.iter().enumerate() {
                    assert!(av.contains(*cv as u64), "op {i} at ({x}, {y}): {av:?}");
                }
            }
        }
    }
}
