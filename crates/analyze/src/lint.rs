//! `detlint`: a workspace determinism lint.
//!
//! Generalizes the kernel's `core_modules_are_pure` test into a
//! workspace-wide scan. The rules are deliberately token/line-level —
//! no `syn`, no parsing — so the lint is trivially auditable and runs
//! in milliseconds. Comments are stripped (`//` to end of line) so
//! prose can neither trip nor hide a match, and each file is truncated
//! at its first `#[cfg(test)]`: only production code is scanned.
//!
//! Three rules:
//!
//! * **`purity`** — the pure kernel core (`state.rs`, `apply.rs`) must
//!   contain no locks, threads, atomics, host I/O, host clocks, or
//!   unsafe code. Replay determinism (DESIGN.md §6) rests on these
//!   modules being pure functions of kernel state.
//! * **`canonical-collections`** — `HashMap`/`HashSet` are forbidden
//!   in production code: their iteration order is randomized per
//!   process, so any serialization, digest, merge sweep, or stats
//!   fold that walks one silently becomes nondeterministic. Use
//!   `BTreeMap`/`BTreeSet`.
//! * **`host-time`** — `Instant`/`SystemTime`/host randomness are
//!   forbidden outside the segregated host-stats modules (wall-clock
//!   measurement in `det-bench`), which are named in the allowlist.
//!
//! Escapes go in an explicit allowlist file (`detlint.allow` at the
//! workspace root): one `<rule> <path-substring>` pair per line. An
//! allowlist entry is an audited claim, not an off switch — each line
//! should carry a comment saying why the use is benign.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Tokens forbidden in the pure kernel core. This is the
/// `core_modules_are_pure` list, now owned here so the kernel test and
/// the workspace lint cannot drift apart.
pub const PURITY_TOKENS: &[&str] = &[
    "Mutex",
    "Condvar",
    "RwLock",
    "std::thread",
    "thread::",
    ".spawn(",
    "AtomicBool",
    "AtomicU64",
    "std::io",
    "std::fs",
    "std::net",
    "Instant",
    "SystemTime",
    "unsafe ",
    "parking_lot",
];

/// Randomized-iteration collections: forbidden in production code.
pub const COLLECTION_TOKENS: &[&str] = &["HashMap", "HashSet"];

/// Host clocks and host randomness: forbidden outside segregated
/// host-stats modules.
pub const HOST_TIME_TOKENS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "rand::",
    "RandomState",
    "from_entropy",
    "getrandom",
];

/// One lint hit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Which rule fired (`purity`, `canonical-collections`,
    /// `host-time`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The forbidden token that matched.
    pub token: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] forbidden token {:?}",
            self.path, self.line, self.rule, self.token
        )
    }
}

/// An allowlist: `(rule, path-substring)` pairs.
pub type Allowlist = Vec<(String, String)>;

/// Parses an allowlist file: one `<rule> <path-substring>` per line;
/// `#` starts a comment; blank lines are skipped.
pub fn parse_allowlist(text: &str) -> Allowlist {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some((it.next()?.to_string(), it.next()?.to_string()))
        })
        .collect()
}

fn allowed(allow: &Allowlist, rule: &str, path: &str) -> bool {
    allow
        .iter()
        .any(|(r, frag)| r == rule && path.contains(frag.as_str()))
}

/// Scans one source file against one rule's token list. The source is
/// truncated at the first `#[cfg(test)]` and comments are stripped
/// line by line, preserving line numbers.
pub fn scan_source(
    rule: &'static str,
    tokens: &[&'static str],
    path: &str,
    src: &str,
) -> Vec<Finding> {
    let prod = &src[..src.find("#[cfg(test)]").unwrap_or(src.len())];
    let mut out = Vec::new();
    for (i, raw) in prod.lines().enumerate() {
        let code = raw.split("//").next().unwrap_or("");
        for &tok in tokens {
            if code.contains(tok) {
                out.push(Finding {
                    rule,
                    path: path.to_string(),
                    line: i + 1,
                    token: tok,
                });
            }
        }
    }
    out
}

/// The purity scan, exposed so the kernel's `core_modules_are_pure`
/// test is a one-line call into the same rule the workspace lint runs.
pub fn purity_violations(path: &str, src: &str) -> Vec<Finding> {
    scan_source("purity", PURITY_TOKENS, path, src)
}

/// Lints one production source file, applying every rule that governs
/// its path and filtering through the allowlist.
pub fn lint_file(rel_path: &str, src: &str, allow: &Allowlist) -> Vec<Finding> {
    let mut out = Vec::new();
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    if matches!(file_name, "state.rs" | "apply.rs") {
        out.extend(scan_source("purity", PURITY_TOKENS, rel_path, src));
    }
    out.extend(scan_source(
        "canonical-collections",
        COLLECTION_TOKENS,
        rel_path,
        src,
    ));
    out.extend(scan_source("host-time", HOST_TIME_TOKENS, rel_path, src));
    out.retain(|f| !allowed(allow, f.rule, &f.path));
    out
}

/// Lints every production source in the workspace: `src/` and
/// `crates/*/src/` recursively. `tests/`, `benches/`, `examples/`, and
/// the vendored `shims/` are out of scope by construction — they are
/// host-side harness code, not the deterministic substrate.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let allow = match fs::read_to_string(root.join("detlint.allow")) {
        Ok(s) => parse_allowlist(&s),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    let mut files: Vec<PathBuf> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
            .map(|e| Ok(e?.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut out = Vec::new();
    for f in &files {
        let src = fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(lint_file(&rel, &src, &allow));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| Ok(e?.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_tests_do_not_trip() {
        let src = "// a HashMap in prose\nfn f() {}\n#[cfg(test)]\nmod t { use std::collections::HashMap; }\n";
        assert!(lint_file("crates/x/src/a.rs", src, &Vec::new()).is_empty());
    }

    #[test]
    fn production_hashmap_is_flagged_and_allowlistable() {
        let src = "use std::collections::HashMap;\n";
        let hits = lint_file("crates/x/src/a.rs", src, &Vec::new());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "canonical-collections");
        assert_eq!(hits[0].line, 1);
        let allow = parse_allowlist("canonical-collections crates/x/src/a.rs # audited\n");
        assert!(lint_file("crates/x/src/a.rs", src, &allow).is_empty());
    }

    #[test]
    fn purity_rule_targets_core_modules_only() {
        let src = "fn f() { let _ = 1; } // fine\nstruct Holds { m: std::sync::Mutex<u8> }\n";
        assert!(
            lint_file("crates/k/src/other.rs", src, &Vec::new())
                .iter()
                .all(|f| f.rule != "purity")
        );
        let hits = lint_file("crates/k/src/apply.rs", src, &Vec::new());
        assert!(hits.iter().any(|f| f.rule == "purity" && f.line == 2));
    }

    #[test]
    fn host_time_flagged_everywhere() {
        let src = "use std::time::Instant;\n";
        let hits = lint_file("crates/cluster/src/x.rs", src, &Vec::new());
        assert!(hits.iter().any(|f| f.rule == "host-time"));
    }

    #[test]
    fn this_workspace_is_lint_clean() {
        // CARGO_MANIFEST_DIR = crates/analyze; workspace root is ../..
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let findings = lint_workspace(&root).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "detlint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
