//! The blackscholes benchmark (PARSEC): option pricing, run under the
//! deterministic scheduler since the original uses pthreads (§4.5,
//! §6.2 — "porting required no changes; the deterministic scheduler's
//! quantization incurs a fixed cost").

use det_kernel::{Kernel, KernelConfig, Region, RunOutcome};
use det_memory::Perm;
use det_runtime::dsched::DSched;
use det_runtime::threads::ThreadGroup;

use crate::mathx::{XorShift64, norm_cdf};
use crate::{Mode, RunResult};

/// Virtual cost of pricing one option (exp/log/sqrt-heavy formula).
pub const NS_PER_OPTION: u64 = 400;

/// The paper's deterministic-scheduler quantum: 10 M instructions at
/// 1 GIPS ≈ 10 ms of virtual time.
pub const PAPER_QUANTUM_NS: u64 = 10_000_000;

const BASE: u64 = 0x1000_0000;
// Layout: per option 5 inputs (S, K, r, v, T) then call+put outputs.
const IN_STRIDE: usize = 5 * 8;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct BsConfig {
    /// Threads.
    pub threads: usize,
    /// Option count.
    pub options: usize,
    /// dsched quantum (virtual ns) for Determinator mode.
    pub quantum_ns: u64,
}

impl BsConfig {
    /// Test-sized configuration with the paper's quantum scaled down.
    pub fn quick(threads: usize) -> BsConfig {
        BsConfig {
            threads,
            options: 4096,
            quantum_ns: 100_000,
        }
    }
}

fn region_for(options: usize) -> Region {
    let bytes = options * (IN_STRIDE + 16);
    let end = (BASE + bytes as u64 + 0xfff) & !0xfff;
    Region::new(BASE, end)
}

fn out_base(options: usize) -> u64 {
    BASE + (options * IN_STRIDE) as u64
}

/// Black–Scholes closed-form call and put prices.
pub fn price(s: f64, k: f64, r: f64, v: f64, t: f64) -> (f64, f64) {
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
    let d2 = d1 - v * t.sqrt();
    let call = s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2);
    let put = k * (-r * t).exp() * norm_cdf(-d2) - s * norm_cdf(-d1);
    (call, put)
}

fn price_stripe(
    c: &mut det_kernel::SpaceCtx,
    options: usize,
    lo: usize,
    hi: usize,
) -> std::result::Result<(), det_kernel::KernelError> {
    // Price in batches so dsched quanta can preempt between charges.
    const BATCH: usize = 64;
    let ob = out_base(options);
    let mut i = lo;
    while i < hi {
        let end = (i + BATCH).min(hi);
        for opt in i..end {
            let a = BASE + (opt * IN_STRIDE) as u64;
            let s = c.mem().read_f64(a)?;
            let k = c.mem().read_f64(a + 8)?;
            let r = c.mem().read_f64(a + 16)?;
            let v = c.mem().read_f64(a + 24)?;
            let t = c.mem().read_f64(a + 32)?;
            let (call, put) = price(s, k, r, v, t);
            c.mem_mut().write_f64(ob + (opt * 16) as u64, call)?;
            c.mem_mut().write_f64(ob + (opt * 16 + 8) as u64, put)?;
        }
        c.charge((end - i) as u64 * NS_PER_OPTION)?;
        i = end;
    }
    Ok(())
}

/// Runs blackscholes under an arbitrary kernel configuration and
/// returns the raw outcome (conformance harness entry point). `mode`
/// still picks the threading style — deterministic scheduler vs plain
/// threads — independent of the cost model in `kcfg`. Validates
/// put-call parity on samples in-run.
pub fn outcome(kcfg: KernelConfig, mode: Mode, cfg: BsConfig) -> RunOutcome {
    let options = cfg.options;
    let threads = cfg.threads.max(1);
    let quantum = cfg.quantum_ns;
    let region = region_for(options);
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        let mut rng = XorShift64::new(0xB5);
        let mut params = Vec::with_capacity(options);
        for opt in 0..options {
            let s = 20.0 + 160.0 * rng.next_f64();
            let k = 20.0 + 160.0 * rng.next_f64();
            let r = 0.01 + 0.09 * rng.next_f64();
            let v = 0.10 + 0.50 * rng.next_f64();
            let t = 0.25 + 1.75 * rng.next_f64();
            let a = BASE + (opt * IN_STRIDE) as u64;
            for (off, val) in [s, k, r, v, t].into_iter().enumerate() {
                ctx.mem_mut().write_f64(a + (off * 8) as u64, val)?;
            }
            params.push((s, k, r, v, t));
        }
        let per = options.div_ceil(threads);
        match mode {
            Mode::Determinator => {
                let mut sched = DSched::new(ctx, region, quantum, 0)?;
                for t in 0..threads {
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(options);
                    sched.spawn(t as u64, move |c| {
                        price_stripe(c, options, lo, hi)?;
                        Ok(0)
                    })?;
                }
                sched.run()?;
            }
            Mode::Baseline => {
                let mut group = ThreadGroup::new(ctx, region, 0);
                for t in 0..threads {
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(options);
                    group.fork(t as u64, move |c| {
                        price_stripe(c, options, lo, hi)?;
                        Ok(0)
                    })?;
                }
                for t in 0..threads {
                    group.join(t as u64)?;
                }
            }
        }
        // Put-call parity spot checks: C - P = S - K·e^{-rT}.
        let ob = out_base(options);
        let mut spot = XorShift64::new(5);
        for _ in 0..16 {
            let opt = spot.below(options as u64) as usize;
            let (s, k, r, _v, t) = params[opt];
            let call = ctx.mem().read_f64(ob + (opt * 16) as u64)?;
            let put = ctx.mem().read_f64(ob + (opt * 16 + 8) as u64)?;
            let parity = s - k * (-r * t).exp();
            assert!(
                ((call - put) - parity).abs() < 1e-6 * s.max(k),
                "parity violated for option {opt}"
            );
        }
        let prices = ctx.mem().read_f64s(ob, options * 2)?;
        let mut d = det_memory::ContentDigest::new();
        for v in &prices {
            d.update_u64(v.to_bits());
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    })
}

/// Runs blackscholes: Determinator mode uses the deterministic
/// scheduler (pthread emulation); baseline mode uses plain threads on
/// the conventional cost model.
pub fn run(mode: Mode, cfg: BsConfig) -> RunResult {
    let outcome = outcome(mode.config(), mode, cfg);
    let checksum = outcome.exit.expect("blackscholes trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_sanity() {
        // Deep in-the-money call ≈ S - K·e^{-rT}; worthless put.
        let (c, p) = price(200.0, 50.0, 0.05, 0.2, 1.0);
        assert!((c - (200.0 - 50.0 * (-0.05f64).exp())).abs() < 0.01);
        assert!(p < 0.01);
    }

    #[test]
    fn prices_match_across_modes() {
        let cfg = BsConfig::quick(4);
        let d = run(Mode::Determinator, cfg);
        let b = run(Mode::Baseline, cfg);
        assert_eq!(d.checksum, b.checksum);
    }

    #[test]
    fn quantization_overhead_shrinks_with_quantum() {
        // The paper's fixed ~35 % cost at the 10 M-insn quantum falls
        // as quanta grow (§6.2). Sweep two quanta and compare.
        let base = run(Mode::Baseline, BsConfig::quick(2)).vclock_ns as f64;
        let ratio = |quantum_ns: u64| {
            let cfg = BsConfig {
                quantum_ns,
                ..BsConfig::quick(2)
            };
            run(Mode::Determinator, cfg).vclock_ns as f64 / base
        };
        let fine = ratio(40_000);
        let coarse = ratio(400_000);
        assert!(
            coarse < fine,
            "larger quanta must amortize: {fine} -> {coarse}"
        );
    }

    #[test]
    fn dsched_preemptions_actually_happen() {
        let cfg = BsConfig {
            threads: 2,
            options: 2048,
            quantum_ns: 50_000,
        };
        let r = run(Mode::Determinator, cfg);
        assert!(
            r.stats.limit_preemptions > 0,
            "quanta must preempt: {:?}",
            r.stats.limit_preemptions
        );
    }
}
