//! The fft benchmark: iterative radix-2 FFT with a barrier per stage
//! (§6.2, SPLASH-2's kernel reduced to one dimension).
//!
//! Complex samples live in the shared region (interleaved re/im
//! doubles). Each stage partitions the N/2 butterflies contiguously
//! across threads (disjoint writes); the master's barrier cycle merges
//! all stripes and redistributes the array — the per-stage
//! synchronization that makes fft markedly finer-grained than md5 yet
//! still coarse enough to stay near the baseline (Fig. 7).

use det_kernel::{Kernel, KernelConfig, Region, RunOutcome};
use det_memory::Perm;
use det_runtime::threads::{self, ThreadGroup};

use crate::mathx::XorShift64;
use crate::{Mode, RunResult};

/// Virtual cost per butterfly (10 flops + twiddle lookup).
pub const NS_PER_BUTTERFLY: u64 = 12;

const BASE: u64 = 0x1000_0000;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct FftConfig {
    /// Threads.
    pub threads: usize,
    /// log2 of the transform size.
    pub log2n: u32,
}

fn region_for(n: usize) -> Region {
    let end = (BASE + (n * 16) as u64 + 0xfff) & !0xfff;
    Region::new(BASE, end)
}

/// Runs the FFT under an arbitrary kernel configuration and returns
/// the raw outcome (conformance harness entry point). Validates
/// against a direct DFT at sampled frequencies in-run.
pub fn outcome(kcfg: KernelConfig, cfg: FftConfig) -> RunOutcome {
    let n = 1usize << cfg.log2n;
    let threads = cfg.threads.max(1);
    let region = region_for(n);
    let log2n = cfg.log2n;
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        // Deterministic input signal.
        let mut rng = XorShift64::new(0xFF7);
        let input: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        // Bit-reversal permutation, done sequentially by the master.
        let mut buf = vec![0f64; 2 * n];
        for (i, &(re, im)) in input.iter().enumerate() {
            let j = i.reverse_bits() >> (usize::BITS - log2n);
            buf[2 * j] = re;
            buf[2 * j + 1] = im;
        }
        ctx.mem_mut().write_f64s(BASE, &buf)?;
        ctx.charge(n as u64 * 2)?;

        let mut group = ThreadGroup::new(ctx, region, 0);
        let bf_per = (n / 2).div_ceil(threads);
        for t in 0..threads {
            let lo = t * bf_per;
            let hi = ((t + 1) * bf_per).min(n / 2);
            group.fork(t as u64, move |c| {
                for s in 0..log2n {
                    let half = 1usize << s;
                    for b in lo..hi {
                        let g = b / half;
                        let j = b % half;
                        let i0 = g * half * 2 + j;
                        let i1 = i0 + half;
                        let ang = -std::f64::consts::PI * (j as f64) / (half as f64);
                        let (wr, wi) = (ang.cos(), ang.sin());
                        let x0r = c.mem().read_f64(BASE + (2 * i0) as u64 * 8)?;
                        let x0i = c.mem().read_f64(BASE + (2 * i0 + 1) as u64 * 8)?;
                        let x1r = c.mem().read_f64(BASE + (2 * i1) as u64 * 8)?;
                        let x1i = c.mem().read_f64(BASE + (2 * i1 + 1) as u64 * 8)?;
                        let tr = x1r * wr - x1i * wi;
                        let ti = x1r * wi + x1i * wr;
                        c.mem_mut()
                            .write_f64(BASE + (2 * i0) as u64 * 8, x0r + tr)?;
                        c.mem_mut()
                            .write_f64(BASE + (2 * i0 + 1) as u64 * 8, x0i + ti)?;
                        c.mem_mut()
                            .write_f64(BASE + (2 * i1) as u64 * 8, x0r - tr)?;
                        c.mem_mut()
                            .write_f64(BASE + (2 * i1 + 1) as u64 * 8, x0i - ti)?;
                    }
                    c.charge((hi - lo) as u64 * NS_PER_BUTTERFLY)?;
                    if s + 1 < log2n {
                        threads::barrier(c)?;
                    }
                }
                Ok(0)
            })?;
        }
        let ids: Vec<u64> = (0..threads as u64).collect();
        group.run_to_completion(&ids)?;

        // Validate against a direct DFT at sampled frequencies.
        let spectrum = ctx.mem().read_f64s(BASE, 2 * n)?;
        let mut spot = XorShift64::new(3);
        for _ in 0..6 {
            let k = spot.below(n as u64) as usize;
            let (mut sr, mut si) = (0f64, 0f64);
            for (t, &(re, im)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / (n as f64);
                let (c0, s0) = (ang.cos(), ang.sin());
                sr += re * c0 - im * s0;
                si += re * s0 + im * c0;
            }
            let got_r = spectrum[2 * k];
            let got_i = spectrum[2 * k + 1];
            let scale = (n as f64).sqrt().max(1.0);
            assert!(
                (got_r - sr).abs() < 1e-6 * scale && (got_i - si).abs() < 1e-6 * scale,
                "bin {k}: got ({got_r},{got_i}), want ({sr},{si})"
            );
        }
        let mut d = det_memory::ContentDigest::new();
        for v in &spectrum {
            d.update_u64(v.to_bits());
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    })
}

/// Runs the FFT; checksum digests the spectrum bits.
pub fn run(mode: Mode, cfg: FftConfig) -> RunResult {
    let outcome = outcome(mode.config(), cfg);
    let checksum = outcome.exit.expect("fft trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_dft_in_both_modes() {
        let cfg = FftConfig {
            threads: 4,
            log2n: 10,
        };
        let d = run(Mode::Determinator, cfg);
        let b = run(Mode::Baseline, cfg);
        assert_eq!(d.checksum, b.checksum);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let c1 = run(
            Mode::Determinator,
            FftConfig {
                threads: 1,
                log2n: 9,
            },
        )
        .checksum;
        let c4 = run(
            Mode::Determinator,
            FftConfig {
                threads: 4,
                log2n: 9,
            },
        )
        .checksum;
        assert_eq!(c1, c4);
    }

    #[test]
    fn per_stage_barriers_cost_more_than_md5_style() {
        // fft must show a larger det/baseline gap than an
        // embarrassingly parallel workload of similar compute.
        let cfg = FftConfig {
            threads: 4,
            log2n: 12,
        };
        let d = run(Mode::Determinator, cfg).vclock_ns as f64;
        let b = run(Mode::Baseline, cfg).vclock_ns as f64;
        let ratio = d / b;
        assert!(ratio > 1.05, "fft should pay for barriers, got {ratio}");
        assert!(ratio < 12.0, "but stay usable, got {ratio}");
    }
}
