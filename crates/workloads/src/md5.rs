//! The md5 benchmark: brute-force search for the ASCII string with a
//! given MD5 hash (§6.2), plus a from-scratch RFC 1321 MD5.

use det_kernel::{CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region, RunOutcome};
use det_memory::Perm;

use crate::{Mode, RunResult};

// ---------------------------------------------------------------------
// MD5 (RFC 1321), implemented from scratch.
// ---------------------------------------------------------------------

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Computes the MD5 digest of `msg`.
pub fn md5(msg: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Padding: 0x80, zeros, 64-bit bit length.
    let bitlen = (msg.len() as u64).wrapping_mul(8);
    let mut data = msg.to_vec();
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bitlen.to_le_bytes());

    for chunk in data.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(w.try_into().expect("4 bytes"));
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// Renders the candidate password for index `i` (lowercase base-26,
/// fixed width 8 — the "ASCII string" search space).
pub fn candidate(i: u64) -> [u8; 8] {
    let mut s = [b'a'; 8];
    let mut v = i;
    for slot in s.iter_mut().rev() {
        *slot = b'a' + (v % 26) as u8;
        v /= 26;
    }
    s
}

/// Virtual cost of one MD5 trial (hash of a short string on the
/// paper-era testbed ≈ 0.7 µs).
pub const NS_PER_HASH: u64 = 700;

const SHARED: Region = Region {
    start: 0x1000_0000,
    end: 0x1000_1000,
};
const FOUND_ADDR: u64 = SHARED.start;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct Md5Config {
    /// Worker thread count.
    pub threads: usize,
    /// Keyspace size (indices scanned).
    pub keyspace: u64,
    /// Index of the planted target within the keyspace.
    pub target: u64,
}

impl Md5Config {
    /// A configuration sized for tests and quick reports.
    pub fn quick(threads: usize) -> Md5Config {
        Md5Config {
            threads,
            keyspace: 20_000,
            target: 17_321,
        }
    }
}

/// Runs the md5 search under an arbitrary kernel configuration and
/// returns the raw outcome (the conformance harness's entry point —
/// it supplies trace sinks and dispatch modes through `kcfg`).
pub fn outcome(kcfg: KernelConfig, cfg: Md5Config) -> RunOutcome {
    let digest = md5(&candidate(cfg.target));
    let threads = cfg.threads as u64;
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(SHARED, Perm::RW)?;
        ctx.mem_mut().write_u64(FOUND_ADDR, u64::MAX)?;
        let per = cfg.keyspace.div_ceil(threads);
        for t in 0..threads {
            let lo = t * per;
            let hi = (lo + per).min(cfg.keyspace);
            ctx.put(
                t,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        let mut found = u64::MAX;
                        for i in lo..hi {
                            if md5(&candidate(i)) == digest {
                                found = i;
                            }
                        }
                        // One charge for the whole scan keeps the hot
                        // loop native-speed; the cost is per-trial.
                        c.charge((hi - lo) * NS_PER_HASH)?;
                        if found != u64::MAX {
                            c.mem_mut().write_u64(FOUND_ADDR, found)?;
                        }
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(SHARED))
                    .snap()
                    .start(),
            )?;
        }
        for t in 0..threads {
            ctx.get(t, GetSpec::new().merge(SHARED))?;
        }
        let found = ctx.mem().read_u64(FOUND_ADDR)?;
        Ok(found as i32)
    })
}

/// Runs the md5 search with `cfg` under `mode`; the checksum is the
/// found index (validated against the plant).
pub fn run(mode: Mode, cfg: Md5Config) -> RunResult {
    let outcome = outcome(mode.config(), cfg);
    let found = outcome.exit.expect("md5 run trapped") as u32 as u64;
    assert_eq!(found, cfg.target, "search must find the planted key");
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum: found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test vectors.
    #[test]
    fn rfc1321_vectors() {
        let hex = |d: [u8; 16]| d.iter().map(|b| format!("{b:02x}")).collect::<String>();
        assert_eq!(hex(md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn md5_multiblock_boundary() {
        // Lengths around the 55/56-byte padding boundary.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 128] {
            let msg = vec![b'x'; len];
            let d = md5(&msg);
            // Self-consistency: same input, same digest; different
            // length, different digest from the next.
            assert_eq!(d, md5(&msg));
            assert_ne!(d, md5(&vec![b'x'; len + 1]));
        }
    }

    #[test]
    fn candidates_are_distinct_and_fixed_width() {
        assert_eq!(&candidate(0), b"aaaaaaaa");
        assert_eq!(&candidate(1), b"aaaaaaab");
        assert_eq!(&candidate(26), b"aaaaaaba");
        assert_ne!(candidate(12345), candidate(12346));
    }

    #[test]
    fn search_finds_plant_in_both_modes() {
        for mode in [Mode::Determinator, Mode::Baseline] {
            let r = run(mode, Md5Config::quick(4));
            assert_eq!(r.checksum, 17_321, "{mode:?}");
        }
    }

    #[test]
    fn embarrassingly_parallel_speedup_shape() {
        // Doubling threads should nearly halve virtual time.
        let t1 = run(Mode::Determinator, Md5Config::quick(1)).vclock_ns;
        let t4 = run(Mode::Determinator, Md5Config::quick(4)).vclock_ns;
        let s = t1 as f64 / t4 as f64;
        assert!(s > 3.0, "speedup {s}");
    }

    #[test]
    fn determinator_close_to_baseline() {
        // md5 is coarse-grained: det/baseline ratio near 1 (Fig. 7).
        let d = run(Mode::Determinator, Md5Config::quick(4)).vclock_ns;
        let b = run(Mode::Baseline, Md5Config::quick(4)).vclock_ns;
        let ratio = d as f64 / b as f64;
        assert!(ratio < 1.3, "ratio {ratio}");
    }
}
