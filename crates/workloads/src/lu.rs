//! The lu benchmark: parallel LU decomposition with a barrier per
//! elimination step — the paper's fine-grained stress case (§6.2).
//!
//! Two row-distribution layouts reproduce the SPLASH-2 pair:
//!
//! * **contiguous** (`lu_cont`): thread t owns a contiguous row block,
//!   so its per-step writes dirty few pages and each page is merged by
//!   one thread;
//! * **non-contiguous** (`lu_noncont`): rows are interleaved
//!   round-robin, so every thread's writes scatter across the whole
//!   trailing matrix and the same pages are diffed once per thread —
//!   measurably worse under Determinator, as in Figure 7.

use det_kernel::{Kernel, KernelConfig, Region, RunOutcome};
use det_memory::Perm;
use det_runtime::threads::{self, ThreadGroup};

use crate::mathx::XorShift64;
use crate::{Mode, RunResult};

/// Virtual cost per trailing-matrix element update (2 flops).
pub const NS_PER_UPDATE: u64 = 2;
/// Virtual cost per L-column element (division).
pub const NS_PER_DIV: u64 = 8;

const BASE: u64 = 0x1000_0000;

/// Row-to-thread layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Contiguous row blocks.
    Contiguous,
    /// Round-robin interleaved rows.
    NonContiguous,
}

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuConfig {
    /// Threads.
    pub threads: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Row distribution.
    pub layout: Layout,
}

fn region_for(n: usize) -> Region {
    let end = (BASE + (n * n * 8) as u64 + 0xfff) & !0xfff;
    Region::new(BASE, end)
}

fn owns(layout: Layout, threads: usize, n: usize, t: usize, row: usize) -> bool {
    match layout {
        Layout::Contiguous => {
            let per = n.div_ceil(threads);
            row / per == t
        }
        Layout::NonContiguous => row % threads == t,
    }
}

/// Runs the LU decomposition under an arbitrary kernel configuration
/// and returns the raw outcome (conformance harness entry point).
/// Validates `L·U ≈ A` at sampled entries in-run.
pub fn outcome(kcfg: KernelConfig, cfg: LuConfig) -> RunOutcome {
    let n = cfg.n;
    let threads = cfg.threads.max(1);
    let layout = cfg.layout;
    let region = region_for(n);
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        let mut rng = XorShift64::new(0x10);
        let mut a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        for i in 0..n {
            a[i * n + i] += n as f64; // Diagonal dominance.
        }
        let original = a.clone();
        ctx.mem_mut().write_f64s(BASE, &a)?;

        let mut group = ThreadGroup::new(ctx, region, 0);
        for t in 0..threads {
            group.fork(t as u64, move |c| {
                for k in 0..n - 1 {
                    // Rows below k that this thread owns.
                    let akk = c.mem().read_f64(BASE + ((k * n + k) * 8) as u64)?;
                    let row_k = c.mem().read_f64s(BASE + ((k * n + k) * 8) as u64, n - k)?;
                    let mut work = 0u64;
                    for i in (k + 1)..n {
                        if !owns(layout, threads, n, t, i) {
                            continue;
                        }
                        let aik = c.mem().read_f64(BASE + ((i * n + k) * 8) as u64)?;
                        let l = aik / akk;
                        let mut row_i =
                            c.mem().read_f64s(BASE + ((i * n + k) * 8) as u64, n - k)?;
                        row_i[0] = l; // Store L in place.
                        for j in 1..n - k {
                            row_i[j] -= l * row_k[j];
                        }
                        c.mem_mut()
                            .write_f64s(BASE + ((i * n + k) * 8) as u64, &row_i)?;
                        work += NS_PER_DIV + (n - k - 1) as u64 * NS_PER_UPDATE;
                    }
                    c.charge(work.max(1))?;
                    if k + 1 < n - 1 {
                        threads::barrier(c)?;
                    }
                }
                Ok(0)
            })?;
        }
        let ids: Vec<u64> = (0..threads as u64).collect();
        group.run_to_completion(&ids)?;

        // Validate L·U ≈ A at sampled entries.
        let lu = ctx.mem().read_f64s(BASE, n * n)?;
        let mut spot = XorShift64::new(77);
        for _ in 0..12 {
            let i = spot.below(n as u64) as usize;
            let j = spot.below(n as u64) as usize;
            let mut acc = 0f64;
            for k in 0..=i.min(j) {
                let l = if k == i { 1.0 } else { lu[i * n + k] };
                let u = if k <= j { lu[k * n + j] } else { 0.0 };
                acc += l * u;
            }
            let want = original[i * n + j];
            assert!(
                (acc - want).abs() < 1e-6 * n as f64,
                "LU[{i}][{j}] = {acc}, want {want}"
            );
        }
        let mut d = det_memory::ContentDigest::new();
        for v in &lu {
            d.update_u64(v.to_bits());
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    })
}

/// Runs the LU decomposition (no pivoting; the generated matrix is
/// diagonally dominant).
pub fn run(mode: Mode, cfg: LuConfig) -> RunResult {
    let outcome = outcome(mode.config(), cfg);
    let checksum = outcome.exit.expect("lu trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposes_correctly_both_layouts() {
        for layout in [Layout::Contiguous, Layout::NonContiguous] {
            let cfg = LuConfig {
                threads: 3,
                n: 48,
                layout,
            };
            let d = run(Mode::Determinator, cfg);
            let b = run(Mode::Baseline, cfg);
            assert_eq!(d.checksum, b.checksum, "{layout:?}");
        }
    }

    #[test]
    fn fine_grained_overhead_is_high() {
        // lu is the paper's pathological case: expect a clearly larger
        // det/baseline ratio than coarse benchmarks.
        let cfg = LuConfig {
            threads: 4,
            n: 96,
            layout: Layout::Contiguous,
        };
        let d = run(Mode::Determinator, cfg).vclock_ns as f64;
        let b = run(Mode::Baseline, cfg).vclock_ns as f64;
        assert!(d / b > 2.0, "lu should hurt, got {}", d / b);
    }

    #[test]
    fn noncontiguous_is_worse_than_contiguous() {
        let mk = |layout| LuConfig {
            threads: 4,
            n: 96,
            layout,
        };
        let cont = run(Mode::Determinator, mk(Layout::Contiguous)).vclock_ns;
        let noncont = run(Mode::Determinator, mk(Layout::NonContiguous)).vclock_ns;
        assert!(
            noncont > cont,
            "interleaved rows must cost more: {cont} vs {noncont}"
        );
    }
}
