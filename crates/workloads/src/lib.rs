//! The paper's parallel benchmarks (§6.2–6.3), each in two modes:
//!
//! * [`Mode::Determinator`] — private-workspace threads on the
//!   calibrated cost model: fork pays copy-on-write mapping, join pays
//!   byte-granularity merge, exactly as the kernel counts them;
//! * [`Mode::Baseline`] — the *same* workload and fork/join structure
//!   on the conventional-OS model: threads share memory directly
//!   (copy/merge operations cost zero virtual time) and pay typical
//!   pthread dispatch costs. This plays the role of "pthreads on
//!   Ubuntu Linux" in Figures 7, 9, 10.
//!
//! Every workload computes **real results** natively (real MD5, real
//! matrix products, real option prices…) and validates them; only the
//! *clock* is virtual, driven by declared per-operation costs
//! (identical in both modes) plus the kernel's counted operations.

pub mod blackscholes;
pub mod dist;
pub mod fft;
pub mod lu;
pub mod mathx;
pub mod matmult;
pub mod md5;
pub mod qsort;
pub mod sharded;

use det_kernel::{CostModel, KernelConfig, KernelStats};

/// Which system model a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Determinator: private workspaces, snapshots, merges — all
    /// charged by the calibrated cost model.
    Determinator,
    /// Conventional shared-memory OS ("pthreads on Linux"): identical
    /// structure, zero-cost sharing, realistic thread dispatch.
    Baseline,
}

impl Mode {
    /// The kernel configuration this mode runs under.
    pub fn config(self) -> KernelConfig {
        KernelConfig::builder()
            .costs(match self {
                Mode::Determinator => CostModel::calibrated(),
                Mode::Baseline => baseline_costs(),
            })
            .build()
    }
}

/// The conventional-OS cost model: sharing is free (hardware cache
/// coherence), thread creation costs what `pthread_create` did on the
/// paper's testbed (~15 µs), syscalls ~300 ns.
pub fn baseline_costs() -> CostModel {
    CostModel {
        syscall_ps: 300_000,
        spawn_ps: 15_000_000,
        resume_ps: 1_000_000,
        // Conventional threads block and wake through the same
        // scheduler dispatch `resume_ps` models; no separate
        // rendezvous park is charged.
        rendezvous_ps: 0,
        page_map_ps: 0,
        space_clone_ps: 0,
        page_scan_ps: 0,
        word_compare_ps: 0,
        byte_compare_ps: 0,
        byte_copy_ps: 0,
        vm_insn_ps: 1_000,
        // Hardware TLB: misses are absorbed into the per-instruction
        // rate, as they are for native pthreads code.
        vm_tlb_fill_ps: 0,
        // Conventional threads don't run the static analyzer.
        analyze_step_ps: 0,
        // Conventional threads don't checkpoint; the baseline never
        // issues the syscall, so the per-leaf rate is moot.
        checkpoint_leaf_ps: 0,
    }
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Virtual-time makespan in nanoseconds (the root space's clock).
    pub vclock_ns: u64,
    /// Kernel operation counters.
    pub stats: KernelStats,
    /// Workload-specific checksum (must match across modes and thread
    /// counts — the determinism *and* correctness witness).
    pub checksum: u64,
}

/// Virtual seconds as f64 (for report printing).
pub fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Speedup of `b` relative to `a` in virtual time.
pub fn speedup(base_ns: u64, other_ns: u64) -> f64 {
    base_ns as f64 / other_ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_differ_only_in_costs() {
        let d = Mode::Determinator.config();
        let b = Mode::Baseline.config();
        assert_ne!(d.costs, b.costs);
        assert_eq!(b.costs.byte_compare_ps, 0);
        assert!(d.costs.byte_compare_ps > 0);
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(1_500_000_000), 1.5);
        assert_eq!(speedup(200, 100), 2.0);
    }
}
