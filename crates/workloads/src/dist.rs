//! Distributed benchmarks (§6.3, Figures 11–12): md5-circuit,
//! md5-tree, and matmult-tree over simulated cluster nodes, plus the
//! explicit message-passing baselines standing in for the paper's
//! remote-shell / TCP Linux equivalents.
//!
//! All three Determinator variants still program against *logically
//! shared memory* via Snap/Merge — distribution is only visible in the
//! node fields of child numbers, as in the paper.

use std::sync::Arc;

use det_cluster::{NetworkModel, SimCluster};
use det_kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec, Region, RunOutcome,
    SpaceCtx, child_on_node,
};
use det_memory::Perm;

use crate::matmult::PS_PER_MAC;
use crate::md5::{NS_PER_HASH, candidate, md5};
use crate::{Mode, RunResult};

const BASE: u64 = 0x1000_0000;

/// Distributed benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Cluster size (uniprocessor nodes, as in the paper).
    pub nodes: u16,
    /// md5 keyspace / matmult dimension.
    pub size: u64,
    /// Add TCP-like round-trip behaviour (Fig. 12 ablation).
    pub tcp_like: bool,
}

fn cluster_for(cfg: &DistConfig) -> Arc<SimCluster> {
    let net = if cfg.tcp_like {
        NetworkModel::ethernet_1g_tcp()
    } else {
        NetworkModel::ethernet_1g()
    };
    SimCluster::new(cfg.nodes.max(1), net)
}

fn kernel_for(cfg: &DistConfig) -> (Kernel, Arc<SimCluster>) {
    let sim = cluster_for(cfg);
    (
        Kernel::with_cluster(Mode::Determinator.config(), sim.clone()),
        sim,
    )
}

// ---------------------------------------------------------------------
// md5-circuit: the master travels to each node in turn (§6.3).
// ---------------------------------------------------------------------

/// Runs md5-circuit: the master migrates serially around the ring to
/// fork one worker per node, then retraces the circuit to collect.
pub fn md5_circuit(cfg: DistConfig) -> RunResult {
    let nodes = cfg.nodes.max(1) as u64;
    let keyspace = cfg.size;
    let target = keyspace * 7 / 8;
    let digest = md5(&candidate(target));
    let shared = Region::new(BASE, BASE + 0x1000);
    let (kernel, _sim) = kernel_for(&cfg);
    let outcome = kernel.run(move |ctx| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        let per = keyspace.div_ceil(nodes);
        // Leg 1: travel the circuit forking workers.
        for k in 0..nodes {
            let lo = k * per;
            let hi = (lo + per).min(keyspace);
            let slot = BASE + k * 8;
            ctx.put(
                child_on_node(k as u16, 1),
                PutSpec::new()
                    .program(Program::native(move |c| {
                        let mut found = u64::MAX;
                        for i in lo..hi {
                            if md5(&candidate(i)) == digest {
                                found = i;
                            }
                        }
                        c.charge((hi - lo) * NS_PER_HASH)?;
                        if found != u64::MAX {
                            c.mem_mut().write_u64(slot, found)?;
                        }
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(shared))
                    .snap()
                    .start(),
            )?;
        }
        // Leg 2: retrace and collect.
        let mut found = u64::MAX;
        for k in 0..nodes {
            ctx.get(child_on_node(k as u16, 1), GetSpec::new().merge(shared))?;
            let v = ctx.mem().read_u64(BASE + k * 8)?;
            if v != 0 {
                found = found.min(if v == 0 { u64::MAX } else { v });
            }
        }
        Ok(found as i32)
    });
    let found = outcome.exit.expect("md5-circuit trapped") as u32 as u64;
    assert_eq!(found, target);
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum: found,
    }
}

// ---------------------------------------------------------------------
// md5-tree: recursive binary fan-out across the node range.
// ---------------------------------------------------------------------

fn md5_tree_node(
    ctx: &mut SpaceCtx,
    shared: Region,
    node_lo: u16,
    node_hi: u16,
    key_lo: u64,
    key_hi: u64,
    digest: [u8; 16],
) -> std::result::Result<(), KernelError> {
    if node_hi - node_lo <= 1 {
        let mut found = u64::MAX;
        for i in key_lo..key_hi {
            if md5(&candidate(i)) == digest {
                found = i;
            }
        }
        ctx.charge((key_hi - key_lo) * NS_PER_HASH)?;
        if found != u64::MAX {
            ctx.mem_mut()
                .write_u64(BASE + (node_lo as u64) * 8, found)?;
        }
        return Ok(());
    }
    let node_mid = node_lo + (node_hi - node_lo) / 2;
    let key_mid = key_lo + (key_hi - key_lo) / 2;
    let halves = [
        (node_lo, node_mid, key_lo, key_mid),
        (node_mid, node_hi, key_mid, key_hi),
    ];
    for (idx, (nlo, nhi, klo, khi)) in halves.into_iter().enumerate() {
        ctx.put(
            child_on_node(nlo, 40 + idx as u64),
            PutSpec::new()
                .program(Program::native(move |c| {
                    md5_tree_node(c, shared, nlo, nhi, klo, khi, digest)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(shared))
                .snap()
                .start(),
        )?;
    }
    for (idx, (nlo, ..)) in halves.into_iter().enumerate() {
        ctx.get(
            child_on_node(nlo, 40 + idx as u64),
            GetSpec::new().merge(shared),
        )?;
    }
    Ok(())
}

/// Runs md5-tree under an arbitrary base kernel configuration on a
/// simulated cluster and returns the raw outcome (conformance harness
/// entry point). Cluster hooks disable syscall tracing, so the
/// harness compares this scenario's reduced bundle.
pub fn md5_tree_outcome(kcfg: KernelConfig, cfg: DistConfig) -> RunOutcome {
    let nodes = cfg.nodes.max(1);
    let keyspace = cfg.size;
    let target = keyspace * 7 / 8;
    let digest = md5(&candidate(target));
    let shared = Region::new(BASE, BASE + 0x1000);
    let kernel = Kernel::with_cluster(kcfg, cluster_for(&cfg));
    kernel.run(move |ctx| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        md5_tree_node(ctx, shared, 0, nodes, 0, keyspace, digest)?;
        let mut found = u64::MAX;
        for k in 0..nodes as u64 {
            let v = ctx.mem().read_u64(BASE + k * 8)?;
            if v != 0 {
                found = found.min(v);
            }
        }
        Ok(found as i32)
    })
}

/// Runs md5-tree: recursive fork across nodes, results merged up the
/// tree (§6.3 — the variant that scales).
pub fn md5_tree(cfg: DistConfig) -> RunResult {
    let target = cfg.size * 7 / 8;
    let outcome = md5_tree_outcome(Mode::Determinator.config(), cfg);
    let found = outcome.exit.expect("md5-tree trapped") as u32 as u64;
    assert_eq!(found, target);
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum: found,
    }
}

// ---------------------------------------------------------------------
// matmult-tree: rows distributed recursively; B pulled on demand.
// ---------------------------------------------------------------------

fn mm_region(n: usize) -> Region {
    let bytes = 3 * n * n * 8;
    Region::new(BASE, (BASE + bytes as u64 + 0xfff) & !0xfff)
}

fn mm_tree_node(
    ctx: &mut SpaceCtx,
    n: usize,
    node_lo: u16,
    node_hi: u16,
    row_lo: usize,
    row_hi: usize,
) -> std::result::Result<(), KernelError> {
    let region = mm_region(n);
    if node_hi - node_lo <= 1 {
        // Leaf: real compute on this node; reading A's stripe and all
        // of B demand-pulls their pages across the network.
        let a = ctx
            .mem()
            .read_u64s(BASE + (row_lo * n * 8) as u64, (row_hi - row_lo) * n)?;
        let b = ctx.mem().read_u64s(BASE + (n * n * 8) as u64, n * n)?;
        let mut c_rows = vec![0u64; (row_hi - row_lo) * n];
        for i in 0..row_hi - row_lo {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c_rows[i * n + j] =
                        c_rows[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
                }
            }
        }
        ctx.mem_mut()
            .write_u64s(BASE + ((2 * n * n + row_lo * n) * 8) as u64, &c_rows)?;
        let macs = ((row_hi - row_lo) * n * n) as u64;
        ctx.charge(macs * PS_PER_MAC / 1000)?;
        return Ok(());
    }
    let node_mid = node_lo + (node_hi - node_lo) / 2;
    let row_mid = row_lo + (row_hi - row_lo) / 2;
    let halves = [
        (node_lo, node_mid, row_lo, row_mid),
        (node_mid, node_hi, row_mid, row_hi),
    ];
    for (idx, (nlo, nhi, rlo, rhi)) in halves.into_iter().enumerate() {
        ctx.put(
            child_on_node(nlo, 60 + idx as u64),
            PutSpec::new()
                .program(Program::native(move |c| {
                    mm_tree_node(c, n, nlo, nhi, rlo, rhi)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(region))
                .snap()
                .start(),
        )?;
    }
    for (idx, (nlo, ..)) in halves.into_iter().enumerate() {
        ctx.get(
            child_on_node(nlo, 60 + idx as u64),
            GetSpec::new().merge(region),
        )?;
    }
    Ok(())
}

/// Runs matmult-tree with recursive work distribution (§6.3 — levels
/// off at ~2 nodes because the kernel's simplistic page-copy protocol
/// must move the matrix data).
pub fn matmult_tree(cfg: DistConfig) -> RunResult {
    let nodes = cfg.nodes.max(1);
    let n = cfg.size as usize;
    let region = mm_region(n);
    let (kernel, _sim) = kernel_for(&cfg);
    let outcome = kernel.run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        let mut rng = crate::mathx::XorShift64::new(0xD157);
        let a: Vec<u64> = (0..n * n).map(|_| rng.below(1000)).collect();
        let b: Vec<u64> = (0..n * n).map(|_| rng.below(1000)).collect();
        ctx.mem_mut().write_u64s(BASE, &a)?;
        ctx.mem_mut().write_u64s(BASE + (n * n * 8) as u64, &b)?;
        mm_tree_node(ctx, n, 0, nodes, 0, n)?;
        // Spot validation.
        let c_all = ctx.mem().read_u64s(BASE + (2 * n * n * 8) as u64, n * n)?;
        let mut spot = crate::mathx::XorShift64::new(9);
        for _ in 0..8 {
            let i = spot.below(n as u64) as usize;
            let j = spot.below(n as u64) as usize;
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            assert_eq!(c_all[i * n + j], acc);
        }
        let mut d = det_memory::ContentDigest::new();
        for v in &c_all {
            d.update_u64(*v);
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    });
    let checksum = outcome.exit.expect("matmult-tree trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

// ---------------------------------------------------------------------
// Message-passing baselines (the paper's nondeterministic
// distributed-memory Linux equivalents, Fig. 12).
// ---------------------------------------------------------------------

/// Virtual makespan (ns) of the remote-shell-style md5: the master
/// sends one small job message per worker, workers scan in parallel,
/// results return as small messages.
pub fn mp_md5_ns(cfg: DistConfig) -> u64 {
    let nodes = cfg.nodes.max(1) as u64;
    let net = if cfg.tcp_like {
        NetworkModel::ethernet_1g_tcp()
    } else {
        NetworkModel::ethernet_1g()
    };
    let msg = net.message_ps(128) / 1000;
    let per = cfg.size.div_ceil(nodes);
    let scan = per * NS_PER_HASH;
    // Worker k starts after k+1 sequential job sends; all finish
    // before sequential result collection.
    let last_start = nodes * msg;
    last_start + scan + nodes * msg
}

/// Virtual makespan (ns) of the explicit-TCP matmult: the master
/// streams each worker its A stripe plus the whole of B, workers
/// compute, C stripes stream back (the data movement the paper's §6.3
/// measures at 263 lines of application code).
pub fn mp_matmult_ns(cfg: DistConfig) -> u64 {
    let nodes = cfg.nodes.max(1) as u64;
    let n = cfg.size;
    let net = if cfg.tcp_like {
        NetworkModel::ethernet_1g_tcp()
    } else {
        NetworkModel::ethernet_1g()
    };
    let stripe_bytes = n * n * 8 / nodes;
    let b_bytes = n * n * 8;
    let send = net.message_ps(stripe_bytes + b_bytes) / 1000;
    let recv = net.message_ps(stripe_bytes) / 1000;
    let compute = n * n * n / nodes * PS_PER_MAC / 1000;
    // Sends serialize at the master's NIC; computes overlap.
    nodes * send + compute + nodes * recv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: u16) -> DistConfig {
        DistConfig {
            nodes,
            size: 4_000,
            tcp_like: false,
        }
    }

    #[test]
    fn circuit_and_tree_find_the_key() {
        let c = md5_circuit(quick(4));
        let t = md5_tree(quick(4));
        assert_eq!(c.checksum, t.checksum);
    }

    #[test]
    fn md5_tree_scales_better_than_circuit() {
        // Fig. 11: the serial circuit pays 2·K migrations on the
        // critical path; the tree pays O(log K).
        let c1 = md5_circuit(quick(1)).vclock_ns;
        let c8 = md5_circuit(quick(8)).vclock_ns;
        let t8 = md5_tree(quick(8)).vclock_ns;
        let circuit_speedup = c1 as f64 / c8 as f64;
        let tree_speedup = c1 as f64 / t8 as f64;
        assert!(
            tree_speedup > circuit_speedup,
            "tree {tree_speedup} vs circuit {circuit_speedup}"
        );
        assert!(tree_speedup > 2.0, "tree must scale: {tree_speedup}");
    }

    #[test]
    fn matmult_tree_levels_off() {
        // Fig. 11: matmult gains little beyond ~2 nodes because the
        // matrix pages must cross the network page by page.
        let cfg = |nodes| DistConfig {
            nodes,
            size: 96,
            tcp_like: false,
        };
        let n1 = matmult_tree(cfg(1)).vclock_ns as f64;
        let n2 = matmult_tree(cfg(2)).vclock_ns as f64;
        let n8 = matmult_tree(cfg(8)).vclock_ns as f64;
        let s2 = n1 / n2;
        let s8 = n1 / n8;
        assert!(
            s8 < s2 * 2.5,
            "matmult must level off: s2={s2:.2} s8={s8:.2}"
        );
    }

    #[test]
    fn tcp_ablation_under_two_percent() {
        let plain = md5_tree(quick(4)).vclock_ns as f64;
        let tcp = md5_tree(DistConfig {
            tcp_like: true,
            ..quick(4)
        })
        .vclock_ns as f64;
        let overhead = tcp / plain - 1.0;
        assert!(
            (0.0..0.02).contains(&overhead),
            "TCP-like overhead {overhead}"
        );
    }

    #[test]
    fn mp_baselines_monotone() {
        // The message-passing md5 scales; mp matmult saturates.
        let big = DistConfig {
            nodes: 1,
            size: 400_000,
            tcp_like: false,
        };
        let md5_1 = mp_md5_ns(big);
        let md5_8 = mp_md5_ns(DistConfig { nodes: 8, ..big });
        assert!(md5_1 as f64 / md5_8 as f64 > 4.0);
        let mm = |nodes| {
            mp_matmult_ns(DistConfig {
                nodes,
                size: 256,
                tcp_like: false,
            })
        };
        let s2 = mm(1) as f64 / mm(2) as f64;
        let s16 = mm(1) as f64 / mm(16) as f64;
        assert!(s16 < s2 * 3.0, "mp matmult saturates: {s2} {s16}");
    }
}
