//! The qsort benchmark: recursive parallel quicksort (§6.2, Fig. 10).
//!
//! Each recursion level partitions its subarray in its private
//! workspace, then forks two child spaces that sort the disjoint
//! halves in place; joins merge the halves back. Leaves sort natively.

use det_kernel::{
    CopySpec, GetSpec, Kernel, KernelConfig, KernelError, Program, PutSpec, Region, RunOutcome,
    SpaceCtx,
};
use det_memory::Perm;

use crate::mathx::XorShift64;
use crate::{Mode, RunResult};

/// Virtual cost per element per partition pass (compare + swap mix).
pub const NS_PER_PARTITION_ELEM: u64 = 2;
/// Virtual cost per element-level of the leaf sort (n·log₂n · this).
pub const NS_PER_SORT_ELEM_LEVEL: u64 = 5;

const BASE: u64 = 0x1000_0000;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct QsortConfig {
    /// Fork depth: 2^depth leaf sorters.
    pub depth: u32,
    /// Array length.
    pub n: usize,
}

fn region_for(n: usize) -> Region {
    let end = (BASE + (n * 8) as u64 + 0xfff) & !0xfff;
    Region::new(BASE, end)
}

/// Recursive sorter running inside a space: sorts `[lo, hi)` of the
/// shared array.
fn sort_range(
    ctx: &mut SpaceCtx,
    region: Region,
    lo: usize,
    hi: usize,
    depth: u32,
) -> std::result::Result<(), KernelError> {
    let n = hi - lo;
    if n <= 1 {
        return Ok(());
    }
    if depth == 0 || n < 4 {
        // Leaf: real in-place sort of the private replica.
        let mut vals = ctx.mem().read_u64s(BASE + (lo * 8) as u64, n)?;
        vals.sort_unstable();
        ctx.mem_mut().write_u64s(BASE + (lo * 8) as u64, &vals)?;
        let levels = (n.max(2) as f64).log2().ceil() as u64;
        ctx.charge(n as u64 * levels * NS_PER_SORT_ELEM_LEVEL)?;
        return Ok(());
    }
    // Partition for real (median-of-three pivot).
    let mut vals = ctx.mem().read_u64s(BASE + (lo * 8) as u64, n)?;
    let pivot = {
        let a = vals[0];
        let b = vals[n / 2];
        let c = vals[n - 1];
        a.max(b).min(a.min(b).max(c))
    };
    let (mut i, mut j) = (0usize, n - 1);
    loop {
        while vals[i] < pivot {
            i += 1;
        }
        while vals[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        vals.swap(i, j);
        i += 1;
        j = j.saturating_sub(1);
    }
    let mid = lo + i.max(1).min(n - 1);
    ctx.mem_mut().write_u64s(BASE + (lo * 8) as u64, &vals)?;
    ctx.charge(n as u64 * NS_PER_PARTITION_ELEM)?;

    // Fork two children on the disjoint halves.
    for (t, (clo, chi)) in [(lo, mid), (mid, hi)].into_iter().enumerate() {
        ctx.put(
            t as u64,
            PutSpec::new()
                .program(Program::native(move |c| {
                    sort_range(c, region, clo, chi, depth - 1)?;
                    Ok(0)
                }))
                .copy(CopySpec::mirror(region))
                .snap()
                .start(),
        )?;
    }
    for t in 0..2u64 {
        ctx.get(t, GetSpec::new().merge(region))?;
    }
    Ok(())
}

/// Runs the parallel quicksort under an arbitrary kernel
/// configuration and returns the raw outcome (conformance harness
/// entry point). Sortedness and content preservation are asserted
/// in-run.
pub fn outcome(kcfg: KernelConfig, cfg: QsortConfig) -> RunOutcome {
    let n = cfg.n;
    let depth = cfg.depth;
    let region = region_for(n);
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(region, Perm::RW)?;
        let mut rng = XorShift64::new(0x5027);
        let input: Vec<u64> = (0..n).map(|_| rng.below(1 << 40)).collect();
        let expected_sum: u64 = input.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        ctx.mem_mut().write_u64s(BASE, &input)?;
        sort_range(ctx, region, 0, n, depth)?;
        let sorted = ctx.mem().read_u64s(BASE, n)?;
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        let sum = sorted.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        assert_eq!(sum, expected_sum, "content changed");
        let mut d = det_memory::ContentDigest::new();
        for v in &sorted {
            d.update_u64(*v);
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    })
}

/// Runs the parallel quicksort; the checksum digests the sorted array.
pub fn run(mode: Mode, cfg: QsortConfig) -> RunResult {
    let outcome = outcome(mode.config(), cfg);
    let checksum = outcome.exit.expect("qsort trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly_in_both_modes() {
        let cfg = QsortConfig { depth: 2, n: 4096 };
        let d = run(Mode::Determinator, cfg);
        let b = run(Mode::Baseline, cfg);
        assert_eq!(d.checksum, b.checksum);
    }

    #[test]
    fn depth_zero_is_sequential_sort() {
        let r = run(Mode::Determinator, QsortConfig { depth: 0, n: 1000 });
        assert!(r.stats.spaces_created == 0);
    }

    #[test]
    fn small_arrays_pay_relatively_more() {
        // Fig. 10's shape: det/baseline ratio shrinks as n grows.
        let ratio = |n: usize| {
            let cfg = QsortConfig { depth: 2, n };
            run(Mode::Determinator, cfg).vclock_ns as f64
                / run(Mode::Baseline, cfg).vclock_ns as f64
        };
        let small = ratio(512);
        let large = ratio(65_536);
        assert!(large < small, "ratio must fall with n: {small} -> {large}");
    }

    #[test]
    fn adversarial_inputs_still_sort() {
        // Already-sorted and all-equal arrays exercise pivot edges.
        for seedless in [true, false] {
            let n = 2048;
            let region = region_for(n);
            let outcome = Kernel::new(Mode::Determinator.config()).run(move |ctx| {
                ctx.mem_mut().map_zero(region, Perm::RW)?;
                let input: Vec<u64> = if seedless {
                    (0..n as u64).collect()
                } else {
                    vec![7; n]
                };
                ctx.mem_mut().write_u64s(BASE, &input)?;
                sort_range(ctx, region, 0, n, 2)?;
                let sorted = ctx.mem().read_u64s(BASE, n)?;
                assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
                Ok(0)
            });
            assert_eq!(outcome.exit, Ok(0));
        }
    }
}
