//! Workloads for the real-thread shard cluster (`det_cluster`'s
//! [`ClusterSpec`]): the fan-outs behind the §6.3 scaling figures and
//! the shard-count-invariance conformance scenarios.
//!
//! Every workload here addresses **logical nodes**; the shard count is
//! a free parameter that must change wall-clock time only. Each
//! workload writes its deterministic result to the console device, so
//! its bytes land in the conformance bundle's `[outputs]` section.

use det_cluster::{ClusterOutcome, ClusterSpec, JobSpec};
use det_kernel::{
    CopySpec, DeviceId, FaultPlan, GetSpec, Program, PutSpec, Region, Regs, SpaceCtx, StopReason,
    VmDispatch,
};
use det_memory::Perm;
use det_runtime::dsched::{self, DSched};

use crate::md5::{NS_PER_HASH, candidate, md5};

const BASE: u64 = 0x1000_0000;

/// Parameters of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Logical nodes (fixes every deterministic quantity).
    pub nodes: u16,
    /// Physical shards (OS threads; wall-clock only).
    pub shards: usize,
    /// Workload size knob (keyspace, rounds, …).
    pub size: u64,
    /// VM dispatch mode for every kernel in the cluster (must not
    /// change any deterministic quantity).
    pub dispatch: VmDispatch,
    /// Fault-injection plan for the root kernel.
    pub faults: FaultPlan,
}

impl ShardedConfig {
    /// A quick configuration for tests.
    pub fn quick(nodes: u16, shards: usize) -> ShardedConfig {
        ShardedConfig {
            nodes,
            shards,
            size: 2_000,
            dispatch: VmDispatch::default(),
            faults: FaultPlan::default(),
        }
    }

    fn spec(&self) -> ClusterSpec {
        let mut spec = ClusterSpec::new(self.nodes.max(1), self.shards.max(1));
        spec.vm_dispatch = self.dispatch;
        spec.faults = self.faults.clone();
        spec
    }
}

/// Result of a sharded workload run.
pub struct ShardedResult {
    /// The full cluster outcome (bundle, stats, artifacts).
    pub outcome: ClusterOutcome,
    /// Workload checksum — must be invariant across shard counts,
    /// dispatch modes, and host load.
    pub checksum: u64,
}

fn finish(outcome: ClusterOutcome) -> ShardedResult {
    // A run cut short by an injected root fault has no checksum; the
    // sentinel keeps the result deterministic without panicking.
    let checksum = match outcome.exit {
        Ok(code) => code as u32 as u64,
        Err(_) => u64::MAX,
    };
    ShardedResult { outcome, checksum }
}

// ---------------------------------------------------------------------
// md5-scan: embarrassingly parallel real compute (the scaling figure).
// ---------------------------------------------------------------------

/// Brute-forces an MD5 preimage with one scanning job per logical
/// node (node 0's slice runs inside the root space). The real hash
/// work dominates, so wall-clock time scales with the shard count
/// while every deterministic quantity stays fixed.
pub fn md5_scan(cfg: ShardedConfig) -> ShardedResult {
    let nodes = cfg.spec().nodes as u64;
    let keyspace = cfg.size;
    let target = keyspace * 7 / 8;
    let digest = md5(&candidate(target));
    let shared = Region::new(BASE, BASE + 0x1000);
    let scan = move |lo: u64, hi: u64, slot: u64, c: &mut SpaceCtx| {
        let mut found = u64::MAX;
        for i in lo..hi {
            if md5(&candidate(i)) == digest {
                found = i;
            }
        }
        c.charge((hi - lo) * NS_PER_HASH)?;
        if found != u64::MAX {
            c.mem_mut().write_u64(slot, found + 1)?;
        }
        Ok(0)
    };
    let outcome = cfg.spec().run(move |ctx, net| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        let per = keyspace.div_ceil(nodes);
        for n in 1..net.nodes() {
            let (lo, hi) = (n as u64 * per, ((n as u64 + 1) * per).min(keyspace));
            let slot = BASE + n as u64 * 8;
            net.fork(
                ctx,
                n as u64,
                n,
                JobSpec::native(shared, move |c, _| scan(lo, hi, slot, c)),
            )?;
        }
        // The root scans its own slice while the jobs run.
        scan(0, per.min(keyspace), BASE, ctx)?;
        for n in 1..net.nodes() {
            net.join(ctx, n as u64)?;
        }
        let mut found = u64::MAX;
        for k in 0..nodes {
            let v = ctx.mem().read_u64(BASE + k * 8)?;
            if v != 0 {
                found = found.min(v - 1);
            }
        }
        ctx.dev_write(DeviceId::ConsoleOut, &found.to_le_bytes())?;
        Ok(found as i32)
    });
    let r = finish(outcome);
    if r.outcome.exit.is_ok() {
        assert_eq!(r.checksum, target, "md5-scan missed its preimage");
    }
    r
}

// ---------------------------------------------------------------------
// migration-storm: many small cross-shard migrations, with a det-vm
// child inside every job kernel.
// ---------------------------------------------------------------------

/// Rounds of fork/join against every non-root node, where each job
/// runs a det-vm child *inside its own job kernel* (so the dispatch
/// vehicle exercises the whole stack on every shard) and then mixes
/// the VM's result into its slot. Dominated by migration traffic —
/// the conformance storm scenario.
pub fn migration_storm(cfg: ShardedConfig) -> ShardedResult {
    let nodes = cfg.spec().nodes as u64;
    let rounds = cfg.size.clamp(1, 64);
    let shared = Region::new(BASE, BASE + 0x1000);
    let image = det_vm::assemble(
        "
        li  r5, 0x2000
        ldd r2, [r5+0]
        muli r2, r2, 3
        addi r2, r2, 7
        std r2, [r5+8]
        ldi r1, 0
        halt
        ",
    )
    .expect("storm VM program assembles");
    let outcome = cfg.spec().run(move |ctx, net| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        for round in 0..rounds {
            for n in 1..net.nodes() {
                let slot = BASE + n as u64 * 8;
                let bytes = image.bytes.clone();
                net.fork(
                    ctx,
                    n as u64,
                    n,
                    JobSpec::native(shared, move |c, _| {
                        // Seed the VM child from this job's slot, run
                        // it in a private child space, merge back.
                        let vm_region = Region::new(0, 0x3000);
                        c.mem_mut().map_zero(vm_region, Perm::RW)?;
                        c.mem_mut().write(0, &bytes)?;
                        let seed = c.mem().read_u64(slot)?;
                        c.mem_mut().write_u64(0x2000, seed + round)?;
                        c.put(
                            0,
                            PutSpec::new()
                                .program(Program::Vm)
                                .copy(CopySpec::mirror(vm_region))
                                .regs(Regs::at_entry(0))
                                .snap()
                                .start(),
                        )?;
                        let r = c.get(0, GetSpec::new().merge(vm_region))?;
                        assert_eq!(r.stop, StopReason::Halted);
                        let out = c.mem().read_u64(0x2008)?;
                        c.mem_mut().write_u64(slot, out ^ (seed >> 3))?;
                        Ok(0)
                    }),
                )?;
            }
            for n in 1..net.nodes() {
                net.join(ctx, n as u64)?;
            }
        }
        let mut acc = 0u64;
        for k in 1..nodes {
            acc = acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(ctx.mem().read_u64(BASE + k * 8)?);
        }
        ctx.dev_write(DeviceId::ConsoleOut, &acc.to_le_bytes())?;
        Ok((acc & 0x7fff_ffff) as i32)
    });
    finish(outcome)
}

// ---------------------------------------------------------------------
// dsched: deterministically scheduled lock-based threads inside
// migrated job kernels.
// ---------------------------------------------------------------------

/// Each job runs a mutex/condvar workload under the deterministic
/// scheduler *inside its job kernel*: threads contend on a shared
/// counter, and the final tally lands in the job's slot. Exercises
/// dsched's quantum accounting on every shard.
pub fn dsched_counter(cfg: ShardedConfig) -> ShardedResult {
    let nodes = cfg.spec().nodes as u64;
    let increments = cfg.size.clamp(1, 200);
    let shared = Region::new(BASE, BASE + 0x1000);
    let outcome = cfg.spec().run(move |ctx, net| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        for n in 1..net.nodes() {
            let slot = BASE + n as u64 * 8;
            net.fork(
                ctx,
                n as u64,
                n,
                JobSpec::native(shared, move |c, _| {
                    let work = Region::new(0x4000, 0x5000);
                    c.mem_mut().map_zero(work, Perm::RW)?;
                    let mut ds = DSched::new(c, work, 1_000, 100)?;
                    for t in 0..3u64 {
                        ds.spawn(t, move |tc| {
                            for _ in 0..increments {
                                dsched::mutex_lock(tc, 1)?;
                                let v = tc.mem().read_u64(0x4000)?;
                                tc.charge(200)?;
                                tc.mem_mut().write_u64(0x4000, v + t + 1)?;
                                dsched::mutex_unlock(tc, 1)?;
                            }
                            Ok(0)
                        })?;
                    }
                    ds.run()?;
                    let total = c.mem().read_u64(0x4000)?;
                    c.mem_mut().write_u64(slot, total)?;
                    Ok(0)
                }),
            )?;
        }
        for n in 1..net.nodes() {
            net.join(ctx, n as u64)?;
        }
        let mut acc = 0u64;
        for k in 1..nodes {
            let v = ctx.mem().read_u64(BASE + k * 8)?;
            // Three threads adding (t+1) each, `increments` times.
            assert_eq!(v, increments * 6, "dsched tally wrong on node {k}");
            acc = acc.wrapping_add(v.wrapping_mul(k + 1));
        }
        ctx.dev_write(DeviceId::ConsoleOut, &acc.to_le_bytes())?;
        Ok((acc & 0x7fff_ffff) as i32)
    });
    finish(outcome)
}

// ---------------------------------------------------------------------
// vm-prefetch: footprint-hinted leaf-pull migration (DESIGN.md §11).
// ---------------------------------------------------------------------

/// Declared virtual nanoseconds per VM instruction in a prefetch job
/// (the job drives the interpreter natively and charges by exact
/// instruction count, like `Program::Vm` children do).
const NS_PER_VM_INSN: u64 = 2;

/// Leaf granularity of the migration protocol, in bytes.
const LEAF_BYTES: u64 = (det_memory::PAGES_PER_LEAF as u64) << det_memory::PAGE_SHIFT;

/// One slot leaf per node plus a code leaf, with a VM kernel that
/// marches a pointer over its own node's slot only. With `hint` set,
/// the root asks [`SpaceCtx::analyze_footprint_from`] for each job's
/// sound page footprint — the entry registers resolve the slot
/// pointer — and attaches it via `JobSpec::touch_footprint`, so
/// migration pulls just the code leaf and the job's own slot leaf
/// instead of every leaf the shared region summarizes. The checksum
/// and console bytes must be identical with the hint on or off: a
/// sound hint may change traffic, never results.
pub fn vm_prefetch(cfg: ShardedConfig, hint: bool) -> ShardedResult {
    let nodes = cfg.spec().nodes as u64;
    let words = (cfg.size / 16).clamp(8, 128);
    let end_off = words * 8;
    let code_base = BASE + nodes * LEAF_BYTES;
    // The analyzable marching-pointer idiom: the loop branches on the
    // pointer against a bound derived from the entry register, so the
    // abstract interpreter proves the exact slot byte range.
    let image = det_vm::assemble(&format!(
        "
        addi r5, r2, 0
        addi r12, r2, {end_off}
        ldi r4, 0
    loop:
        ldd r3, [r5+0]
        muli r3, r3, 0x61d
        add r4, r4, r3
        std r4, [r5+0]
        addi r5, r5, 8
        bltu r5, r12, loop
        std r4, [r12+0]
        ldi r1, 0
        halt
        "
    ))
    .expect("prefetch VM kernel assembles");
    let image_len = image.bytes.len() as u64;
    let outcome = cfg.spec().run(move |ctx, net| {
        ctx.mem_mut()
            .map_zero(Region::new(code_base, code_base + 0x1000), Perm::RW)?;
        ctx.mem_mut().write(code_base, &image.bytes)?;
        for n in 1..net.nodes() {
            let slot = BASE + n as u64 * LEAF_BYTES;
            ctx.mem_mut()
                .map_zero(Region::new(slot, slot + 0x1000), Perm::RW)?;
            for i in 0..words {
                ctx.mem_mut()
                    .write_u64(slot + i * 8, n as u64 * 1_000_003 + i * 7919)?;
            }
        }
        let shared = Region::new(BASE, code_base + 0x1000);
        for n in 1..net.nodes() {
            let slot = BASE + n as u64 * LEAF_BYTES;
            let mut spec = JobSpec::native(shared, move |c, _| {
                let mut cpu = det_vm::Cpu::at_entry(code_base);
                cpu.regs.gpr[2] = slot;
                let exit = cpu.run(c.mem_mut(), Some(200_000));
                assert_eq!(exit, det_vm::VmExit::Halt, "prefetch VM kernel halts");
                c.charge(cpu.insn_count * NS_PER_VM_INSN)?;
                Ok(0)
            });
            if hint {
                let mut regs = Regs::at_entry(code_base);
                regs.gpr[2] = slot;
                let fp = ctx.analyze_footprint_from(code_base, image_len, &regs)?;
                assert!(
                    fp.touch_regions().is_some(),
                    "prefetch kernel's footprint must stay bounded"
                );
                spec = spec.touch_footprint(&fp);
            }
            net.fork(ctx, n as u64, n, spec)?;
        }
        for n in 1..net.nodes() {
            net.join(ctx, n as u64)?;
        }
        let mut acc = 0u64;
        for n in 1..nodes {
            let slot = BASE + n * LEAF_BYTES;
            acc = acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(ctx.mem().read_u64(slot + end_off)?);
        }
        ctx.dev_write(DeviceId::ConsoleOut, &acc.to_le_bytes())?;
        Ok((acc & 0x7fff_ffff) as i32)
    });
    finish(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_scan_finds_the_key_on_any_shard_count() {
        let a = md5_scan(ShardedConfig::quick(4, 1));
        let b = md5_scan(ShardedConfig::quick(4, 4));
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.outcome.bundle_bytes(), b.outcome.bundle_bytes());
    }

    #[test]
    fn storm_and_dsched_are_shard_count_invariant() {
        let cfg = |shards| ShardedConfig {
            size: 3,
            ..ShardedConfig::quick(3, shards)
        };
        let s1 = migration_storm(cfg(1));
        let s3 = migration_storm(cfg(3));
        assert_eq!(s1.outcome.bundle_bytes(), s3.outcome.bundle_bytes());
        let d1 = dsched_counter(cfg(1));
        let d2 = dsched_counter(cfg(2));
        assert_eq!(d1.outcome.bundle_bytes(), d2.outcome.bundle_bytes());
    }

    #[test]
    fn prefetch_hint_cuts_pulls_without_changing_results() {
        let on = vm_prefetch(ShardedConfig::quick(4, 2), true);
        let off = vm_prefetch(ShardedConfig::quick(4, 2), false);
        assert_eq!(on.checksum, off.checksum, "hint changed the result");
        assert_eq!(
            on.outcome.root.outputs, off.outcome.root.outputs,
            "hint changed the console bytes"
        );
        assert!(
            on.outcome.cluster.page_pulls < off.outcome.cluster.page_pulls,
            "hint did not reduce migration pulls ({} vs {})",
            on.outcome.cluster.page_pulls,
            off.outcome.cluster.page_pulls
        );
    }

    #[test]
    fn prefetch_is_shard_count_invariant() {
        let a = vm_prefetch(ShardedConfig::quick(3, 1), true);
        let b = vm_prefetch(ShardedConfig::quick(3, 3), true);
        assert_eq!(a.outcome.bundle_bytes(), b.outcome.bundle_bytes());
    }
}
