//! The matmult benchmark: parallel integer matrix multiply (§6.2,
//! Figures 7–9).
//!
//! C = A × B with row-stripe parallelism: each thread's private
//! workspace sees fork-time A and B, computes its stripe of C for
//! real, and writes it in place; joins merge the disjoint stripes.

use det_kernel::{CopySpec, GetSpec, Kernel, KernelConfig, Program, PutSpec, Region, RunOutcome};
use det_memory::Perm;

use crate::mathx::XorShift64;
use crate::{Mode, RunResult};

/// Virtual cost of one multiply-accumulate on the paper's testbed
/// (integer MAC + memory traffic in a naive triple loop ≈ 1.5 ns).
pub const PS_PER_MAC: u64 = 1_500;

const BASE: u64 = 0x1000_0000;

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct MatmultConfig {
    /// Threads.
    pub threads: usize,
    /// Matrix dimension N (N×N matrices).
    pub n: usize,
}

fn region_for(n: usize) -> Region {
    let bytes = 3 * n * n * 8;
    let end = (BASE + bytes as u64 + 0xfff) & !0xfff;
    Region::new(BASE, end)
}

fn addr_a(_n: usize) -> u64 {
    BASE
}
fn addr_b(n: usize) -> u64 {
    BASE + (n * n * 8) as u64
}
fn addr_c(n: usize) -> u64 {
    BASE + (2 * n * n * 8) as u64
}

/// Runs C = A×B under an arbitrary kernel configuration and returns
/// the raw outcome (conformance harness entry point). Results are
/// validated in-run against a golden sequential product for small N
/// and by spot checks for large N.
pub fn outcome(kcfg: KernelConfig, cfg: MatmultConfig) -> RunOutcome {
    let n = cfg.n;
    let threads = cfg.threads.max(1);
    let shared = region_for(n);
    Kernel::new(kcfg).run(move |ctx| {
        ctx.mem_mut().map_zero(shared, Perm::RW)?;
        // Deterministic inputs.
        let mut rng = XorShift64::new(0xA11CE);
        let a: Vec<u64> = (0..n * n).map(|_| rng.below(1000)).collect();
        let b: Vec<u64> = (0..n * n).map(|_| rng.below(1000)).collect();
        ctx.mem_mut().write_u64s(addr_a(n), &a)?;
        ctx.mem_mut().write_u64s(addr_b(n), &b)?;

        let rows_per = n.div_ceil(threads);
        for t in 0..threads {
            let lo = t * rows_per;
            let hi = ((t + 1) * rows_per).min(n);
            ctx.put(
                t as u64,
                PutSpec::new()
                    .program(Program::native(move |c| {
                        if lo >= hi {
                            return Ok(0);
                        }
                        // Private replica: bulk-read fork-time A rows
                        // and all of B, compute for real, write the C
                        // stripe in place.
                        let a_rows = c
                            .mem()
                            .read_u64s(addr_a(n) + (lo * n * 8) as u64, (hi - lo) * n)?;
                        let b_all = c.mem().read_u64s(addr_b(n), n * n)?;
                        let mut c_rows = vec![0u64; (hi - lo) * n];
                        for i in 0..hi - lo {
                            for k in 0..n {
                                let aik = a_rows[i * n + k];
                                let brow = &b_all[k * n..(k + 1) * n];
                                let crow = &mut c_rows[i * n..(i + 1) * n];
                                for (cv, bv) in crow.iter_mut().zip(brow) {
                                    *cv = cv.wrapping_add(aik.wrapping_mul(*bv));
                                }
                            }
                        }
                        c.mem_mut()
                            .write_u64s(addr_c(n) + (lo * n * 8) as u64, &c_rows)?;
                        let macs = ((hi - lo) * n * n) as u64;
                        c.charge(macs * PS_PER_MAC / 1000)?;
                        Ok(0)
                    }))
                    .copy(CopySpec::mirror(shared))
                    .snap()
                    .start(),
            )?;
        }
        for t in 0..threads {
            ctx.get(t as u64, GetSpec::new().merge(shared))?;
        }
        // Validate: golden product for small N, spot checks otherwise.
        let c_all = ctx.mem().read_u64s(addr_c(n), n * n)?;
        if n <= 64 {
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0u64;
                    for k in 0..n {
                        acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                    }
                    assert_eq!(c_all[i * n + j], acc, "C[{i}][{j}]");
                }
            }
        } else {
            let mut spot = XorShift64::new(7);
            for _ in 0..16 {
                let i = spot.below(n as u64) as usize;
                let j = spot.below(n as u64) as usize;
                let mut acc = 0u64;
                for k in 0..n {
                    acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                }
                assert_eq!(c_all[i * n + j], acc, "C[{i}][{j}]");
            }
        }
        let mut d = det_memory::ContentDigest::new();
        for v in &c_all {
            d.update_u64(*v);
        }
        Ok((d.value() & 0x7fff_ffff) as i32)
    })
}

/// Runs C = A×B under `mode`; checksum is an FNV digest of C.
pub fn run(mode: Mode, cfg: MatmultConfig) -> RunResult {
    let outcome = outcome(mode.config(), cfg);
    let checksum = outcome.exit.expect("matmult trapped") as u64;
    RunResult {
        vclock_ns: outcome.vclock_ns,
        stats: outcome.stats,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_and_mode_independent() {
        let cfg = MatmultConfig { threads: 3, n: 32 };
        let d = run(Mode::Determinator, cfg);
        let b = run(Mode::Baseline, cfg);
        assert_eq!(d.checksum, b.checksum);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let c1 = run(Mode::Determinator, MatmultConfig { threads: 1, n: 24 }).checksum;
        let c4 = run(Mode::Determinator, MatmultConfig { threads: 4, n: 24 }).checksum;
        let c5 = run(Mode::Determinator, MatmultConfig { threads: 5, n: 24 }).checksum;
        assert_eq!(c1, c4);
        assert_eq!(c1, c5);
    }

    #[test]
    fn large_n_approaches_baseline_small_n_does_not() {
        // Figure 9's shape: the det/baseline ratio improves with N.
        let ratio = |n: usize| {
            let d = run(Mode::Determinator, MatmultConfig { threads: 4, n }).vclock_ns;
            let b = run(Mode::Baseline, MatmultConfig { threads: 4, n }).vclock_ns;
            d as f64 / b as f64
        };
        let small = ratio(16);
        let large = ratio(128);
        assert!(
            large < small,
            "ratio must improve with size: {small} -> {large}"
        );
        assert!(large < 1.6, "large-N matmult near parity, got {large}");
    }

    #[test]
    fn parallel_speedup() {
        let t1 = run(Mode::Determinator, MatmultConfig { threads: 1, n: 96 }).vclock_ns;
        let t4 = run(Mode::Determinator, MatmultConfig { threads: 4, n: 96 }).vclock_ns;
        assert!(t1 as f64 / t4 as f64 > 2.5);
    }
}
