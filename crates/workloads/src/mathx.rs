//! Small deterministic math helpers shared by workloads.

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|ε| < 1.5e-7) — deterministic, no libm dependence on
/// platform-varying implementations beyond IEEE basics.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A tiny deterministic PRNG (xorshift64*), for workload input
/// generation independent of the `rand` crate's version details.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (`seed` must be nonzero; 0 is mapped).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform i64 in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn norm_cdf_reference_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        // f64s stay in [0,1).
        for _ in 0..1000 {
            let v = a.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next_u64(), 0);
    }
}
