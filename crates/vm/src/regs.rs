//! CPU register state: the per-space "register half" of a
//! Determinator space (§3.1).

/// Register file of one space's single control flow.
///
/// Sixteen 64-bit general-purpose registers plus a program counter.
/// Floating point uses the same registers, bit-cast as IEEE-754
/// doubles — all FP operations are single IEEE operations, so results
/// are bit-deterministic across hosts.
///
/// Conventions used by the assembler and the user-level runtime:
///
/// * `r0` — scratch / return value,
/// * `r1` — syscall code / exit status,
/// * `r14` — link register for `jal`,
/// * `r15` — stack pointer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Regs {
    /// Program counter (byte address of the next instruction).
    pub pc: u64,
    /// General-purpose registers.
    pub gpr: [u64; 16],
}

impl Regs {
    /// Register count.
    pub const NUM_GPR: usize = 16;
    /// Conventional link register index.
    pub const LINK: usize = 14;
    /// Conventional stack-pointer index.
    pub const SP: usize = 15;

    /// Returns zeroed registers with the given entry point.
    pub fn at_entry(pc: u64) -> Regs {
        Regs { pc, gpr: [0; 16] }
    }

    /// Reads register `r` as an IEEE-754 double.
    #[inline]
    pub fn f(&self, r: usize) -> f64 {
        f64::from_bits(self.gpr[r])
    }

    /// Writes register `r` as an IEEE-754 double.
    #[inline]
    pub fn set_f(&mut self, r: usize, v: f64) {
        self.gpr[r] = v.to_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_state() {
        let r = Regs::at_entry(0x400);
        assert_eq!(r.pc, 0x400);
        assert!(r.gpr.iter().all(|&g| g == 0));
    }

    #[test]
    fn float_views_are_bit_casts() {
        let mut r = Regs::default();
        r.set_f(3, -0.5);
        assert_eq!(r.f(3), -0.5);
        assert_eq!(r.gpr[3], (-0.5f64).to_bits());
    }
}
