//! The interpreter: deterministic execution with exact instruction
//! accounting and preemption.

use det_memory::{AddressSpace, MemError};

use crate::isa::{Insn, Opcode, decode};
use crate::regs::Regs;

/// Why the interpreter stopped.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VmExit {
    /// `halt` executed; status convention: `r1`.
    Halt,
    /// `sys imm` executed: the program requests a kernel service.
    /// The register file holds the arguments; `pc` already points at
    /// the next instruction, so resuming continues after the syscall.
    Sys(u16),
    /// A trap; the faulting instruction did not commit.
    Trap(VmTrap),
    /// The instruction budget was exhausted before the next
    /// instruction; resuming later continues exactly where it left
    /// off. This is the kernel's "instruction limit" (§3.2).
    OutOfBudget,
}

/// Processor trap causes.
///
/// Traps cause an implicit `Ret` to the parent space in the kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmTrap {
    /// Memory fault (unmapped or permission-denied access).
    Mem(MemError),
    /// Undefined opcode byte.
    IllegalInstruction(u8),
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The program counter is not 4-byte aligned.
    PcMisaligned(u64),
}

impl std::fmt::Display for VmTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmTrap::Mem(e) => write!(f, "memory fault: {e}"),
            VmTrap::IllegalInstruction(b) => write!(f, "illegal instruction {b:#04x}"),
            VmTrap::DivideByZero => write!(f, "integer divide by zero"),
            VmTrap::PcMisaligned(pc) => write!(f, "misaligned pc {pc:#x}"),
        }
    }
}

/// A deterministic CPU: registers plus a lifetime instruction counter.
///
/// The memory it executes against is passed to [`Cpu::run`] so the
/// kernel can check a space's memory in and out around preemptions.
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    /// Architectural register state.
    pub regs: Regs,
    /// Total instructions retired over the CPU's lifetime.
    pub insn_count: u64,
}

impl Cpu {
    /// Returns a CPU with zeroed registers at pc 0.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Returns a CPU with the given entry point.
    pub fn at_entry(pc: u64) -> Cpu {
        Cpu {
            regs: Regs::at_entry(pc),
            insn_count: 0,
        }
    }

    /// Executes instructions against `mem` until halt, syscall, trap,
    /// or budget exhaustion.
    ///
    /// `budget` limits the number of instructions retired in this call
    /// (`None` = unlimited). The count is exact: a budget of `n`
    /// retires at most `n` instructions, and [`VmExit::OutOfBudget`] is
    /// returned *between* instructions so a later `run` resumes
    /// precisely — the property the paper's deterministic scheduler
    /// depends on.
    pub fn run(&mut self, mem: &mut AddressSpace, budget: Option<u64>) -> VmExit {
        let mut remaining = budget;
        loop {
            if let Some(0) = remaining {
                return VmExit::OutOfBudget;
            }
            match self.step(mem) {
                None => {
                    if let Some(r) = remaining.as_mut() {
                        *r -= 1;
                    }
                }
                Some(exit) => {
                    return exit;
                }
            }
        }
    }

    /// Executes one instruction; returns `Some` on any stop condition.
    ///
    /// Retired instructions (including `halt`/`sys`) bump
    /// [`Cpu::insn_count`]; trapped instructions do not commit.
    pub fn step(&mut self, mem: &mut AddressSpace) -> Option<VmExit> {
        let pc = self.regs.pc;
        if !pc.is_multiple_of(4) {
            return Some(VmExit::Trap(VmTrap::PcMisaligned(pc)));
        }
        let word = match mem.read_u32(pc) {
            Ok(w) => w,
            Err(e) => return Some(VmExit::Trap(VmTrap::Mem(e))),
        };
        let insn = match decode(word) {
            Ok(i) => i,
            Err(e) => return Some(VmExit::Trap(VmTrap::IllegalInstruction(e.opcode))),
        };
        let next_pc = pc + 4;
        match self.exec(insn, next_pc, mem) {
            Ok(flow) => {
                self.insn_count += 1;
                match flow {
                    Flow::Next => {
                        self.regs.pc = next_pc;
                        None
                    }
                    Flow::Jump(target) => {
                        self.regs.pc = target;
                        None
                    }
                    Flow::Halt => {
                        self.regs.pc = next_pc;
                        Some(VmExit::Halt)
                    }
                    Flow::Sys(n) => {
                        self.regs.pc = next_pc;
                        Some(VmExit::Sys(n))
                    }
                }
            }
            Err(trap) => Some(VmExit::Trap(trap)),
        }
    }

    fn exec(&mut self, i: Insn, next_pc: u64, mem: &mut AddressSpace) -> Result<Flow, VmTrap> {
        use Opcode::*;
        let g = &mut self.regs.gpr;
        let (rd, rs, rt) = (i.rd as usize, i.rs as usize, i.rt as usize);
        let imm = i.imm as i64;
        let branch = |taken: bool| {
            if taken {
                Flow::Jump((next_pc as i64 + imm * 4) as u64)
            } else {
                Flow::Next
            }
        };
        let flow = match i.op {
            Nop => Flow::Next,
            Halt => Flow::Halt,
            Sys => Flow::Sys(i.imm as u16 & 0xfff),

            Add => {
                g[rd] = g[rs].wrapping_add(g[rt]);
                Flow::Next
            }
            Sub => {
                g[rd] = g[rs].wrapping_sub(g[rt]);
                Flow::Next
            }
            Mul => {
                g[rd] = g[rs].wrapping_mul(g[rt]);
                Flow::Next
            }
            Div => {
                if g[rt] == 0 {
                    return Err(VmTrap::DivideByZero);
                }
                g[rd] = (g[rs] as i64).wrapping_div(g[rt] as i64) as u64;
                Flow::Next
            }
            Mod => {
                if g[rt] == 0 {
                    return Err(VmTrap::DivideByZero);
                }
                g[rd] = (g[rs] as i64).wrapping_rem(g[rt] as i64) as u64;
                Flow::Next
            }
            Divu => {
                if g[rt] == 0 {
                    return Err(VmTrap::DivideByZero);
                }
                g[rd] = g[rs] / g[rt];
                Flow::Next
            }
            Modu => {
                if g[rt] == 0 {
                    return Err(VmTrap::DivideByZero);
                }
                g[rd] = g[rs] % g[rt];
                Flow::Next
            }
            And => {
                g[rd] = g[rs] & g[rt];
                Flow::Next
            }
            Or => {
                g[rd] = g[rs] | g[rt];
                Flow::Next
            }
            Xor => {
                g[rd] = g[rs] ^ g[rt];
                Flow::Next
            }
            Shl => {
                g[rd] = g[rs].wrapping_shl(g[rt] as u32);
                Flow::Next
            }
            Shr => {
                g[rd] = g[rs].wrapping_shr(g[rt] as u32);
                Flow::Next
            }
            Sar => {
                g[rd] = (g[rs] as i64).wrapping_shr(g[rt] as u32) as u64;
                Flow::Next
            }
            Slt => {
                g[rd] = ((g[rs] as i64) < (g[rt] as i64)) as u64;
                Flow::Next
            }
            Sltu => {
                g[rd] = (g[rs] < g[rt]) as u64;
                Flow::Next
            }

            Addi => {
                g[rd] = g[rs].wrapping_add(imm as u64);
                Flow::Next
            }
            Andi => {
                g[rd] = g[rs] & imm as u64;
                Flow::Next
            }
            Ori => {
                g[rd] = g[rs] | imm as u64;
                Flow::Next
            }
            Xori => {
                g[rd] = g[rs] ^ imm as u64;
                Flow::Next
            }
            Shli => {
                g[rd] = g[rs].wrapping_shl(imm as u32 & 63);
                Flow::Next
            }
            Shri => {
                g[rd] = g[rs].wrapping_shr(imm as u32 & 63);
                Flow::Next
            }
            Sari => {
                g[rd] = (g[rs] as i64).wrapping_shr(imm as u32 & 63) as u64;
                Flow::Next
            }
            Slti => {
                g[rd] = ((g[rs] as i64) < imm) as u64;
                Flow::Next
            }
            Muli => {
                g[rd] = g[rs].wrapping_mul(imm as u64);
                Flow::Next
            }
            Ldi => {
                g[rd] = imm as u64;
                Flow::Next
            }
            Ldih => {
                g[rd] = (g[rd] << 12) | (i.imm as u64 & 0xfff);
                Flow::Next
            }

            Ldb => {
                let a = g[rs].wrapping_add(imm as u64);
                g[rd] = mem.read_u8(a).map_err(VmTrap::Mem)? as u64;
                Flow::Next
            }
            Ldh => {
                let a = g[rs].wrapping_add(imm as u64);
                let mut b = [0u8; 2];
                mem.read(a, &mut b).map_err(VmTrap::Mem)?;
                g[rd] = u16::from_le_bytes(b) as u64;
                Flow::Next
            }
            Ldw => {
                let a = g[rs].wrapping_add(imm as u64);
                g[rd] = mem.read_u32(a).map_err(VmTrap::Mem)? as u64;
                Flow::Next
            }
            Ldd => {
                let a = g[rs].wrapping_add(imm as u64);
                g[rd] = mem.read_u64(a).map_err(VmTrap::Mem)?;
                Flow::Next
            }
            Stb => {
                let a = g[rs].wrapping_add(imm as u64);
                mem.write_u8(a, g[rd] as u8).map_err(VmTrap::Mem)?;
                Flow::Next
            }
            Sth => {
                let a = g[rs].wrapping_add(imm as u64);
                mem.write(a, &(g[rd] as u16).to_le_bytes())
                    .map_err(VmTrap::Mem)?;
                Flow::Next
            }
            Stw => {
                let a = g[rs].wrapping_add(imm as u64);
                mem.write_u32(a, g[rd] as u32).map_err(VmTrap::Mem)?;
                Flow::Next
            }
            Std => {
                let a = g[rs].wrapping_add(imm as u64);
                mem.write_u64(a, g[rd]).map_err(VmTrap::Mem)?;
                Flow::Next
            }

            Beq => branch(g[rs] == g[rt]),
            Bne => branch(g[rs] != g[rt]),
            Blt => branch((g[rs] as i64) < (g[rt] as i64)),
            Bge => branch((g[rs] as i64) >= (g[rt] as i64)),
            Bltu => branch(g[rs] < g[rt]),
            Bgeu => branch(g[rs] >= g[rt]),
            Jal => {
                g[rd] = next_pc;
                Flow::Jump((next_pc as i64 + imm * 4) as u64)
            }
            Jalr => {
                let target = g[rs].wrapping_add(imm as u64);
                g[rd] = next_pc;
                Flow::Jump(target)
            }

            Fadd => {
                let v = self.regs.f(rs) + self.regs.f(rt);
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Fsub => {
                let v = self.regs.f(rs) - self.regs.f(rt);
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Fmul => {
                let v = self.regs.f(rs) * self.regs.f(rt);
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Fdiv => {
                let v = self.regs.f(rs) / self.regs.f(rt);
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Fsqrt => {
                let v = self.regs.f(rs).sqrt();
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Cvtif => {
                let v = self.regs.gpr[rs] as i64 as f64;
                self.regs.set_f(rd, v);
                Flow::Next
            }
            Cvtfi => {
                // Rust's saturating float→int cast is deterministic.
                self.regs.gpr[rd] = self.regs.f(rs) as i64 as u64;
                Flow::Next
            }
            Flt => {
                self.regs.gpr[rd] = (self.regs.f(rs) < self.regs.f(rt)) as u64;
                Flow::Next
            }
            Feq => {
                self.regs.gpr[rd] = (self.regs.f(rs) == self.regs.f(rt)) as u64;
                Flow::Next
            }
            Fle => {
                self.regs.gpr[rd] = (self.regs.f(rs) <= self.regs.f(rt)) as u64;
                Flow::Next
            }
        };
        Ok(flow)
    }
}

enum Flow {
    Next,
    Jump(u64),
    Halt,
    Sys(u16),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use det_memory::{Perm, Region};

    fn load(src: &str) -> (Cpu, AddressSpace) {
        let image = assemble(src).expect("assembles");
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x10000), Perm::RW).unwrap();
        mem.write(0, &image.bytes).unwrap();
        (Cpu::new(), mem)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 100
            ldi r2, 42
            sub r3, r1, r2
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[3], 58);
        assert_eq!(cpu.insn_count, 4);
    }

    #[test]
    fn loop_sum() {
        // Sum 1..=10 into r3.
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 10
            ldi r3, 0
        loop:
            add r3, r3, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[3], 55);
    }

    #[test]
    fn memory_roundtrip_all_widths() {
        let (mut cpu, mut mem) = load(
            "
            li  r5, 0x8000
            ldi r1, -1
            std r1, [r5+0]
            ldb r2, [r5+0]
            ldh r3, [r5+0]
            ldw r4, [r5+0]
            ldd r6, [r5+0]
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[2], 0xff);
        assert_eq!(cpu.regs.gpr[3], 0xffff);
        assert_eq!(cpu.regs.gpr[4], 0xffff_ffff);
        assert_eq!(cpu.regs.gpr[6], u64::MAX);
    }

    #[test]
    fn divide_by_zero_traps_without_commit() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 5
            ldi r2, 0
            div r3, r1, r2
            halt
            ",
        );
        let exit = cpu.run(&mut mem, None);
        assert_eq!(exit, VmExit::Trap(VmTrap::DivideByZero));
        // Trapped instruction does not retire; pc points at it.
        assert_eq!(cpu.insn_count, 2);
        assert_eq!(cpu.regs.pc, 8);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.write_u32(0, 0xff00_0000).unwrap();
        let mut cpu = Cpu::new();
        assert_eq!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::IllegalInstruction(0xff))
        );
    }

    #[test]
    fn unmapped_fetch_traps() {
        let mut mem = AddressSpace::new();
        let mut cpu = Cpu::new();
        assert!(matches!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::Mem(MemError::Unmapped { .. }))
        ));
    }

    #[test]
    fn store_to_readonly_traps() {
        let image = assemble("li r5, 0x8000\nstd r1, [r5+0]\nhalt").unwrap();
        let mut mem = AddressSpace::new();
        mem.map_zero(Region::new(0, 0x1000), Perm::RW).unwrap();
        mem.map_zero(Region::new(0x8000, 0x9000), Perm::R).unwrap();
        mem.write(0, &image.bytes).unwrap();
        let mut cpu = Cpu::new();
        assert!(matches!(
            cpu.run(&mut mem, None),
            VmExit::Trap(VmTrap::Mem(MemError::PermDenied { .. }))
        ));
    }

    #[test]
    fn misaligned_pc_traps() {
        let mut cpu = Cpu::new();
        cpu.regs.pc = 2;
        let mut mem = AddressSpace::new();
        assert_eq!(
            cpu.step(&mut mem),
            Some(VmExit::Trap(VmTrap::PcMisaligned(2)))
        );
    }

    #[test]
    fn sys_returns_control_and_resumes() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 1
            sys 7
            addi r1, r1, 1
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Sys(7));
        assert_eq!(cpu.regs.gpr[1], 1);
        // Resume after the syscall.
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 2);
    }

    #[test]
    fn budget_is_exact_and_resumable() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 0
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            halt
            ",
        );
        // Run exactly 2 instructions.
        assert_eq!(cpu.run(&mut mem, Some(2)), VmExit::OutOfBudget);
        assert_eq!(cpu.insn_count, 2);
        assert_eq!(cpu.regs.gpr[1], 1);
        // Zero budget runs nothing.
        assert_eq!(cpu.run(&mut mem, Some(0)), VmExit::OutOfBudget);
        assert_eq!(cpu.insn_count, 2);
        // Resume to completion.
        assert_eq!(cpu.run(&mut mem, Some(100)), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 3);
        assert_eq!(cpu.insn_count, 5);
    }

    #[test]
    fn preemption_is_transparent() {
        // Same program, run once without and once with many tiny
        // quanta: identical final state and instruction count.
        let src = "
            ldi r1, 37
            ldi r3, 0
        loop:
            add r3, r3, r1
            addi r1, r1, -1
            bne r1, r0, loop
            li  r5, 0x8000
            std r3, [r5+0]
            halt
        ";
        let (mut a, mut mem_a) = load(src);
        assert_eq!(a.run(&mut mem_a, None), VmExit::Halt);

        let (mut b, mut mem_b) = load(src);
        loop {
            match b.run(&mut mem_b, Some(3)) {
                VmExit::OutOfBudget => continue,
                VmExit::Halt => break,
                other => panic!("unexpected exit {other:?}"),
            }
        }
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.insn_count, b.insn_count);
        assert_eq!(mem_a.content_digest(), mem_b.content_digest());
    }

    #[test]
    fn float_ops() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 9
            cvtif r2, r1
            fsqrt r3, r2
            ldi r4, 2
            cvtif r5, r4
            fmul r6, r3, r5
            cvtfi r7, r6
            fle r8, r2, r6
            flt r9, r2, r6
            halt
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.f(3), 3.0);
        assert_eq!(cpu.regs.gpr[7], 6);
        assert_eq!(cpu.regs.gpr[8], 0); // 9.0 <= 6.0 is false.
        assert_eq!(cpu.regs.gpr[9], 0);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        let (mut cpu, mut mem) = load(
            "
            ldi r1, 5
            jal r14, double
            jal r14, double
            halt
        double:
            add r1, r1, r1
            jalr r0, r14, 0
            ",
        );
        assert_eq!(cpu.run(&mut mem, None), VmExit::Halt);
        assert_eq!(cpu.regs.gpr[1], 20);
    }
}
